"""Command-line interface: ``artc <subcommand>``.

Mirrors how the original ARTC is used from a shell:

- ``artc compile``  trace (+ snapshot) -> benchmark file
- ``artc pack``     benchmark JSON <-> versioned ``.artcb`` artifact
- ``artc replay``   benchmark file (JSON or ``.artcb``) ->
  timing/semantics report
- ``artc verify``   static verification: translation-validate the
  replay cores against the scoreboard semantics and predict replay
  outcomes (errnos + final-state digest) without running them
- ``artc convert``  trace between the JSON and strace text formats
- ``artc trace``    run a built-in workload on a simulated platform and
  emit its trace + snapshot (this reproduction's substitute for strace
  on a real machine)
- ``artc magritte`` list or generate Magritte suite traces
- ``artc serve``    run the replay-as-a-service daemon (sharded worker
  processes, request coalescing, warm artifact serving; docs/SERVICE.md)
- ``artc submit``   send requests to a running daemon

Trace files ending in ``.strace`` use the strace text format; anything
else uses the JSON-lines format.
"""

import argparse
import json
import sys

from repro.artc.benchmark import CompiledBenchmark
from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.core.modes import ReplayMode, RuleSet
from repro.syscalls.emulation import EmulationOptions
from repro.tracing import strace
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace


def _load_trace(path):
    if path.endswith(".strace"):
        return strace.load(path)
    if path.endswith(".ibench"):
        from repro.tracing import ibench

        return ibench.load(path)
    return Trace.load(path)


def _save_trace(trace, path):
    if path.endswith(".strace"):
        strace.save(trace, path)
    elif path.endswith(".ibench"):
        from repro.tracing import ibench

        ibench.save(trace, path)
    else:
        trace.save(path)


def _ruleset_from_args(args):
    if args.mode_flags:
        flags = {}
        for token in args.mode_flags.split(","):
            token = token.strip()
            if token.startswith("no-"):
                flags[token[3:].replace("-", "_")] = False
            else:
                flags[token.replace("-", "_")] = True
        return RuleSet(**flags)
    return RuleSet.artc_default()


def cmd_compile(args):
    snapshot = Snapshot.load(args.snapshot) if args.snapshot else Snapshot()
    if args.stream:
        return _compile_stream(args, snapshot)
    trace = _load_trace(args.trace)
    bench = compile_trace(
        trace, snapshot, ruleset=_ruleset_from_args(args),
        reduce=not args.no_reduce,
    )
    bench.save(args.output)
    if bench.graph.reduced_preds is not None:
        edges = "%d edges (%d after reduction)" % (
            bench.graph.n_edges,
            bench.stats.get("n_edges_reduced", bench.graph.n_edges),
        )
    else:
        edges = "%d edges (reduction skipped)" % bench.graph.n_edges
    print(
        "compiled %s: %d actions, %s, %d model misses, %.3f s -> %s"
        % (
            bench.label or args.trace,
            len(bench),
            edges,
            bench.stats.get("model_misses", 0),
            bench.stats.get("compile_seconds", 0.0),
            args.output,
        )
    )
    if args.dump_ir:
        from repro.artc import planir

        print(planir.default_plan(bench).render(bench, verbose=True))
    return 0


def _compile_stream(args, snapshot):
    """``artc compile --stream``: tail the (possibly still growing)
    trace and compile it incrementally; identical output to the batch
    path (docs/STREAMING.md)."""
    from repro.errors import TraceError
    from repro.stream.follow import ingest_trace

    try:
        result = ingest_trace(
            args.trace,
            ruleset=_ruleset_from_args(args),
            snapshot=snapshot,
            reduce=not args.no_reduce,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            poll=args.poll,
            idle_timeout=args.idle_timeout or None,
        )
    except TraceError as exc:
        print("compile --stream: %s" % exc, file=sys.stderr)
        return 3
    bench = result.benchmark
    status = result.status
    bench.save(args.output)
    print(
        "streamed %s: %d records -> %d actions, %d torn-tail resyncs"
        " -> %s" % (
            bench.label or args.trace,
            status.records,
            status.fed,
            status.resyncs,
            args.output,
        )
    )
    print("stream-digest: %s" % status.digest)
    _print_stream_warnings(status, args)
    return 0


def _print_stream_warnings(status, args):
    """Shared stderr tail for the streaming commands: skipped-line
    summary and checkpoint count."""
    skipped = {
        kind: entry.get("count", 0)
        for kind, entry in status.warnings.items()
    }
    if skipped:
        print(
            "skipped %d unparseable line(s): %r"
            % (sum(skipped.values()), skipped),
            file=sys.stderr,
        )
    if status.checkpoints_written:
        print(
            "checkpoints:   %d -> %s%s"
            % (
                status.checkpoints_written,
                args.checkpoint,
                " (resume verified)" if status.resume_verified else "",
            ),
            file=sys.stderr,
        )


def cmd_pack(args):
    import os

    from repro.artc import artifact

    bench = CompiledBenchmark.load(args.benchmark)
    output = args.output
    if not output:
        stem = args.benchmark
        if stem.endswith(".json"):
            stem = stem[: -len(".json")]
        elif stem.endswith(".artcb"):
            stem = stem[: -len(".artcb")]
        output = stem + (".json" if args.unpack else ".artcb")
    bench.save(output)
    if output.endswith(".artcb"):
        print(
            "packed %s: %d actions -> %s (%d bytes, sha256 %s)"
            % (
                bench.label or args.benchmark,
                len(bench),
                output,
                os.path.getsize(output),
                artifact.content_hash(output)[:16],
            )
        )
    else:
        print(
            "unpacked %s: %d actions -> %s (%d bytes)"
            % (
                bench.label or args.benchmark,
                len(bench),
                output,
                os.path.getsize(output),
            )
        )
    return 0


def _lookup_platform(args):
    from repro.bench.platforms import PLATFORMS

    try:
        platform = PLATFORMS[args.platform]
    except KeyError:
        print(
            "unknown platform %r; choose from: %s"
            % (args.platform, ", ".join(sorted(PLATFORMS))),
            file=sys.stderr,
        )
        return None
    if getattr(args, "cache_mb", 0):
        platform = platform.variant(cache_bytes=args.cache_mb << 20)
    return platform


def _parse_timing(timing):
    if timing in ("afap", "natural"):
        return timing
    return float(timing)


def _export_obs(obs, args):
    """Write ``--metrics-out`` / ``--spans-out`` files, if requested."""
    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w") as handle:
            json.dump(obs.metrics.to_dict(), handle, indent=1)
        print("metrics -> %s" % args.metrics_out, file=sys.stderr)
    if getattr(args, "spans_out", None):
        if args.spans_out.endswith(".jsonl"):
            obs.spans.save_jsonl(args.spans_out)
        else:
            obs.spans.save_chrome(args.spans_out)
        print(
            "%d spans -> %s (open in chrome://tracing or ui.perfetto.dev)"
            % (len(obs.spans), args.spans_out),
            file=sys.stderr,
        )


def _fault_plan_from_args(args):
    """Build a FaultPlan from ``--fault-plan`` and/or ``--fault``
    flags; None when neither was given."""
    plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        plan = FaultPlan.load(args.fault_plan)
    if args.fault:
        from repro.faults import FaultPlan, parse_rule

        if plan is None:
            plan = FaultPlan()
        for text in args.fault:
            plan.add(parse_rule(text))
    if plan is not None and args.fault_seed is not None:
        plan.seed = args.fault_seed
    return plan


def _harden_from_args(args):
    """Build a HardenConfig from ``--retry-max``/``--watchdog``/
    ``--degrade``; None when hardening is off (the classic replayer)."""
    if not (args.retry_max or args.watchdog or args.degrade):
        return None
    from repro.faults import HardenConfig, RetryPolicy

    retry = None
    if args.retry_max:
        retry = RetryPolicy(max_attempts=args.retry_max, base=args.retry_base)
    return HardenConfig(
        retry=retry, watchdog_stall=args.watchdog or None, degrade=args.degrade
    )


def cmd_replay(args):
    from repro.errors import ReplayAborted

    core = args.core
    jobs = getattr(args, "jobs", 1)
    if jobs > 1 and core == "auto":
        core = "shard"
    if jobs > 1 and core != "shard":
        print("--jobs %d requires --core shard (the %s core is "
              "single-process); rerun with --jobs 1" % (jobs, core),
              file=sys.stderr)
        return 2
    if args.follow:
        return _replay_follow(args)
    bench = CompiledBenchmark.load(args.benchmark)
    platform = _lookup_platform(args)
    if platform is None:
        return 2
    obs = None
    if args.metrics_out or args.spans_out:
        from repro.obs import Observability

        obs = Observability()
    plan = _fault_plan_from_args(args)
    if jobs > 1 and (plan is not None or args.crash_at is not None):
        print("--jobs %d does not combine with fault injection or "
              "--crash-at: fault state is process-global; rerun with "
              "--jobs 1 for the single-process fallback" % jobs,
              file=sys.stderr)
        return 2
    config = ReplayConfig(
        mode=args.mode,
        timing=_parse_timing(args.timing),
        jitter=args.jitter,
        emulation=EmulationOptions(fsync_mode=args.fsync_mode),
        harden=_harden_from_args(args),
        core=core,
        jobs=jobs,
    )
    result = None
    try:
        if plan is not None or args.crash_at is not None:
            from repro.faults import replay_with_faults

            result = replay_with_faults(
                bench, platform, config=config, plan=plan,
                crash_at=args.crash_at, recover=args.recover,
                seed=args.seed, obs=obs,
            )
            report = result.report
        else:
            fs = platform.make_fs(seed=args.seed, obs=obs)
            if bench.snapshot is not None:
                initialize(fs, bench.snapshot)
            report = replay(bench, fs, config)
    except ReplayAborted as exc:
        if obs is not None:
            _export_obs(obs, args)
        print("replay aborted: %s" % exc, file=sys.stderr)
        for key, value in sorted(getattr(exc, "context", {}).items()):
            print("  %s: %r" % (key, value), file=sys.stderr)
        return 3
    if obs is not None:
        _export_obs(obs, args)
    state_digest = None
    if args.state_digest:
        if result is not None:
            print("--state-digest ignores fault/crash replays", file=sys.stderr)
        else:
            from repro.verify.abstract import fs_digest

            state_digest = fs_digest(fs)
    if result is not None and args.fault_log_out:
        with open(args.fault_log_out, "w") as handle:
            json.dump(result.fault_events, handle, indent=1)
        print(
            "%d fault events -> %s" % (len(result.fault_events),
                                       args.fault_log_out),
            file=sys.stderr,
        )
    if args.json:
        summary = report.summary() if result is None else result.summary()
        if state_digest is not None:
            summary["state_digest"] = state_digest
        print(json.dumps(summary, indent=1))
    else:
        if state_digest is not None:
            print("state-digest:  %s" % state_digest)
        print("mode:          %s" % report.mode)
        print("elapsed:       %.6f simulated seconds" % report.elapsed)
        print("actions:       %d" % report.n_actions)
        print("failures:      %d" % report.failures)
        if report.failures:
            print("  by errno:    %r" % (report.failures_by_errno(),))
        print("thread-time:   %.6f s" % report.thread_time())
        print("concurrency:   %.2f outstanding calls" % report.mean_outstanding())
        if args.categories:
            for category, seconds in sorted(
                report.thread_time_by_category().items(), key=lambda kv: -kv[1]
            ):
                if seconds:
                    print("  %-8s %.6f s" % (category, seconds))
        if args.timeline:
            print(report.render_timeline())
        if args.warnings:
            for warning in report.warnings:
                print("warning: #%d %s: %s" % (warning.idx, warning.kind,
                                               warning.message))
        if result is not None:
            if result.fault_counts:
                print("faults:        %d injected %r" % (
                    len(result.fault_events), result.fault_counts))
            if result.crashed:
                print("crashed:       t=%.6f (%d/%d actions completed)" % (
                    result.crashed_at, report.n_actions, len(bench)))
                if result.recovered is not None:
                    print("recovered:     %d entries, %d violation(s)" % (
                        len(result.recovered.entries), len(result.violations)))
                for violation in result.violations:
                    print("violation:     [%s] %s: %s" % (
                        violation.kind, violation.path, violation.message))
                if result.resume_report is not None:
                    resumed = result.resume_report
                    print("resumed:       %d actions, %d failures, "
                          "%.6f s" % (resumed.n_actions, resumed.failures,
                                      resumed.elapsed))
    if result is not None and result.violations:
        return 1  # consistency violations: surviving state broke a promise
    return 0


def _replay_follow(args):
    """``artc replay --follow``: the positional is a growing *trace*
    (file or watch-folder); compile and replay it live
    (docs/STREAMING.md)."""
    from repro.errors import ReplayAborted, TraceError
    from repro.stream.follow import follow_replay

    if args.fault or args.fault_plan or args.crash_at is not None:
        print("--follow does not combine with fault injection or "
              "--crash-at; replay the finished trace instead",
              file=sys.stderr)
        return 2
    if getattr(args, "jobs", 1) > 1 or args.core == "shard":
        print("--follow does not combine with --jobs/--core shard: "
              "live ingestion is inherently single-process; rerun "
              "with --jobs 1, or shard the finished trace",
              file=sys.stderr)
        return 2
    platform = _lookup_platform(args)
    if platform is None:
        return 2
    obs = None
    if args.metrics_out or args.spans_out:
        from repro.obs import Observability

        obs = Observability()
    config = ReplayConfig(
        mode=args.mode,
        timing=_parse_timing(args.timing),
        jitter=args.jitter,
        emulation=EmulationOptions(fsync_mode=args.fsync_mode),
        harden=_harden_from_args(args),
        core=args.core,
    )
    snapshot = Snapshot.load(args.snapshot) if args.snapshot else None
    fs = platform.make_fs(seed=args.seed, obs=obs)
    if snapshot is not None:
        initialize(fs, snapshot)
    try:
        report, status = follow_replay(
            args.benchmark,
            fs,
            config,
            ruleset=_ruleset_from_args(args),
            snapshot=snapshot,
            window=args.window,
            poll=args.poll,
            idle_timeout=args.idle_timeout or None,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
    except TraceError as exc:
        print("replay --follow: %s" % exc, file=sys.stderr)
        return 3
    except ReplayAborted as exc:
        if obs is not None:
            _export_obs(obs, args)
        print("replay aborted: %s" % exc, file=sys.stderr)
        for key, value in sorted(getattr(exc, "context", {}).items()):
            print("  %s: %r" % (key, value), file=sys.stderr)
        return 3
    if obs is not None:
        _export_obs(obs, args)
    state_digest = None
    if args.state_digest:
        from repro.verify.abstract import fs_digest

        state_digest = fs_digest(fs)
    if args.json:
        summary = report.summary()
        summary["stream"] = status.to_dict()
        if state_digest is not None:
            summary["state_digest"] = state_digest
        print(json.dumps(summary, indent=1))
        return 0
    if state_digest is not None:
        print("state-digest:  %s" % state_digest)
    print("mode:          %s (%s follow)" % (report.mode, status.mode))
    print("elapsed:       %.6f simulated seconds" % report.elapsed)
    print("actions:       %d" % report.n_actions)
    print("failures:      %d" % report.failures)
    if report.failures:
        print("  by errno:    %r" % (report.failures_by_errno(),))
    print("thread-time:   %.6f s" % report.thread_time())
    print("concurrency:   %.2f outstanding calls" % report.mean_outstanding())
    print(
        "stream:        %d records, %d resyncs; window high-water "
        "%d (cap %d), %d retired, %d backpressure pauses, "
        "%d cap overrides, %d producer waits"
        % (
            status.records,
            status.resyncs,
            status.window_high_water,
            status.window_cap,
            status.retired,
            status.backpressure_pauses,
            status.cap_overrides,
            status.producer_waits,
        )
    )
    print("stream-digest: %s" % status.digest)
    _print_stream_warnings(status, args)
    if args.warnings:
        for warning in report.warnings:
            print("warning: #%d %s: %s" % (warning.idx, warning.kind,
                                           warning.message))
    return 0


def cmd_profile(args):
    """Replay under full instrumentation; explain where the time went."""
    from repro.bench.harness import profile_benchmark

    bench = CompiledBenchmark.load(args.benchmark)
    platform = _lookup_platform(args)
    if platform is None:
        return 2
    report, obs, critpath = profile_benchmark(
        bench,
        platform,
        mode=args.mode,
        seed=args.seed,
        timing=_parse_timing(args.timing),
        reduced_deps=not args.no_reduce,
    )
    _export_obs(obs, args)
    if args.json:
        print(
            json.dumps(
                {
                    "summary": report.summary(),
                    "critical_path": critpath.to_dict(),
                    "metrics": obs.metrics.to_dict(),
                },
                indent=1,
            )
        )
        return 0
    print("benchmark:       %s" % (bench.label or args.benchmark))
    print("platform:        %s   mode: %s   timing: %s"
          % (platform.name, report.mode, args.timing))
    print("elapsed:         %.6f simulated seconds" % report.elapsed)
    print("thread-time:     %.6f s (%.2f outstanding calls)"
          % (report.thread_time(), report.mean_outstanding()))
    if report.failures:
        print("failures:        %d" % report.failures)
    print()
    print(critpath.render(makespan=report.elapsed))
    print()
    print(obs.metrics.render())
    return 0


def cmd_lint(args):
    from repro.lint import EXIT_INTERNAL, lint_benchmark, lint_trace
    from repro.tracing.snapshot import Snapshot as _Snapshot

    try:
        bench = _maybe_load_benchmark(args.trace)
        if bench is not None and not args.mode_flags:
            report = lint_benchmark(
                bench, modes=not args.no_modes,
                max_findings=args.max_findings,
            )
        else:
            if bench is not None:
                trace = bench.to_trace()
                snapshot = bench.snapshot
            else:
                trace = _load_trace(args.trace)
                snapshot = (
                    _Snapshot.load(args.snapshot) if args.snapshot
                    else _Snapshot()
                )
            report = lint_trace(
                trace,
                snapshot,
                ruleset=_ruleset_from_args(args),
                modes=not args.no_modes,
                max_findings=args.max_findings,
                reduce=not args.no_reduce,
            )
    except Exception as exc:  # internal error: distinct exit code for CI
        if args.debug:
            raise
        print("lint: internal error: %s" % (exc,), file=sys.stderr)
        return EXIT_INTERNAL
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render(max_findings=args.max_findings))
    return report.exit_code


def cmd_verify(args):
    from repro.lint import EXIT_INTERNAL
    from repro.tracing.snapshot import Snapshot as _Snapshot
    from repro.verify import CORES, verify_benchmark

    try:
        bench = _maybe_load_benchmark(args.input)
        if bench is None:
            trace = _load_trace(args.input)
            snapshot = (
                _Snapshot.load(args.snapshot) if args.snapshot
                else _Snapshot()
            )
            bench = compile_trace(trace, snapshot)
        if args.core == "all":
            cores = list(CORES)
        else:
            cores = [c.strip() for c in args.core.split(",") if c.strip()]
        modes = None
        if args.modes != "all":
            modes = [m.strip() for m in args.modes.split(",") if m.strip()]
        platform = None
        if args.dynamic:
            platform = _lookup_platform(args)
            if platform is None:
                return 2
        result = verify_benchmark(
            bench, cores=cores, modes=modes, dynamic=args.dynamic,
            platform=platform, seed=args.seed,
            max_findings=args.max_findings,
            jobs=args.jobs or None,
        )
        if args.embed:
            if not args.input.endswith(".artcb"):
                print("--embed needs an .artcb input; skipping",
                      file=sys.stderr)
            else:
                from repro.artc import artifact

                bench.certificates = result.certificates
                artifact.save(bench, args.input)
                print(
                    "embedded %d certificates -> %s"
                    % (len(result.certificates), args.input),
                    file=sys.stderr,
                )
    except Exception as exc:  # internal error: distinct exit code for CI
        if args.debug:
            raise
        print("verify: internal error: %s" % (exc,), file=sys.stderr)
        return EXIT_INTERNAL
    if args.json:
        print(json.dumps(result.to_dict(), indent=1))
    else:
        print(result.report.render(max_findings=args.max_findings))
        for cert in result.certificates:
            print(
                "certificate %-10s %-8s %d obligations, %d violations"
                % (cert.core, "ok" if cert.ok else "REJECTED",
                   cert.n_obligations, len(cert.findings))
            )
        for pred in result.predictions:
            if pred.status == "exact":
                print(
                    "prediction  %-20s exact    digest %s.."
                    % (pred.mode, (pred.digest or "")[:16])
                )
            else:
                print(
                    "prediction  %-20s UNKNOWN  %s"
                    % (pred.mode, pred.reason)
                )
    return result.exit_code


def cmd_convert(args):
    trace = _load_trace(args.input)
    _save_trace(trace, args.output)
    print("converted %d records -> %s" % (len(trace), args.output))
    return 0


def _maybe_load_benchmark(path):
    """A compiled benchmark if ``path`` holds one, else None.  (Both
    benchmarks and JSON-lines traces are JSON; the format header on
    the first line tells them apart.)"""
    if path.endswith((".strace", ".ibench")):
        return None
    if path.endswith(".artcb"):
        # Binary artifacts are unambiguous; load loudly so a corrupt
        # or old-version file surfaces its ArtifactError.
        return CompiledBenchmark.load(path)
    try:
        with open(path) as handle:
            first = handle.readline()
        if '"artc-benchmark-v1"' not in first:
            return None
        return CompiledBenchmark.load(path)
    except (OSError, ValueError):
        return None


def cmd_stats(args):
    from repro.tracing.stats import format_statistics, trace_statistics

    bench = _maybe_load_benchmark(args.trace)
    if bench is not None:
        stats = bench.stats
        n_edges = stats.get("n_edges", bench.graph.n_edges)
        reduced = stats.get("n_edges_reduced", bench.graph.n_reduced_edges)
        removed = stats.get("edges_removed", n_edges - reduced)
        print("benchmark %s: %d actions, %d threads" % (
            bench.label or "?", len(bench), len(bench.threads)))
        print("edges:           %d materialized" % n_edges)
        print("reduced edges:   %d waited on at replay (%d removed, %.1f%%)" % (
            reduced, removed, (100.0 * removed / n_edges) if n_edges else 0.0))
        print("model misses:    %d" % stats.get("model_misses", 0))
        if "compile_seconds" in stats:
            print("compile time:    %.3f s" % stats["compile_seconds"])
        if args.jobs:
            from repro.artc.shardplan import plan_for

            plan = plan_for(bench, args.jobs)
            print("shard plan:      %d shards for --jobs %d" % (
                plan.stats["shards"], args.jobs))
            print("  cross edges:   %d (cut fraction %.1f%%)" % (
                plan.stats["cross_edges"],
                100.0 * plan.stats["cut_fraction"]))
            print("  shard loads:   %s" % (
                ", ".join(str(c) for c in plan.stats["actions_per_shard"])))
            if plan.stats.get("components") is not None:
                print("  components:    %d (largest %d)" % (
                    plan.stats["components"],
                    plan.stats.get("largest_component", 0)))
            if plan.stats.get("fallback"):
                print("  fallback:      %s" % plan.stats["fallback"])
        if args.ir:
            from repro.artc import planir

            print(planir.default_plan(bench).render(bench))
        from repro.obs import trace_critical_path

        print(trace_critical_path(bench).render())
        print()
        print(format_statistics(trace_statistics(bench.to_trace())))
        return 0
    if args.ir:
        print("--ir needs a compiled benchmark (got a raw trace); "
              "run 'artc compile' first", file=sys.stderr)
        return 1
    trace = _load_trace(args.trace)
    print(format_statistics(trace_statistics(trace)))
    return 0


def cmd_trace(args):
    from repro.bench.harness import trace_application
    from repro.bench.platforms import PLATFORMS
    from repro.leveldb.apps import LevelDBFillSync, LevelDBReadRandom
    from repro.workloads import (
        CacheSensitiveReaders,
        CompetingSequentialReaders,
        ParallelRandomReaders,
    )

    workloads = {
        "randreads": lambda: ParallelRandomReaders(nthreads=args.threads),
        "cachereaders": CacheSensitiveReaders,
        "seqreaders": CompetingSequentialReaders,
        "leveldb-fillsync": lambda: LevelDBFillSync(nthreads=args.threads),
        "leveldb-readrandom": lambda: LevelDBReadRandom(nthreads=args.threads),
    }
    try:
        app = workloads[args.workload]()
    except KeyError:
        print(
            "unknown workload %r; choose from: %s"
            % (args.workload, ", ".join(sorted(workloads))),
            file=sys.stderr,
        )
        return 2
    platform = PLATFORMS[args.platform]
    result = trace_application(app, platform, seed=args.seed)
    _save_trace(result.trace, args.output)
    snapshot_path = args.snapshot or (args.output + ".snapshot.json")
    result.snapshot.save(snapshot_path)
    print(
        "traced %s on %s: %d events over %.4f s -> %s (+ %s)"
        % (
            app.name,
            platform.name,
            len(result.trace),
            result.elapsed,
            args.output,
            snapshot_path,
        )
    )
    return 0


def cmd_magritte(args):
    from repro.bench.harness import trace_application
    from repro.bench.platforms import PLATFORMS
    from repro.workloads.magritte import build_suite, suite_names

    if args.list:
        for name in suite_names():
            print(name)
        return 0
    if not args.app:
        print("choose --app <name> or --list", file=sys.stderr)
        return 2
    suite = build_suite([args.app])
    result = trace_application(
        suite[args.app], PLATFORMS["mac-ssd"], seed=args.seed, warm_cache=True
    )
    out = args.output or (args.app + ".strace")
    _save_trace(result.trace, out)
    snapshot_path = args.snapshot or (out + ".snapshot.json")
    result.snapshot.save(snapshot_path)
    print(
        "%s: %d events, %d threads -> %s (+ %s)"
        % (args.app, len(result.trace), len(result.trace.threads), out, snapshot_path)
    )
    return 0


def cmd_serve(args):
    """Run the replay-as-a-service daemon until SIGINT/SIGTERM."""
    from repro.serve import QuotaPolicy, ServeConfig, run_server

    if not args.socket and args.port is None:
        print("serve needs --socket PATH and/or --port N", file=sys.stderr)
        return 2
    config = ServeConfig(
        unix_path=args.socket or None,
        host=args.host,
        port=args.port,
        workers=args.workers or None,
        artifact_dir=args.artifact_dir or None,
        default_timeout=args.timeout or None,
        quota=QuotaPolicy(
            max_inflight=args.max_inflight,
            actions_per_sec=args.actions_per_sec,
            burst_actions=args.burst_actions,
        ),
        allow_debug=args.allow_debug,
    )
    return run_server(config)


def _submit_params(args):
    """Build a request's params from ``artc submit`` flags."""
    if args.params:
        params = json.loads(args.params)
        if not isinstance(params, dict):
            raise ValueError("--params must be a JSON object")
    else:
        params = {}
    for name in ("app", "source", "platform", "mode", "core", "timing",
                 "benchmark", "ruleset", "trace", "checkpoint"):
        value = getattr(args, name, None)
        if value is not None:
            params.setdefault(name, value)
    if args.seed is not None:
        params.setdefault("seed", args.seed)
    if args.replay_seed is not None:
        params.setdefault("replay_seed", args.replay_seed)
    if args.warm_cache:
        params.setdefault("warm_cache", True)
    if args.app_args:
        params.setdefault("app_args", json.loads(args.app_args))
    return params


def cmd_submit(args):
    from repro.serve.client import submit_many

    if not args.socket and args.port is None:
        print("submit needs --socket PATH or --port N", file=sys.stderr)
        return 2
    client_kwargs = (
        {"unix_path": args.socket} if args.socket
        else {"host": args.host, "port": args.port}
    )
    try:
        params = _submit_params(args)
    except ValueError as exc:
        print("submit: %s" % exc, file=sys.stderr)
        return 2
    requests = [(args.kind, params, args.job_timeout)] * args.count
    envelopes = submit_many(
        client_kwargs, requests,
        concurrency=args.concurrency, tenant=args.tenant,
    )
    failed = sum(1 for env in envelopes if not env.get("ok"))
    if args.count == 1 and not args.summary:
        print(json.dumps(envelopes[0], indent=1, sort_keys=True))
    else:
        statuses = {}
        coalesced = cached = 0
        for env in envelopes:
            statuses[env.get("status")] = statuses.get(env.get("status"), 0) + 1
            coalesced += 1 if env.get("coalesced") else 0
            cached += 1 if env.get("cached") else 0
        print(json.dumps({
            "requests": len(envelopes),
            "ok": len(envelopes) - failed,
            "failed": failed,
            "statuses": statuses,
            "coalesced": coalesced,
            "cached": cached,
        }, indent=1, sort_keys=True))
        if args.verbose:
            for env in envelopes:
                print(json.dumps(env, sort_keys=True))
    return 1 if failed else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="artc", description="ROOT/ARTC trace compiler and replayer"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a trace into a benchmark")
    p.add_argument("trace", help="trace file (.strace or JSON-lines)")
    p.add_argument("-s", "--snapshot", help="initial file-tree snapshot (JSON)")
    p.add_argument("-o", "--output", default="benchmark.json")
    p.add_argument("--dump-ir", action="store_true",
                   help="print the per-action execution-plan IR after "
                   "compiling (debugging codegen divergences)")
    p.add_argument(
        "--mode-flags",
        help="comma list of RuleSet flags, e.g. 'no-file-seq,file-size'",
    )
    p.add_argument(
        "--no-reduce", action="store_true",
        help="skip the edge-reduction pass (replay waits on every edge)",
    )
    stream = p.add_argument_group(
        "streaming ingestion (docs/STREAMING.md)"
    )
    stream.add_argument(
        "--stream", action="store_true",
        help="tail the trace while it is being written (single growing "
        "file or watch-folder of segments; '<trace>.done' or '.done' "
        "marks the end) and compile incrementally -- byte-identical "
        "output to the batch path",
    )
    stream.add_argument("--checkpoint", metavar="PATH",
                        help="write crash-resumable ingestion checkpoints "
                        "(atomic rename)")
    stream.add_argument("--checkpoint-every", type=int, default=256,
                        metavar="N",
                        help="checkpoint every N compiled actions "
                        "(default 256)")
    stream.add_argument("--resume", action="store_true",
                        help="validate against an existing --checkpoint "
                        "and continue from the durable prefix")
    stream.add_argument("--poll", type=float, default=0.05, metavar="S",
                        help="producer poll interval in wall seconds "
                        "(default 0.05)")
    stream.add_argument("--idle-timeout", type=float, default=0.0,
                        metavar="S",
                        help="abort if the producer makes no progress for "
                        "S wall seconds (0 = wait forever)")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "pack",
        help="pack a benchmark into a versioned .artcb artifact "
        "(or back to JSON with --unpack)",
    )
    p.add_argument("benchmark", help="benchmark file (.json or .artcb)")
    p.add_argument(
        "-o", "--output",
        help="output path (default: input with the extension swapped); "
        "the extension selects the format",
    )
    p.add_argument(
        "--unpack", action="store_true",
        help="default the output to .json instead of .artcb",
    )
    p.set_defaults(func=cmd_pack)

    p = sub.add_parser("replay", help="replay a compiled benchmark")
    p.add_argument("benchmark")
    p.add_argument("-p", "--platform", default="hdd-ext4")
    p.add_argument(
        "-m", "--mode", default=ReplayMode.ARTC,
        choices=list(ReplayMode.ALL),
    )
    p.add_argument("-t", "--timing", default="afap",
                   help="'afap', 'natural', or a predelay scale factor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jitter", type=float, default=0.0)
    p.add_argument(
        "--core", default="auto",
        choices=["auto", "scoreboard", "events", "jit", "shard"],
        help="dependency-enforcement core: 'auto' picks the scoreboard "
        "whenever supported and falls back to the per-action event "
        "machinery; 'shard' partitions the benchmark across --jobs "
        "forked worker processes (default: auto)",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the shard core; --jobs N with "
        "--core auto selects the shard core (default: 1)",
    )
    p.add_argument("--cache-mb", type=int, default=0, help="override cache size")
    p.add_argument("--fsync-mode", default="durable", choices=["durable", "flush"])
    p.add_argument("--categories", action="store_true",
                   help="print the per-category thread-time breakdown")
    p.add_argument("--timeline", action="store_true",
                   help="print an ASCII per-thread concurrency timeline")
    p.add_argument("--warnings", action="store_true",
                   help="print nonconformance warnings")
    p.add_argument("--metrics-out",
                   help="write the metrics registry as JSON (enables "
                   "instrumentation)")
    p.add_argument("--spans-out",
                   help="write spans as Chrome trace_event JSON "
                   "(.jsonl for JSON-lines; enables instrumentation)")
    p.add_argument("--state-digest", action="store_true",
                   help="print (or add to --json) the canonical digest "
                   "of the final replayed FS state; 'artc serve' replay "
                   "responses carry the same digest, so the two can be "
                   "compared byte for byte")
    p.add_argument("--json", action="store_true")
    fault = p.add_argument_group(
        "fault injection & crash/recovery (repro.faults)"
    )
    fault.add_argument(
        "--fault", action="append", default=[], metavar="RULE",
        help="inject a fault rule: 'kind@time' or 'kind:key=val:...' "
        "(kinds: eio, latency, stall, torn_write); repeatable",
    )
    fault.add_argument("--fault-plan", metavar="PATH",
                       help="load a repro-faultplan-v1 JSON plan")
    fault.add_argument("--fault-seed", type=int, default=None,
                       help="override the plan's RNG seed")
    fault.add_argument("--fault-log-out", metavar="PATH",
                       help="write the injected fault event log as JSON")
    fault.add_argument("--crash-at", type=float, default=None, metavar="T",
                       help="kill the simulated machine at time T; report "
                       "what survived (exit 1 on consistency violations)")
    fault.add_argument("--recover", action="store_true",
                       help="after --crash-at, resume the remaining actions "
                       "on the recovered file system")
    fault.add_argument("--retry-max", type=int, default=0, metavar="N",
                       help="hardened replayer: retry transient EIO up to N "
                       "times with capped exponential backoff")
    fault.add_argument("--retry-base", type=float, default=0.005,
                       help="base backoff delay in simulated seconds "
                       "(default 0.005)")
    fault.add_argument("--watchdog", type=float, default=0.0, metavar="S",
                       help="hardened replayer: abort (exit 3) with a cycle "
                       "diagnosis if no progress for S simulated seconds")
    fault.add_argument("--degrade", action="store_true",
                       help="hardened replayer: record-and-skip actions "
                       "whose dependencies failed instead of cascading")
    follow = p.add_argument_group("live follow (docs/STREAMING.md)")
    follow.add_argument(
        "--follow", action="store_true",
        help="treat the positional as a growing *trace* (file or "
        "watch-folder), compile it incrementally, and replay it live "
        "as it is written -- byte-identical to batch compile+replay",
    )
    follow.add_argument("-s", "--snapshot",
                        help="initial file-tree snapshot (--follow only; "
                        "batch replays embed theirs in the benchmark)")
    follow.add_argument(
        "--mode-flags",
        help="comma list of compile RuleSet flags for --follow, "
        "e.g. 'no-file-seq,file-size'",
    )
    follow.add_argument("--window", type=int, default=4096, metavar="N",
                        help="bounded ingestion window in actions; at the "
                        "cap, ingestion pauses until replay catches up "
                        "(default 4096)")
    follow.add_argument("--poll", type=float, default=0.05, metavar="S",
                        help="producer poll interval in wall seconds "
                        "(default 0.05)")
    follow.add_argument("--idle-timeout", type=float, default=0.0,
                        metavar="S",
                        help="abort (exit 3, 'awaiting producer') if the "
                        "producer makes no progress for S wall seconds "
                        "(0 = wait forever)")
    follow.add_argument("--checkpoint", metavar="PATH",
                        help="write crash-resumable ingestion checkpoints")
    follow.add_argument("--checkpoint-every", type=int, default=256,
                        metavar="N",
                        help="checkpoint every N compiled actions "
                        "(default 256)")
    follow.add_argument("--resume", action="store_true",
                        help="validate against an existing --checkpoint "
                        "and continue from the durable prefix")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "profile",
        help="replay a compiled benchmark under full instrumentation "
        "and report the critical path + where the time went",
    )
    p.add_argument("benchmark")
    p.add_argument("-p", "--platform", default="hdd-ext4")
    p.add_argument(
        "-m", "--mode", default=ReplayMode.ARTC,
        choices=list(ReplayMode.ALL),
    )
    p.add_argument("-t", "--timing", default="afap",
                   help="'afap', 'natural', or a predelay scale factor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-mb", type=int, default=0, help="override cache size")
    p.add_argument("--no-reduce", action="store_true",
                   help="replay (and bound) over the full edge set")
    p.add_argument("--metrics-out",
                   help="write the metrics registry as JSON")
    p.add_argument("--spans-out",
                   help="write spans as Chrome trace_event JSON "
                   "(.jsonl for JSON-lines)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "lint", help="static race & divergence analysis over a trace "
        "or compiled benchmark (exit 0 clean, 1 findings, 2 internal error)"
    )
    p.add_argument("trace", help="trace file or compiled benchmark JSON")
    p.add_argument("-s", "--snapshot", help="initial file-tree snapshot (JSON)")
    p.add_argument(
        "--mode-flags",
        help="certify this RuleSet instead of the ARTC default "
        "(or the benchmark's compiled rule set), e.g. 'no-file-seq'",
    )
    p.add_argument("--no-modes", action="store_true",
                   help="skip the per-mode safety matrix")
    p.add_argument("--no-reduce", action="store_true",
                   help="skip edge reduction (graph pass then has no "
                   "reduction to verify)")
    p.add_argument("--max-findings", type=int, default=25,
                   help="detailed findings shown per pass (default 25)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--debug", action="store_true",
                   help="let internal errors raise instead of exiting 2")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "verify", help="static verification: translation-validate the "
        "replay cores and predict replay outcomes without running them "
        "(exit 0 verified, 1 rejected, 2 internal error)"
    )
    p.add_argument("input",
                   help="trace file, benchmark JSON, or .artcb artifact")
    p.add_argument("-s", "--snapshot",
                   help="initial file-tree snapshot (raw traces only)")
    p.add_argument(
        "--core", default="all",
        help="comma list of replay cores to certify: "
        "events,scoreboard,jit (default: all)",
    )
    p.add_argument(
        "--modes", default="all",
        help="comma list of replay modes for abstract prediction "
        "(default: all)",
    )
    p.add_argument("--dynamic", action="store_true",
                   help="cross-check every exact prediction against a "
                   "real replay (any contradiction is an error finding)")
    p.add_argument("-j", "--jobs", type=int, default=0, metavar="N",
                   help="additionally certify the shard core's "
                   "partition plan for N worker processes (every "
                   "cross-shard edge covered by exactly one completion "
                   "flag, shards an exact partition)")
    p.add_argument("-p", "--platform", default="hdd-ext4",
                   help="target platform for --dynamic")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-findings", type=int, default=25,
                   help="detailed findings shown per pass (default 25)")
    p.add_argument("--embed", action="store_true",
                   help="write the certificates back into the input .artcb")
    p.add_argument("--json", action="store_true")
    p.add_argument("--debug", action="store_true",
                   help="let internal errors raise instead of exiting 2")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("convert", help="convert between trace formats")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser(
        "stats", help="summarize a trace's contents (or a compiled "
        "benchmark's graph + compile stats)"
    )
    p.add_argument("trace", help="trace file or compiled benchmark JSON")
    p.add_argument("--ir", action="store_true",
                   help="include the execution-plan IR summary "
                   "(per-thread per-kind counts)")
    p.add_argument("-j", "--jobs", type=int, default=0, metavar="N",
                   help="include the shard-core partition plan for N "
                   "worker processes (shards, cross edges, cut "
                   "fraction)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("trace", help="trace a built-in workload")
    p.add_argument("workload")
    p.add_argument("-p", "--platform", default="hdd-ext4")
    p.add_argument("-o", "--output", default="trace.strace")
    p.add_argument("-s", "--snapshot")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("magritte", help="generate Magritte suite traces")
    p.add_argument("--list", action="store_true", help="list the 34 trace names")
    p.add_argument("--app")
    p.add_argument("-o", "--output")
    p.add_argument("-s", "--snapshot")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_magritte)

    p = sub.add_parser(
        "serve",
        help="run the replay-as-a-service daemon: sharded worker "
        "processes, request coalescing, per-tenant quotas, warm "
        "serving from the artifact cache (docs/SERVICE.md)",
    )
    p.add_argument("--socket", metavar="PATH",
                   help="unix socket to listen on (JSON-lines + HTTP)")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port to listen on (0 picks a free one)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes / shards (default: cores/2, "
                   "clamped to [2, 8])")
    p.add_argument("--artifact-dir", metavar="DIR",
                   help="content-addressed .artcb cache root (default: "
                   "$ARTC_ARTIFACT_DIR or the user cache dir)")
    p.add_argument("--timeout", type=float, default=0.0, metavar="S",
                   help="default per-request timeout in wall seconds "
                   "(0 = none; a timed-out worker is killed and "
                   "re-spawned)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="per-tenant concurrent-request cap (default 64; "
                   "0 disables)")
    p.add_argument("--actions-per-sec", type=float, default=0.0,
                   help="per-tenant replayed-actions/sec budget "
                   "(default 0: unlimited)")
    p.add_argument("--burst-actions", type=float, default=None,
                   help="token-bucket capacity in actions (default: "
                   "4 x actions-per-sec)")
    p.add_argument("--allow-debug", action="store_true",
                   help="enable 'debug' requests (crash/sleep/echo) "
                   "for tests and drills")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="send requests to a running 'artc serve' daemon",
    )
    p.add_argument(
        "kind",
        choices=["compile", "replay", "lint", "profile", "verify",
                 "stream", "ping", "status", "metrics", "shutdown",
                 "debug"],
    )
    p.add_argument("--socket", metavar="PATH", help="daemon unix socket")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None, help="daemon TCP port")
    p.add_argument("--app", help="cell: Magritte trace or workload name")
    p.add_argument("--app-args", metavar="JSON",
                   help="workload constructor keywords, e.g. "
                   "'{\"nthreads\": 4}'")
    p.add_argument("--source", help="cell: traced-on platform")
    p.add_argument("-p", "--platform", help="replay-on platform")
    p.add_argument("-m", "--mode", choices=list(ReplayMode.ALL))
    p.add_argument("--core", choices=["auto", "scoreboard", "events", "jit"])
    p.add_argument("-t", "--timing")
    p.add_argument("--seed", type=int, default=None, help="cell trace seed")
    p.add_argument("--replay-seed", type=int, default=None,
                   help="target-platform seed (defaults to the cell seed)")
    p.add_argument("--ruleset", help="compile ruleset flags, "
                   "e.g. 'no-file-seq,file-size'")
    p.add_argument("--warm-cache", action="store_true")
    p.add_argument("--benchmark", metavar="PATH",
                   help="replay an already-compiled benchmark file "
                   "instead of a cell")
    p.add_argument("--trace", metavar="PATH",
                   help="stream: trace file or watch-folder to ingest "
                   "(server-side path)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="stream: checkpoint file for resumable ingestion "
                   "(server-side path)")
    p.add_argument("--params", metavar="JSON",
                   help="raw params object (flags above overlay it)")
    p.add_argument("--count", type=int, default=1,
                   help="submit the request N times (load generation)")
    p.add_argument("--concurrency", type=int, default=8,
                   help="client threads/connections for --count (default 8)")
    p.add_argument("--tenant", default="cli")
    p.add_argument("--job-timeout", type=float, default=None, metavar="S",
                   help="server-enforced timeout for each request")
    p.add_argument("--summary", action="store_true",
                   help="print the aggregate summary even for --count 1")
    p.add_argument("--verbose", action="store_true",
                   help="with --count > 1, also print every envelope")
    p.set_defaults(func=cmd_submit)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
