#!/usr/bin/env python
"""The paper's section 2 I/O-space formalism, made executable.

Builds the Figure 2 example trace, derives its action series, and
enumerates the replay orderings each rule set admits -- showing
concretely how stronger rules shrink the I/O space:

    { {1..7} => { [1,2,3,4,5,6,7], [1,2,3,4,6,5,7], ... } }

Run with:  python examples/io_space.py
"""

from repro.core.analysis import action_series, enumerate_io_space
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.5)


def figure2_trace():
    """The paper's Figure 2(a) snippet (two threads, seven actions)."""
    snapshot = Snapshot(label="fig2")
    snapshot.add("/a", "dir")
    snapshot.add("/x", "dir")
    snapshot.add("/x/y", "dir")
    snapshot.add("/x/y/z", "reg", size=100)
    records = [
        rec(0, "T1", "mkdir", {"path": "/a/b", "mode": 0o755}),
        rec(1, "T1", "open", {"path": "/a/b/c", "flags": "O_RDWR|O_CREAT"}, ret=3),
        rec(2, "T1", "write", {"fd": 3, "nbytes": 100}, ret=100),
        rec(3, "T1", "close", {"fd": 3}),
        rec(4, "T1", "rename", {"old": "/a/b", "new": "/a/old"}),
        rec(5, "T2", "open", {"path": "/x/y/z", "flags": "O_RDONLY"}, ret=3),
        rec(6, "T2", "open", {"path": "/a/b", "flags": "O_RDWR|O_CREAT"}, ret=4),
    ]
    return Trace(records, label="fig2"), snapshot


def main():
    trace, snapshot = figure2_trace()
    model = TraceModel(trace, snapshot)

    print("Figure 2(b): action series (resource -> actions, 0-based)")
    for key, acts in sorted(action_series(model.actions).items(), key=str):
        print("  %-28s %s" % (key, acts))

    rule_sets = [
        ("unconstrained (thread_seq)", RuleSet.unconstrained()),
        ("artc default", RuleSet.artc_default()),
        ("file_size variant", RuleSet.with_file_size()),
        ("program_seq", RuleSet(program_seq=True)),
    ]
    print("\nI/O space per rule set (7 actions, 2 threads -> 21 interleavings):")
    spaces = {}
    for label, ruleset in rule_sets:
        space = enumerate_io_space(model.actions, ruleset)
        spaces[label] = set(space)
        print("  %-28s %2d orderings" % (label, len(space)))
        for order in space[:4]:
            print("      %s" % ([i + 1 for i in order],))  # paper is 1-based
        if len(space) > 4:
            print("      ...")

    assert spaces["program_seq"] <= spaces["artc default"] <= spaces[
        "unconstrained (thread_seq)"
    ]
    print("\nSubsumption holds: program_seq ⊆ artc ⊆ unconstrained.")
    print("ARTC's key admitted reordering: T2's open of /x/y/z (action 6)")
    print("may float anywhere, while its open of /a/b (action 7) must wait")
    print("for the rename (action 5) -- the name rule on path /a/b.")


if __name__ == "__main__":
    main()
