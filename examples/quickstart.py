#!/usr/bin/env python
"""Quickstart: trace a small multithreaded program, compile it with
ARTC, and replay it under all four strategies.

Run with:  python examples/quickstart.py
"""

import random

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.artc.report import timing_error
from repro.core.modes import ReplayMode
from repro.sim import Engine
from repro.storage import HDD, StorageStack
from repro.tracing import Snapshot, TracedOS
from repro.vfs import FileSystem


def make_fs(seed=0):
    """A simulated Linux machine: one disk, CFQ, ext4, 256 MB of RAM."""
    engine = Engine(seed)
    stack = StorageStack(engine, HDD(), 256 << 20, fs_profile="ext4")
    return FileSystem(engine, stack, platform="linux")


# ----------------------------------------------------------------------
# 1. The application: two threads sharing a descriptor (the classic
#    open-in-one-thread / use-in-another pattern from the paper's intro).
# ----------------------------------------------------------------------

def producer(osapi, shared, tid=1):
    _, err = yield from osapi.call(tid, "mkdir", path="/data/out", mode=0o755)
    assert err is None
    fd, err = yield from osapi.call(
        tid, "open", path="/data/out/log", flags="O_WRONLY|O_CREAT", mode=0o644
    )
    assert err is None
    shared["fd"] = fd
    for _ in range(64):
        yield from osapi.call(tid, "write", fd=fd, nbytes=4096)
    yield from osapi.call(tid, "fsync", fd=fd)
    shared["done"] = True


def consumer(osapi, shared, tid=2):
    rng = random.Random(7)
    fd_in, err = yield from osapi.call(tid, "open", path="/data/input", flags="O_RDONLY")
    assert err is None
    while not shared.get("done"):
        offset = rng.randrange(4096) * 4096
        yield from osapi.call(tid, "pread", fd=fd_in, nbytes=4096, offset=offset)
    yield from osapi.call(tid, "close", fd=fd_in)
    # The handoff: this thread closes the file the producer opened.
    yield from osapi.call(tid, "close", fd=shared["fd"])


def main():
    # ------------------------------------------------------------------
    # 2. Trace the program on the source system.
    # ------------------------------------------------------------------
    fs = make_fs(seed=1)
    fs.makedirs_now("/data")
    fs.create_file_now("/data/input", size=16 << 20)
    snapshot = Snapshot.capture(fs, roots=("/data",), label="quickstart")

    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="quickstart")
    shared = {}
    engine = fs.engine
    p1 = engine.spawn(producer(osapi, shared), name="T1")
    p2 = engine.spawn(consumer(osapi, shared), name="T2")
    engine.run()
    assert not p1.alive and not p2.alive
    print("traced %d system calls over %.3f simulated seconds"
          % (len(trace), trace.duration))

    # ------------------------------------------------------------------
    # 3. Compile: infer resources, apply the ROOT rules.
    # ------------------------------------------------------------------
    bench = compile_trace(trace, snapshot)
    print("compiled: %d actions, %d cross-thread dependency edges"
          % (len(bench), bench.graph.n_edges))

    # ------------------------------------------------------------------
    # 4. Replay on a fresh target under each mode.
    # ------------------------------------------------------------------
    original = trace.duration
    print("\n%-22s %10s %10s %s" % ("mode", "elapsed", "error", "failures"))
    for mode in (ReplayMode.SINGLE, ReplayMode.TEMPORAL,
                 ReplayMode.UNCONSTRAINED, ReplayMode.ARTC):
        target = make_fs(seed=42)
        initialize(target, snapshot)
        report = replay(bench, target, ReplayConfig(mode=mode))
        print("%-22s %9.3fs %9.1f%% %8d"
              % (mode, report.elapsed,
                 100 * timing_error(report.elapsed, original),
                 report.failures))


if __name__ == "__main__":
    main()
