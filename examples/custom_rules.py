#!/usr/bin/env python
"""Exploring the ordering-rule matrix (paper Tables 1-2).

Compiles one hazard-rich trace under several rule sets and shows how
the dependency graph and the replay's semantic correctness change.

Run with:  python examples/custom_rules.py
"""

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.core.modes import ReplayMode, RuleSet
from repro.workloads.magritte import build_suite

RULE_SETS = [
    ("artc default", RuleSet.artc_default()),
    ("program_seq (strongest)", RuleSet(program_seq=True)),
    ("no path rules", RuleSet(path_stage=False, path_name=False)),
    ("fd_stage instead of fd_seq", RuleSet(fd_seq=False, fd_stage=True)),
    ("unconstrained (thread_seq only)", RuleSet.unconstrained()),
]


def main():
    app = build_suite(["pages_docphoto15"])["pages_docphoto15"]
    source = PLATFORMS["mac-ssd"]
    target = PLATFORMS["ssd"]
    traced = trace_application(app, source, warm_cache=True)
    print("trace: %d events, %d threads\n"
          % (len(traced.trace), len(traced.trace.threads)))

    print("%-32s %8s %10s %10s" % ("rule set", "edges", "failures", "elapsed"))
    for label, ruleset in RULE_SETS:
        bench = compile_trace(traced.trace, traced.snapshot, ruleset=ruleset)
        worst = 0
        for seed in range(3):
            report = replay_benchmark(
                bench, target, ReplayMode.ARTC, seed=600 + seed,
                warm_cache=True, jitter=2e-5,
            )
            worst = max(worst, report.failures)
        print("%-32s %8d %10d %9.4fs"
              % (label, bench.graph.n_edges, worst, report.elapsed))

    print("\nWeaker rule sets admit orderings the original program never "
          "allowed (failures rise); stronger ones constrain the replay "
          "closer to a total order (flexibility falls).")


if __name__ == "__main__":
    main()
