#!/usr/bin/env python
"""Case study: use Magritte benchmarks to compare two storage systems
(paper section 6), with ARTC's detailed per-category thread-time output.

Run with:  python examples/magritte_study.py [app ...]
"""

import sys

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite, suite_names

DEFAULT_APPS = ["iphoto_view400", "itunes_album1", "numbers_open5", "keynote_play20"]


def main():
    names = sys.argv[1:] or DEFAULT_APPS
    unknown = [n for n in names if n not in suite_names()]
    if unknown:
        raise SystemExit("unknown traces %s; choose from: %s"
                         % (unknown, ", ".join(suite_names())))
    suite = build_suite(names)
    source = PLATFORMS["mac-hdd"]

    print("%-24s %12s %12s %8s   dominant categories (HDD)"
          % ("trace", "HDD thr-time", "SSD thr-time", "speedup"))
    for name, app in suite.items():
        traced = trace_application(app, source)
        bench = compile_trace(traced.trace, traced.snapshot)
        breakdowns = {}
        for target in ("hdd-ext4", "ssd"):
            report = replay_benchmark(
                bench, PLATFORMS[target], ReplayMode.ARTC, seed=300
            )
            breakdowns[target] = report.thread_time_by_category()
        hdd_total = sum(breakdowns["hdd-ext4"].values())
        ssd_total = sum(breakdowns["ssd"].values())
        top = sorted(
            breakdowns["hdd-ext4"].items(), key=lambda kv: kv[1], reverse=True
        )[:3]
        top_text = ", ".join(
            "%s %.0f%%" % (cat, 100 * sec / hdd_total) for cat, sec in top if sec
        )
        print("%-24s %11.3fs %11.4fs %7.1fx   %s"
              % (name, hdd_total, ssd_total,
                 hdd_total / ssd_total if ssd_total else 0.0, top_text))


if __name__ == "__main__":
    main()
