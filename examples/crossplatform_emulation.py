#!/usr/bin/env python
"""Cross-platform replay: a Darwin trace full of OS X-only calls
(getattrlist, exchangedata, F_FULLFSYNC, /dev/random reads) replayed on
a simulated Linux target via ARTC's pseudo-call emulation
(paper section 4.3.4).

Run with:  python examples/crossplatform_emulation.py
"""

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.bench import PLATFORMS
from repro.core.modes import ReplayMode
from repro.syscalls.emulation import EmulationOptions, plan_for
from repro.tracing import Snapshot, TracedOS
from repro.workloads.base import must


def darwin_app(osapi, tid=1):
    """A Mac-flavored workload exercising emulated calls."""
    yield from osapi.call(tid, "mkdir", path="/data/doc", mode=0o755)
    # Darwin bulk-metadata reads.
    yield from osapi.call(tid, "getattrlist", path="/data")
    yield from osapi.call(tid, "stat_extended", path="/data")
    # An atomic-save dance ending in exchangedata.
    fd = must((yield from osapi.call(
        tid, "open", path="/data/doc/current", flags="O_WRONLY|O_CREAT")))
    yield from osapi.call(tid, "write", fd=fd, nbytes=65536)
    yield from osapi.call(tid, "fcntl", fd=fd, cmd="F_FULLFSYNC")
    yield from osapi.call(tid, "close", fd=fd)
    fd = must((yield from osapi.call(
        tid, "open", path="/data/doc/new", flags="O_WRONLY|O_CREAT")))
    yield from osapi.call(tid, "write", fd=fd, nbytes=65536)
    yield from osapi.call(tid, "fsync", fd=fd)
    yield from osapi.call(tid, "close", fd=fd)
    yield from osapi.call(tid, "exchangedata",
                          path1="/data/doc/current", path2="/data/doc/new")
    yield from osapi.call(tid, "unlink", path="/data/doc/new")
    # Hints and entropy.
    fd = must((yield from osapi.call(
        tid, "open", path="/data/doc/current", flags="O_RDONLY")))
    yield from osapi.call(tid, "fcntl", fd=fd, cmd="F_RDADVISE", offset=0, arg=65536)
    yield from osapi.call(tid, "read", fd=fd, nbytes=65536)
    yield from osapi.call(tid, "close", fd=fd)
    fd = must((yield from osapi.call(
        tid, "open", path="/dev/random", flags="O_RDONLY")))
    yield from osapi.call(tid, "read", fd=fd, nbytes=16)
    yield from osapi.call(tid, "close", fd=fd)


def main():
    source = PLATFORMS["mac-hdd"]
    fs = source.make_fs(seed=1)
    fs.makedirs_now("/data")
    snapshot = Snapshot.capture(fs, roots=("/data",), label="darwin-demo")
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="darwin-demo", platform="darwin")
    fs.engine.run_process(darwin_app(osapi))
    print("traced %d Darwin system calls" % len(trace))

    # Show the emulation plans for the exotic calls.
    print("\nemulation plans for a Linux target:")
    for record in trace.records:
        plan = plan_for(record.name, record.args, "darwin", "linux")
        planned = ", ".join(step for step, _ in plan) or "(skipped)"
        native = planned == record.name
        if not native:
            print("  %-16s -> %s" % (record.name, planned))

    bench = compile_trace(trace, snapshot)
    target = PLATFORMS["hdd-ext4"]
    fs_target = target.make_fs(seed=2)
    initialize(fs_target, snapshot)  # also symlinks /dev/random -> urandom
    report = replay(
        bench,
        fs_target,
        ReplayConfig(mode=ReplayMode.ARTC,
                     emulation=EmulationOptions(fsync_mode="durable")),
    )
    print("\nreplayed on linux/ext4: %d/%d calls matched, elapsed %.4fs"
          % (report.n_actions - report.failures, report.n_actions,
             report.elapsed))
    target_node = fs_target.lookup("/dev/random", follow=False)
    print("/dev/random on the target is a symlink -> %s (no entropy stall)"
          % target_node.symlink_target)


if __name__ == "__main__":
    main()
