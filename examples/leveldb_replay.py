#!/usr/bin/env python
"""Macrobenchmark example: trace LevelDB readrandom on a disk system
and predict its performance on an SSD system (paper section 5.2.2).

Run with:  python examples/leveldb_replay.py
"""

from repro.artc.compiler import compile_trace
from repro.artc.report import timing_error
from repro.bench import PLATFORMS
from repro.bench.harness import (
    ground_truth_run,
    replay_benchmark,
    trace_application,
)
from repro.core.modes import ReplayMode
from repro.leveldb.apps import LevelDBReadRandom


def main():
    # A database larger than RAM, as in the paper (scaled down ~1000x).
    source = PLATFORMS["hdd-ext4"].variant(cache_bytes=8 << 20)
    target = PLATFORMS["ssd"].variant(cache_bytes=8 << 20)
    app = LevelDBReadRandom(nthreads=8, ops_per_thread=200, nkeys=30000)

    print("tracing %s on %s..." % (app.name, source.name))
    traced = trace_application(app, source)
    print("  %d events, source elapsed %.3fs"
          % (len(traced.trace), traced.elapsed))

    bench = compile_trace(traced.trace, traced.snapshot)
    print("compiled: %d dependency edges (%s)"
          % (bench.graph.n_edges, bench.ruleset.describe()))

    print("running the real program on %s (ground truth)..." % target.name)
    original = ground_truth_run(app, target, seed=101)
    print("  original elapsed on target: %.4fs" % original)

    print("\npredictions from replaying the %s trace on %s:"
          % (source.name, target.name))
    for mode in (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC):
        report = replay_benchmark(bench, target, mode, seed=300)
        print("  %-22s %.4fs  (error %.1f%%)"
              % (mode, report.elapsed,
                 100 * timing_error(report.elapsed, original)))

    print("\nThe rigid replays overestimate the SSD's execution time; "
          "ARTC's resource-aware partial order tracks the target.")


if __name__ == "__main__":
    main()
