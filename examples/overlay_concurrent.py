#!/usr/bin/env python
"""Concurrent multi-trace replay via overlaid initialization.

The paper (section 4.3.2): "ARTC also includes options that make it
easy to initialize overlaid file-system trees based on the snapshots
for multiple traces, so that multiple traces can be replayed
concurrently.  For example, one could ... run a workload similar to a
user browsing photos in iPhoto while listening to music in iTunes."

Run with:  python examples/overlay_concurrent.py
"""

from repro.artc.compiler import compile_trace
from repro.artc.init import overlay
from repro.artc.replayer import _ReplayRun, ReplayConfig
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.core.modes import ReplayMode
from repro.sim.events import wait_all
from repro.workloads.magritte import build_suite


def main():
    source = PLATFORMS["mac-hdd"]
    apps = build_suite(["iphoto_view400", "itunes_album1"])
    benches = []
    for name, app in apps.items():
        traced = trace_application(app, source)
        benches.append(compile_trace(traced.trace, traced.snapshot))
        print("traced %-20s %5d events" % (name, len(traced.trace)))

    # One target file system holding both initial trees (the two suites
    # use disjoint /data/<app> subtrees).
    target = PLATFORMS["hdd-ext4"].make_fs(seed=7)
    overlay(target, [bench.snapshot for bench in benches])

    # Solo replays first, for comparison.
    solo = []
    for bench in benches:
        fs = PLATFORMS["hdd-ext4"].make_fs(seed=8)
        overlay(fs, [bench.snapshot])
        runner = _ReplayRun(bench, fs, ReplayConfig(mode=ReplayMode.ARTC))
        solo.append(runner.run().elapsed)

    # Now both at once on the shared target: start the two replay runs
    # in the same simulation and wait for both.
    runs = [
        _ReplayRun(bench, target, ReplayConfig(mode=ReplayMode.ARTC))
        for bench in benches
    ]
    engine = target.engine
    start = engine.now

    reports = []

    def run_one(runner):
        # _ReplayRun.run() drives the engine itself; to overlap the two
        # replays we spawn their threads manually and join.
        runner.report.started = engine.now
        processes = []
        preds = runner.benchmark.graph.preds
        for _tid, actions in runner.benchmark.by_thread().items():
            processes.append(engine.spawn(runner._artc_thread(actions, preds)))
        return processes, runner

    all_processes = []
    for runner in runs:
        processes, _ = run_one(runner)
        all_processes.extend(processes)

    def waiter():
        yield from wait_all([p.done for p in all_processes])

    engine.run_process(waiter(), name="join")
    for runner in runs:
        runner.report.finished = max(r.done for r in runner.report.results)
        reports.append(runner.report)

    print("\n%-20s %10s %12s %s" % ("trace", "solo", "concurrent", "failures"))
    for bench, solo_elapsed, report in zip(benches, solo, reports):
        print("%-20s %9.3fs %11.3fs %8d"
              % (bench.label, solo_elapsed,
                 report.finished - start, report.failures))
    print("\nBoth replays share one disk: each slows down relative to its "
          "solo run, while still replaying correctly — the paper's "
          "photo-browsing-while-listening-to-music scenario.")


if __name__ == "__main__":
    main()
