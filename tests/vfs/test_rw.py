"""VFS tests: read/write/seek/truncate/fsync data-path semantics."""

import pytest

from repro.vfs import flags as F
from tests.conftest import make_fs, run


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.makedirs_now("/d")
    filesystem.create_file_now("/d/file", size=10000)
    return filesystem


def call(fs, gen):
    return run(fs, gen)


def opened(fs, path, flags):
    fd, err = call(fs, fs.open(1, path, flags))
    assert err is None
    return fd


class TestRead(object):
    def test_read_advances_offset(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.read(1, fd, 4000))[0] == 4000
        assert call(fs, fs.read(1, fd, 4000))[0] == 4000
        assert call(fs, fs.read(1, fd, 4000))[0] == 2000  # EOF-short
        assert call(fs, fs.read(1, fd, 4000))[0] == 0

    def test_pread_does_not_move_offset(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.pread(1, fd, 100, 5000))[0] == 100
        assert call(fs, fs.read(1, fd, 10000))[0] == 10000

    def test_pread_past_eof_returns_zero(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.pread(1, fd, 100, 99999)) == (0, None)

    def test_read_wronly_ebadf(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY)
        assert call(fs, fs.read(1, fd, 10)) == (-1, "EBADF")

    def test_read_directory_eisdir(self, fs):
        fd = opened(fs, "/d", F.O_RDONLY)
        assert call(fs, fs.read(1, fd, 10)) == (-1, "EISDIR")


class TestWrite(object):
    def test_write_extends_file(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY)
        call(fs, fs.pwrite(1, fd, 5000, 8000))
        assert fs.lookup("/d/file").size == 13000

    def test_write_within_does_not_shrink(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY)
        call(fs, fs.pwrite(1, fd, 10, 0))
        assert fs.lookup("/d/file").size == 10000

    def test_append_mode_writes_at_end(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY | F.O_APPEND)
        call(fs, fs.write(1, fd, 100))
        assert fs.lookup("/d/file").size == 10100

    def test_write_rdonly_ebadf(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.write(1, fd, 10)) == (-1, "EBADF")

    def test_write_updates_mtime(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY)
        before = fs.lookup("/d/file").mtime
        call(fs, fs.write(1, fd, 10))
        assert fs.lookup("/d/file").mtime >= before


class TestSeek(object):
    def test_seek_set_cur_end(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.lseek(1, fd, 100, F.SEEK_SET)) == (100, None)
        assert call(fs, fs.lseek(1, fd, 50, F.SEEK_CUR)) == (150, None)
        assert call(fs, fs.lseek(1, fd, -1000, F.SEEK_END)) == (9000, None)

    def test_seek_negative_einval(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.lseek(1, fd, -5, F.SEEK_SET)) == (-1, "EINVAL")

    def test_seek_bad_whence(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.lseek(1, fd, 0, 9)) == (-1, "EINVAL")

    def test_seek_past_eof_legal(self, fs):
        fd = opened(fs, "/d/file", F.O_RDONLY)
        assert call(fs, fs.lseek(1, fd, 50000, F.SEEK_SET)) == (50000, None)


class TestTruncate(object):
    def test_truncate_path(self, fs):
        assert call(fs, fs.truncate(1, "/d/file", 100)) == (0, None)
        assert fs.lookup("/d/file").size == 100

    def test_truncate_grow(self, fs):
        call(fs, fs.truncate(1, "/d/file", 50000))
        assert fs.lookup("/d/file").size == 50000

    def test_truncate_negative_einval(self, fs):
        assert call(fs, fs.truncate(1, "/d/file", -1)) == (-1, "EINVAL")

    def test_ftruncate(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY)
        assert call(fs, fs.ftruncate(1, fd, 0)) == (0, None)
        assert fs.lookup("/d/file").size == 0

    def test_truncate_dir_eisdir(self, fs):
        assert call(fs, fs.truncate(1, "/d", 0)) == (-1, "EISDIR")


class TestFsync(object):
    def test_fsync_ok(self, fs):
        fd = opened(fs, "/d/file", F.O_WRONLY)
        call(fs, fs.write(1, fd, 4096))
        assert call(fs, fs.fsync(1, fd)) == (0, None)
        assert fs.stack.cache.dirty_count == 0

    def test_fsync_bad_fd(self, fs):
        assert call(fs, fs.fsync(1, 99)) == (-1, "EBADF")

    def test_darwin_fsync_skips_barrier(self):
        def workload(fs):
            def body():
                fd, _ = yield from fs.open(1, "/f", F.O_CREAT | F.O_WRONLY)
                yield from fs.write(1, fd, 4096)
                start = fs.engine.now
                yield from fs.fsync(1, fd)
                return fs.engine.now - start

            return run(fs, body())

        linux_cost = workload(make_fs(platform="linux"))
        darwin_cost = workload(make_fs(platform="darwin"))
        assert darwin_cost < linux_cost

    def test_darwin_full_fsync_is_durable(self):
        fs = make_fs(platform="darwin")

        def body():
            fd, _ = yield from fs.open(1, "/f", F.O_CREAT | F.O_WRONLY)
            yield from fs.write(1, fd, 4096)
            yield from fs.fsync(1, fd)
            commits_after_fsync = fs.stack.stats.journal_commits
            yield from fs.write(1, fd, 4096)
            yield from fs.full_fsync(1, fd)
            return commits_after_fsync, fs.stack.stats.journal_commits

        after_fsync, after_full = run(fs, body())
        # Darwin fsync only flushes to the device cache (no journal
        # commit/barrier); F_FULLFSYNC forces the real commit.
        assert after_fsync == 0
        assert after_full == 1


class TestSpecialFiles(object):
    def test_dev_null_reads_empty(self, fs):
        fd = opened(fs, "/dev/null", F.O_RDONLY)
        assert call(fs, fs.read(1, fd, 100)) == (0, None)

    def test_dev_zero_reads(self, fs):
        fd = opened(fs, "/dev/zero", F.O_RDONLY)
        assert call(fs, fs.read(1, fd, 100)) == (100, None)

    def test_dev_random_blocks_on_linux(self, fs):
        fd = opened(fs, "/dev/random", F.O_RDONLY)
        start = fs.engine.now
        call(fs, fs.read(1, fd, 64))
        assert fs.engine.now - start > 1.0  # entropy-pool stall

    def test_dev_random_fast_on_darwin(self):
        fs = make_fs(platform="darwin")
        fd = opened(fs, "/dev/random", F.O_RDONLY)
        start = fs.engine.now
        call(fs, fs.read(1, fd, 64))
        assert fs.engine.now - start < 0.01

    def test_dev_urandom_fast_everywhere(self, fs):
        fd = opened(fs, "/dev/urandom", F.O_RDONLY)
        start = fs.engine.now
        assert call(fs, fs.read(1, fd, 64)) == (64, None)
        assert fs.engine.now - start < 0.01


class TestPipes(object):
    def test_pipe_round_trip(self, fs):
        (read_end, write_end), err = call(fs, fs.pipe(1))
        assert err is None
        assert call(fs, fs.write(1, write_end, 100)) == (100, None)
        assert call(fs, fs.read(1, read_end, 100)) == (100, None)

    def test_pipe_wrong_direction_ebadf(self, fs):
        (read_end, write_end), _ = call(fs, fs.pipe(1))
        assert call(fs, fs.write(1, read_end, 10)) == (-1, "EBADF")
        assert call(fs, fs.read(1, write_end, 10)) == (-1, "EBADF")

    def test_pipe_lseek_espipe(self, fs):
        (read_end, _w), _ = call(fs, fs.pipe(1))
        assert call(fs, fs.lseek(1, read_end, 0, F.SEEK_SET)) == (-1, "ESPIPE")
