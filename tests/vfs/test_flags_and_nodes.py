"""Unit tests for flag parsing and pure path resolution."""

import pytest

from repro.vfs import flags as F
from repro.vfs.errnos import Errno, VfsError
from repro.vfs.nodes import FileType, InodeTable, normalize, resolve


class TestFlagParsing(object):
    def test_parse_simple(self):
        assert F.parse_flags("O_RDONLY") == F.O_RDONLY
        assert F.parse_flags("O_WRONLY|O_CREAT") == F.O_WRONLY | F.O_CREAT

    def test_parse_aliases(self):
        assert F.parse_flags("O_NDELAY") == F.O_NONBLOCK
        assert F.parse_flags("O_FSYNC") == F.O_SYNC

    def test_parse_ignores_zero_value_flags(self):
        assert F.parse_flags("O_RDONLY|O_LARGEFILE") == F.O_RDONLY

    def test_format_round_trip(self):
        for text in ("O_RDONLY", "O_WRONLY|O_CREAT|O_EXCL", "O_RDWR|O_APPEND"):
            value = F.parse_flags(text)
            formatted = F.format_flags(value)
            assert F.parse_flags(formatted) == value

    def test_format_accmode_always_first(self):
        assert F.format_flags(F.O_RDWR | F.O_TRUNC).startswith("O_RDWR")

    def test_unknown_flag_raises(self):
        with pytest.raises(KeyError):
            F.parse_flags("O_BOGUS")


class TestNormalize(object):
    def test_collapses_slashes_and_dots(self):
        assert normalize("//a///b/./c") == "/a/b/c"

    def test_keeps_relative(self):
        assert normalize("a/b") == "a/b"
        assert normalize("./a") == "a"

    def test_empty_and_root(self):
        assert normalize("") == ""
        assert normalize("/") == "/"


class TestResolve(object):
    @pytest.fixture
    def table(self):
        table = InodeTable()
        d = table.alloc(FileType.DIR)
        table.root.children["d"] = d.ino
        table.root.nlink += 1
        f = table.alloc(FileType.REG)
        d.children["f"] = f.ino
        link = table.alloc(FileType.SYMLINK)
        link.symlink_target = "/d/f"
        table.root.children["l"] = link.ino
        return table

    def test_absolute_resolution(self, table):
        res = resolve(table, table.ROOT_INO, "/d/f")
        assert res.inode is not None
        assert res.name == "f"

    def test_missing_leaf_returns_none_inode(self, table):
        res = resolve(table, table.ROOT_INO, "/d/missing")
        assert res.inode is None
        assert res.name == "missing"
        assert res.parent.children  # parent is /d

    def test_missing_intermediate_raises(self, table):
        with pytest.raises(VfsError) as info:
            resolve(table, table.ROOT_INO, "/no/f")
        assert info.value.errno == Errno.ENOENT

    def test_file_as_intermediate_raises_enotdir(self, table):
        with pytest.raises(VfsError) as info:
            resolve(table, table.ROOT_INO, "/d/f/x")
        assert info.value.errno == Errno.ENOTDIR

    def test_symlink_followed_by_default(self, table):
        res = resolve(table, table.ROOT_INO, "/l")
        assert res.inode.is_reg

    def test_nofollow_returns_link(self, table):
        res = resolve(table, table.ROOT_INO, "/l", follow_last=False)
        assert res.inode.is_symlink

    def test_visited_records_walk(self, table):
        res = resolve(table, table.ROOT_INO, "/d/f")
        assert len(res.visited) >= 3  # root, d, f

    def test_relative_resolution_from_cwd(self, table):
        d_ino = table.root.children["d"]
        res = resolve(table, d_ino, "f")
        assert res.inode.is_reg

    def test_dotdot_at_root_stays_at_root(self, table):
        res = resolve(table, table.ROOT_INO, "/..")
        assert res.inode is table.root

    def test_overlong_path_rejected(self, table):
        with pytest.raises(VfsError) as info:
            resolve(table, table.ROOT_INO, "/" + "x" * 5000)
        assert info.value.errno == Errno.ENAMETOOLONG

    def test_empty_path_rejected(self, table):
        with pytest.raises(VfsError):
            resolve(table, table.ROOT_INO, "")
