"""VFS tests: mkdir/rmdir/unlink/rename/link and path resolution."""

import pytest

from repro.vfs import flags as F
from tests.conftest import make_fs, run


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.makedirs_now("/a/b")
    filesystem.create_file_now("/a/b/c", size=4096)
    return filesystem


def call(fs, gen):
    return run(fs, gen)


class TestMkdirRmdir(object):
    def test_mkdir(self, fs):
        assert call(fs, fs.mkdir(1, "/a/new")) == (0, None)
        assert fs.lookup("/a/new").is_dir

    def test_mkdir_exists_eexist(self, fs):
        assert call(fs, fs.mkdir(1, "/a/b")) == (-1, "EEXIST")

    def test_mkdir_missing_parent_enoent(self, fs):
        assert call(fs, fs.mkdir(1, "/nope/new")) == (-1, "ENOENT")

    def test_rmdir_empty(self, fs):
        call(fs, fs.mkdir(1, "/a/tmp"))
        assert call(fs, fs.rmdir(1, "/a/tmp")) == (0, None)
        assert not fs.exists("/a/tmp")

    def test_rmdir_nonempty_enotempty(self, fs):
        assert call(fs, fs.rmdir(1, "/a/b")) == (-1, "ENOTEMPTY")

    def test_rmdir_file_enotdir(self, fs):
        assert call(fs, fs.rmdir(1, "/a/b/c")) == (-1, "ENOTDIR")

    def test_rmdir_missing_enoent(self, fs):
        assert call(fs, fs.rmdir(1, "/a/zzz")) == (-1, "ENOENT")


class TestUnlink(object):
    def test_unlink(self, fs):
        assert call(fs, fs.unlink(1, "/a/b/c")) == (0, None)
        assert not fs.exists("/a/b/c")

    def test_unlink_missing_enoent(self, fs):
        assert call(fs, fs.unlink(1, "/a/zzz")) == (-1, "ENOENT")

    def test_unlink_dir_eisdir(self, fs):
        assert call(fs, fs.unlink(1, "/a/b")) == (-1, "EISDIR")

    def test_unlink_one_of_two_links_keeps_file(self, fs):
        call(fs, fs.link(1, "/a/b/c", "/a/b/c2"))
        call(fs, fs.unlink(1, "/a/b/c"))
        assert fs.lookup("/a/b/c2").size == 4096


class TestRename(object):
    def test_rename_file(self, fs):
        assert call(fs, fs.rename(1, "/a/b/c", "/a/b/renamed")) == (0, None)
        assert not fs.exists("/a/b/c")
        assert fs.lookup("/a/b/renamed").size == 4096

    def test_rename_replaces_destination(self, fs):
        fs.create_file_now("/a/b/victim", size=1)
        call(fs, fs.rename(1, "/a/b/c", "/a/b/victim"))
        assert fs.lookup("/a/b/victim").size == 4096

    def test_rename_directory_moves_subtree(self, fs):
        assert call(fs, fs.rename(1, "/a/b", "/a/moved")) == (0, None)
        assert fs.lookup("/a/moved/c").size == 4096
        stat, err = call(fs, fs.stat(1, "/a/b/c"))
        assert err == "ENOENT"

    def test_rename_missing_src_enoent(self, fs):
        assert call(fs, fs.rename(1, "/a/zzz", "/a/w")) == (-1, "ENOENT")

    def test_rename_into_own_subtree_einval(self, fs):
        assert call(fs, fs.rename(1, "/a", "/a/b/inside")) == (-1, "EINVAL")

    def test_rename_onto_self_is_noop(self, fs):
        assert call(fs, fs.rename(1, "/a/b/c", "/a/b/c")) == (0, None)
        assert fs.exists("/a/b/c")

    def test_rename_dir_onto_nonempty_dir_enotempty(self, fs):
        fs.makedirs_now("/x/y")
        assert call(fs, fs.rename(1, "/x", "/a")) == (-1, "ENOTEMPTY")

    def test_rename_file_onto_dir_eisdir(self, fs):
        fs.makedirs_now("/a/d2")
        assert call(fs, fs.rename(1, "/a/b/c", "/a/d2")) == (-1, "EISDIR")


class TestLink(object):
    def test_hard_link_shares_inode(self, fs):
        assert call(fs, fs.link(1, "/a/b/c", "/a/link")) == (0, None)
        assert fs.lookup("/a/link").ino == fs.lookup("/a/b/c").ino
        assert fs.lookup("/a/b/c").nlink == 2

    def test_link_to_dir_eperm(self, fs):
        assert call(fs, fs.link(1, "/a/b", "/a/link")) == (-1, "EPERM")

    def test_link_existing_dest_eexist(self, fs):
        fs.create_file_now("/a/dst")
        assert call(fs, fs.link(1, "/a/b/c", "/a/dst")) == (-1, "EEXIST")


class TestStatFamily(object):
    def test_stat_fields(self, fs):
        stat, err = call(fs, fs.stat(1, "/a/b/c"))
        assert err is None
        assert stat.size == 4096
        assert stat.ftype == "reg"
        assert stat.nlink == 1

    def test_fstat_matches_stat(self, fs):
        fd, _ = call(fs, fs.open(1, "/a/b/c", F.O_RDONLY))
        fstat, _ = call(fs, fs.fstat(1, fd))
        stat, _ = call(fs, fs.stat(1, "/a/b/c"))
        assert fstat.ino == stat.ino

    def test_access_missing(self, fs):
        assert call(fs, fs.access(1, "/a/zzz")) == (-1, "ENOENT")

    def test_getdents_lists_sorted_names(self, fs):
        fs.create_file_now("/a/b/zz")
        fs.create_file_now("/a/b/aa")
        fd, _ = call(fs, fs.open(1, "/a/b", F.O_RDONLY | F.O_DIRECTORY))
        names, err = call(fs, fs.getdents(1, fd))
        assert err is None
        assert names == ["aa", "c", "zz"]

    def test_getdents_on_file_ebadf(self, fs):
        fd, _ = call(fs, fs.open(1, "/a/b/c", F.O_RDONLY))
        assert call(fs, fs.getdents(1, fd)) == (-1, "EBADF")

    def test_statfs_reports_profile(self, fs):
        info, err = call(fs, fs.statfs(1, "/a"))
        assert err is None
        assert info["type"] == "ext4"

    def test_chdir_relative_resolution(self, fs):
        assert call(fs, fs.chdir(1, "/a/b")) == (0, None)
        stat, err = call(fs, fs.stat(1, "c"))
        assert err is None
        assert stat.size == 4096

    def test_chdir_to_file_enotdir(self, fs):
        assert call(fs, fs.chdir(1, "/a/b/c")) == (-1, "ENOTDIR")

    def test_dot_dot_resolution(self, fs):
        stat, err = call(fs, fs.stat(1, "/a/b/../b/c"))
        assert err is None
        assert stat.size == 4096
