"""VFS tests: asynchronous I/O control blocks."""

import pytest

from repro.vfs import flags as F
from tests.conftest import make_fs, run


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.create_file_now("/data", size=1 << 20)
    return filesystem


def call(fs, gen):
    return run(fs, gen)


def opened(fs, flags=F.O_RDWR):
    fd, err = call(fs, fs.open(1, "/data", flags))
    assert err is None
    return fd


class TestAio(object):
    def test_submit_then_suspend_then_return(self, fs):
        fd = opened(fs)

        def body():
            ret, err = yield from fs.aio_submit(1, "cb1", fd, 4096, 0, False)
            assert (ret, err) == (0, None)
            status, _ = yield from fs.aio_error(1, "cb1")
            assert status in ("EINPROGRESS", 0)
            yield from fs.aio_suspend(1, ["cb1"])
            status, _ = yield from fs.aio_error(1, "cb1")
            assert status == 0
            result, err = yield from fs.aio_return(1, "cb1")
            return result, err

        assert run(fs, body()) == (4096, None)

    def test_aio_write_extends_file(self, fs):
        fd = opened(fs)

        def body():
            yield from fs.aio_submit(1, "cbw", fd, 4096, 1 << 20, True)
            yield from fs.aio_suspend(1, ["cbw"])
            yield from fs.aio_return(1, "cbw")

        run(fs, body())
        assert fs.lookup("/data").size == (1 << 20) + 4096

    def test_aio_read_truncated_at_eof(self, fs):
        fd = opened(fs)

        def body():
            yield from fs.aio_submit(1, "cb", fd, 9999, (1 << 20) - 100, False)
            yield from fs.aio_suspend(1, ["cb"])
            result, _ = yield from fs.aio_return(1, "cb")
            return result

        assert run(fs, body()) == 100

    def test_aio_overlaps_with_synchronous_io(self, fs):
        fd = opened(fs)

        def body():
            start = fs.engine.now
            yield from fs.aio_submit(1, "cb", fd, 4096, 500000, False)
            # Synchronous read proceeds while the AIO is in flight.
            yield from fs.pread(1, fd, 4096, 0)
            mid = fs.engine.now - start
            yield from fs.aio_suspend(1, ["cb"])
            total = fs.engine.now - start
            return mid, total

        mid, total = run(fs, body())
        # Overlap: the combined time is less than two serial reads.
        assert total < mid * 2

    def test_aio_error_unknown_cb_einval(self, fs):
        assert call(fs, fs.aio_error(1, "nope")) == (-1, "EINVAL")

    def test_aio_return_consumes_cb(self, fs):
        fd = opened(fs)

        def body():
            yield from fs.aio_submit(1, "cb", fd, 4096, 0, False)
            yield from fs.aio_suspend(1, ["cb"])
            yield from fs.aio_return(1, "cb")
            return (yield from fs.aio_return(1, "cb"))

        assert run(fs, body()) == (-1, "EINVAL")

    def test_aio_submit_bad_fd(self, fs):
        assert call(fs, fs.aio_submit(1, "cb", 99, 10, 0, False)) == (-1, "EBADF")

    def test_suspend_multiple(self, fs):
        fd = opened(fs)

        def body():
            yield from fs.aio_submit(1, "a", fd, 4096, 0, False)
            yield from fs.aio_submit(1, "b", fd, 4096, 500000, False)
            yield from fs.aio_suspend(1, ["a", "b"])
            ra, _ = yield from fs.aio_return(1, "a")
            rb, _ = yield from fs.aio_return(1, "b")
            return ra, rb

        assert run(fs, body()) == (4096, 4096)
