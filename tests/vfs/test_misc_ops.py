"""VFS tests: hints, mmap, shm, fcntl, and attribute-list calls."""

import pytest

from repro.vfs import flags as F
from tests.conftest import make_fs, run


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.create_file_now("/data", size=1 << 20)
    return filesystem


def call(fs, gen):
    return run(fs, gen)


def opened(fs, path="/data", flags=F.O_RDWR):
    fd, err = call(fs, fs.open(1, path, flags))
    assert err is None
    return fd


class TestHints(object):
    def test_fadvise_prefetches(self, fs):
        fd = opened(fs)
        call(fs, fs.fadvise(1, fd, 0, 65536))
        fs.engine.run()  # drain the async readahead
        assert fs.stack.cache.contains((fs.lookup("/data").ino, 0))

    def test_fadvise_then_read_is_fast(self, fs):
        fd = opened(fs)
        call(fs, fs.fadvise(1, fd, 0, 65536))
        fs.engine.run()

        def body():
            start = fs.engine.now
            yield from fs.pread(1, fd, 65536, 0)
            return fs.engine.now - start

        # Clock may keep advancing afterwards for async readahead; only
        # the in-call latency matters here.
        assert run(fs, body()) < 0.001

    def test_fallocate_extends_size(self, fs):
        fd = opened(fs)
        assert call(fs, fs.fallocate(1, fd, 1 << 20, 65536)) == (0, None)
        assert fs.lookup("/data").size == (1 << 20) + 65536

    def test_flock_succeeds(self, fs):
        fd = opened(fs)
        assert call(fs, fs.flock(1, fd)) == (0, None)

    def test_flock_bad_fd(self, fs):
        assert call(fs, fs.flock(1, 99)) == (-1, "EBADF")


class TestMmap(object):
    def test_mmap_faults_in_pages(self, fs):
        fd = opened(fs)
        addr, err = call(fs, fs.mmap(1, fd, 0, 65536))
        assert err is None
        assert addr > 0
        assert fs.stack.cache.contains((fs.lookup("/data").ino, 0))

    def test_anonymous_mmap(self, fs):
        addr, err = call(fs, fs.mmap(1, -1, 0, 4096))
        assert err is None

    def test_munmap_msync(self, fs):
        assert call(fs, fs.munmap(1, 0x7F0000000000, 4096)) == (0, None)
        assert call(fs, fs.msync(1, 0x7F0000000000, 4096)) == (0, None)


class TestShm(object):
    def test_shm_open_creates_under_dev_shm(self, fs):
        fd, err = call(fs, fs.shm_open(1, "seg"))
        assert err is None
        assert fs.exists("/dev/shm/seg")

    def test_shm_unlink(self, fs):
        call(fs, fs.shm_open(1, "seg"))
        assert call(fs, fs.shm_unlink(1, "seg")) == (0, None)
        assert not fs.exists("/dev/shm/seg")


class TestAttributeLists(object):
    def test_getattrlist_like_stat(self, fs):
        stat, err = call(fs, fs.getattrlist(1, "/data"))
        assert err is None
        assert stat.size == 1 << 20

    def test_getattrlist_missing(self, fs):
        assert call(fs, fs.getattrlist(1, "/zzz")) == (-1, "ENOENT")

    def test_setattrlist(self, fs):
        assert call(fs, fs.setattrlist(1, "/data")) == (0, None)


class TestMetaWrites(object):
    def test_chmod(self, fs):
        assert call(fs, fs.chmod(1, "/data", 0o400)) == (0, None)
        assert fs.lookup("/data").mode == 0o400

    def test_fchmod(self, fs):
        fd = opened(fs)
        assert call(fs, fs.fchmod(1, fd, 0o755)) == (0, None)
        assert fs.lookup("/data").mode == 0o755

    def test_utimes_and_chown(self, fs):
        assert call(fs, fs.utimes(1, "/data")) == (0, None)
        assert call(fs, fs.chown(1, "/data")) == (0, None)

    def test_utimes_missing(self, fs):
        assert call(fs, fs.utimes(1, "/zzz")) == (-1, "ENOENT")
