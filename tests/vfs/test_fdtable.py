"""Unit tests for the descriptor table."""

import pytest

from repro.vfs.errnos import VfsError
from repro.vfs.fdtable import FDTable, OpenFile


def of(ino=1):
    return OpenFile(ino, 0)


class TestAllocation(object):
    def test_starts_at_three(self):
        table = FDTable()
        assert table.alloc(of()) == 3

    def test_lowest_free_policy(self):
        table = FDTable()
        fds = [table.alloc(of()) for _ in range(4)]
        assert fds == [3, 4, 5, 6]
        table.remove(4)
        assert table.alloc(of()) == 4

    def test_lowest_floor_respected(self):
        table = FDTable()
        assert table.alloc(of(), lowest=10) == 10
        assert table.alloc(of(), lowest=10) == 11

    def test_get_unknown_raises_ebadf(self):
        with pytest.raises(VfsError) as info:
            FDTable().get(5)
        assert info.value.errno == "EBADF"


class TestDup(object):
    def test_dup_shares_description(self):
        table = FDTable()
        fd = table.alloc(of())
        dup_fd = table.dup(fd)
        assert table.get(fd) is table.get(dup_fd)
        assert table.get(fd).refcount == 2

    def test_remove_returns_description_only_at_last_ref(self):
        table = FDTable()
        fd = table.alloc(of())
        dup_fd = table.dup(fd)
        assert table.remove(fd) is None
        last = table.remove(dup_fd)
        assert last is not None
        assert last.refcount == 0

    def test_dup2_same_fd_is_noop(self):
        table = FDTable()
        fd = table.alloc(of())
        assert table.dup2(fd, fd) == fd
        assert table.get(fd).refcount == 1

    def test_dup2_closes_existing_target(self):
        table = FDTable()
        fd_a = table.alloc(of(1))
        fd_b = table.alloc(of(2))
        table.dup2(fd_a, fd_b)
        assert table.get(fd_b).ino == 1

    def test_open_fds_sorted(self):
        table = FDTable()
        for _ in range(3):
            table.alloc(of())
        assert table.open_fds() == [3, 4, 5]

    def test_contains_and_len(self):
        table = FDTable()
        fd = table.alloc(of())
        assert fd in table
        assert len(table) == 1
