"""VFS tests: open/close/dup semantics."""

import pytest

from repro.vfs import flags as F
from tests.conftest import make_fs, run


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.makedirs_now("/d")
    filesystem.create_file_now("/d/file", size=8192)
    return filesystem


def call(fs, gen):
    return run(fs, gen)


class TestOpen(object):
    def test_open_existing(self, fs):
        fd, err = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        assert err is None
        assert fd >= 3

    def test_open_missing_enoent(self, fs):
        ret, err = call(fs, fs.open(1, "/d/nope", F.O_RDONLY))
        assert (ret, err) == (-1, "ENOENT")

    def test_create(self, fs):
        fd, err = call(fs, fs.open(1, "/d/new", F.O_CREAT | F.O_WRONLY, 0o600))
        assert err is None
        assert fs.exists("/d/new")
        assert fs.lookup("/d/new").mode == 0o600

    def test_create_missing_parent_enoent(self, fs):
        ret, err = call(fs, fs.open(1, "/nope/new", F.O_CREAT | F.O_WRONLY))
        assert err == "ENOENT"

    def test_excl_collision(self, fs):
        ret, err = call(fs, fs.open(1, "/d/file", F.O_CREAT | F.O_EXCL | F.O_WRONLY))
        assert err == "EEXIST"

    def test_excl_success_when_absent(self, fs):
        fd, err = call(fs, fs.open(1, "/d/fresh", F.O_CREAT | F.O_EXCL | F.O_WRONLY))
        assert err is None

    def test_trunc_zeroes_size(self, fs):
        fd, err = call(fs, fs.open(1, "/d/file", F.O_WRONLY | F.O_TRUNC))
        assert err is None
        assert fs.lookup("/d/file").size == 0

    def test_trunc_readonly_does_not_truncate(self, fs):
        call(fs, fs.open(1, "/d/file", F.O_RDONLY | F.O_TRUNC))
        assert fs.lookup("/d/file").size == 8192

    def test_open_dir_for_write_eisdir(self, fs):
        ret, err = call(fs, fs.open(1, "/d", F.O_WRONLY))
        assert err == "EISDIR"

    def test_open_dir_readonly_ok(self, fs):
        fd, err = call(fs, fs.open(1, "/d", F.O_RDONLY))
        assert err is None

    def test_o_directory_on_file_enotdir(self, fs):
        ret, err = call(fs, fs.open(1, "/d/file", F.O_RDONLY | F.O_DIRECTORY))
        assert err == "ENOTDIR"

    def test_fd_numbers_start_at_three_and_reuse_lowest(self, fs):
        fd_a, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        fd_b, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        assert (fd_a, fd_b) == (3, 4)
        call(fs, fs.close(1, fd_a))
        fd_c, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        assert fd_c == 3

    def test_independent_offsets_per_open(self, fs):
        fd_a, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        fd_b, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        call(fs, fs.read(1, fd_a, 4096))
        n, _ = call(fs, fs.read(1, fd_b, 8192))
        assert n == 8192  # fd_b unaffected by fd_a's offset


class TestClose(object):
    def test_double_close_ebadf(self, fs):
        fd, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        assert call(fs, fs.close(1, fd)) == (0, None)
        assert call(fs, fs.close(1, fd)) == (-1, "EBADF")

    def test_close_unknown_fd_ebadf(self, fs):
        assert call(fs, fs.close(1, 77)) == (-1, "EBADF")

    def test_deleted_while_open_readable_until_close(self, fs):
        fd, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        assert call(fs, fs.unlink(1, "/d/file")) == (0, None)
        n, err = call(fs, fs.read(1, fd, 100))
        assert (n, err) == (100, None)
        ino = fs.fdt.get(fd).ino
        call(fs, fs.close(1, fd))
        assert ino not in fs.table  # inode freed at last close


class TestDup(object):
    def test_dup_shares_offset(self, fs):
        fd, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        dup_fd, err = call(fs, fs.dup(1, fd))
        assert err is None
        call(fs, fs.read(1, fd, 4096))
        n, _ = call(fs, fs.read(1, dup_fd, 8192))
        assert n == 4096  # only 4096 left: offset was shared

    def test_dup_then_close_original_still_works(self, fs):
        fd, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        dup_fd, _ = call(fs, fs.dup(1, fd))
        call(fs, fs.close(1, fd))
        n, err = call(fs, fs.read(1, dup_fd, 10))
        assert (n, err) == (10, None)

    def test_dup2_replaces_target(self, fs):
        fd, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        other, _ = call(fs, fs.open(1, "/d/file", F.O_RDONLY))
        new, err = call(fs, fs.dup2(1, fd, other))
        assert (new, err) == (other, None)
        # both descriptors view the same description now
        call(fs, fs.read(1, fd, 4096))
        n, _ = call(fs, fs.read(1, other, 8192))
        assert n == 4096

    def test_dup_bad_fd(self, fs):
        assert call(fs, fs.dup(1, 99)) == (-1, "EBADF")
