"""VFS tests: symbolic links."""

import pytest

from repro.vfs import flags as F
from tests.conftest import make_fs, run


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.makedirs_now("/a/b")
    filesystem.create_file_now("/a/b/target", size=1000)
    return filesystem


def call(fs, gen):
    return run(fs, gen)


class TestSymlinks(object):
    def test_symlink_and_follow(self, fs):
        assert call(fs, fs.symlink(1, "/a/b/target", "/link")) == (0, None)
        stat, err = call(fs, fs.stat(1, "/link"))
        assert err is None
        assert stat.size == 1000

    def test_lstat_sees_the_link(self, fs):
        call(fs, fs.symlink(1, "/a/b/target", "/link"))
        stat, err = call(fs, fs.lstat(1, "/link"))
        assert stat.ftype == "symlink"
        assert stat.size == len("/a/b/target")

    def test_readlink(self, fs):
        call(fs, fs.symlink(1, "/a/b/target", "/link"))
        target, err = call(fs, fs.readlink(1, "/link"))
        assert (target, err) == ("/a/b/target", None)

    def test_readlink_on_regular_file_einval(self, fs):
        assert call(fs, fs.readlink(1, "/a/b/target")) == (-1, "EINVAL")

    def test_dangling_symlink_enoent_on_follow(self, fs):
        call(fs, fs.symlink(1, "/nope", "/dangling"))
        assert call(fs, fs.stat(1, "/dangling")) == (-1, "ENOENT")
        stat, err = call(fs, fs.lstat(1, "/dangling"))
        assert err is None  # the link itself exists

    def test_symlink_loop_eloop(self, fs):
        call(fs, fs.symlink(1, "/loop2", "/loop1"))
        call(fs, fs.symlink(1, "/loop1", "/loop2"))
        assert call(fs, fs.stat(1, "/loop1")) == (-1, "ELOOP")

    def test_relative_symlink_target(self, fs):
        call(fs, fs.symlink(1, "target", "/a/b/rel"))
        stat, err = call(fs, fs.stat(1, "/a/b/rel"))
        assert err is None
        assert stat.size == 1000

    def test_symlink_to_directory_traversal(self, fs):
        call(fs, fs.symlink(1, "/a/b", "/bdir"))
        stat, err = call(fs, fs.stat(1, "/bdir/target"))
        assert err is None
        assert stat.size == 1000

    def test_open_through_symlink_same_file(self, fs):
        call(fs, fs.symlink(1, "/a/b/target", "/link"))
        fd_direct, _ = call(fs, fs.open(1, "/a/b/target", F.O_RDONLY))
        fd_link, _ = call(fs, fs.open(1, "/link", F.O_RDONLY))
        assert fs.fdt.get(fd_direct).ino == fs.fdt.get(fd_link).ino

    def test_open_nofollow_eloop(self, fs):
        call(fs, fs.symlink(1, "/a/b/target", "/link"))
        ret, err = call(fs, fs.open(1, "/link", F.O_RDONLY | F.O_NOFOLLOW))
        assert err == "ELOOP"

    def test_symlink_existing_path_eexist(self, fs):
        assert call(fs, fs.symlink(1, "/x", "/a/b/target")) == (-1, "EEXIST")

    def test_unlink_symlink_keeps_target(self, fs):
        call(fs, fs.symlink(1, "/a/b/target", "/link"))
        call(fs, fs.unlink(1, "/link"))
        assert fs.exists("/a/b/target")
        assert not fs.exists("/link", follow=False)

    def test_rename_unbreaks_symlink(self, fs):
        # The paper's model-miss edge case: a directory rename making a
        # previously-broken symlink resolve.
        call(fs, fs.symlink(1, "/a/moved/target", "/fragile"))
        assert call(fs, fs.stat(1, "/fragile")) == (-1, "ENOENT")
        call(fs, fs.rename(1, "/a/b", "/a/moved"))
        stat, err = call(fs, fs.stat(1, "/fragile"))
        assert err is None
        assert stat.size == 1000


class TestXattrs(object):
    def test_set_get_list_remove(self, fs):
        assert call(fs, fs.setxattr(1, "/a/b/target", "user.k", 8)) == (0, None)
        value, err = call(fs, fs.getxattr(1, "/a/b/target", "user.k"))
        assert err is None
        names, _ = call(fs, fs.listxattr(1, "/a/b/target"))
        assert names == ["user.k"]
        assert call(fs, fs.removexattr(1, "/a/b/target", "user.k")) == (0, None)
        names, _ = call(fs, fs.listxattr(1, "/a/b/target"))
        assert names == []

    def test_missing_xattr_errno_per_platform(self, fs):
        assert call(fs, fs.getxattr(1, "/a/b/target", "user.none"))[1] == "ENODATA"
        darwin = make_fs(platform="darwin")
        darwin.create_file_now("/f")
        assert run(darwin, darwin.getxattr(1, "/f", "user.none"))[1] == "ENOATTR"

    def test_fd_variants(self, fs):
        fd, _ = call(fs, fs.open(1, "/a/b/target", F.O_RDONLY))
        assert call(fs, fs.fsetxattr(1, fd, "user.fd", 4)) == (0, None)
        _value, err = call(fs, fs.fgetxattr(1, fd, "user.fd"))
        assert err is None
        names, _ = call(fs, fs.flistxattr(1, fd))
        assert names == ["user.fd"]
        assert call(fs, fs.fremovexattr(1, fd, "user.fd")) == (0, None)

    def test_xattr_on_missing_path(self, fs):
        assert call(fs, fs.getxattr(1, "/zzz", "user.k")) == (-1, "ENOENT")


class TestExchangedata(object):
    def test_swaps_sizes_preserves_inodes(self, fs):
        fs.create_file_now("/a/b/other", size=42)
        ino_target = fs.lookup("/a/b/target").ino
        ino_other = fs.lookup("/a/b/other").ino
        ret, err = call(fs, fs.exchangedata(1, "/a/b/target", "/a/b/other"))
        assert err is None
        assert fs.lookup("/a/b/target").size == 42
        assert fs.lookup("/a/b/other").size == 1000
        assert fs.lookup("/a/b/target").ino == ino_target
        assert fs.lookup("/a/b/other").ino == ino_other

    def test_missing_operand_enoent(self, fs):
        assert call(fs, fs.exchangedata(1, "/a/b/target", "/zzz")) == (-1, "ENOENT")

    def test_directory_operand_einval(self, fs):
        assert call(fs, fs.exchangedata(1, "/a/b/target", "/a/b")) == (-1, "EINVAL")
