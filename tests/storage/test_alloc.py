"""Unit tests for the extent allocator."""

from repro.storage.alloc import BlockAllocator, bytes_to_blocks


class TestBytesToBlocks(object):
    def test_aligned(self):
        assert bytes_to_blocks(0, 4096) == (0, 1)
        assert bytes_to_blocks(4096, 8192) == (1, 2)

    def test_unaligned_head_and_tail(self):
        assert bytes_to_blocks(100, 100) == (0, 1)
        assert bytes_to_blocks(4000, 200) == (0, 2)  # spans the boundary

    def test_zero_length(self):
        assert bytes_to_blocks(8192, 0) == (2, 0)


class TestAllocator(object):
    def test_sequential_file_is_contiguous(self):
        alloc = BlockAllocator()
        alloc.ensure_blocks("f", 100)
        lbas = [alloc.block_lba("f", i) for i in range(100)]
        assert lbas == list(range(lbas[0], lbas[0] + 100))

    def test_interleaved_files_fragment_each_other(self):
        alloc = BlockAllocator(max_extent_blocks=8)
        alloc.ensure_blocks("a", 8)
        alloc.ensure_blocks("b", 8)
        alloc.ensure_blocks("a", 16)
        # a's second extent comes after b's allocation: discontiguous.
        assert alloc.block_lba("a", 8) != alloc.block_lba("a", 7) + 1

    def test_append_merges_when_contiguous(self):
        alloc = BlockAllocator(max_extent_blocks=1 << 20)
        alloc.ensure_blocks("a", 4)
        alloc.ensure_blocks("a", 8)  # nothing else allocated between
        assert alloc.block_lba("a", 7) == alloc.block_lba("a", 0) + 7

    def test_runs_coalesce(self):
        alloc = BlockAllocator()
        alloc.ensure_blocks("f", 64)
        runs = alloc.runs("f", 0, 64)
        assert len(runs) == 1
        assert runs[0][1] == 64

    def test_runs_split_at_extent_boundaries(self):
        alloc = BlockAllocator(max_extent_blocks=8)
        alloc.ensure_blocks("a", 8)
        alloc.ensure_blocks("b", 1)  # break contiguity
        alloc.ensure_blocks("a", 16)
        runs = alloc.runs("a", 0, 16)
        assert len(runs) == 2
        assert sum(count for _lba, count in runs) == 16

    def test_data_zone_clear_of_metadata_zones(self):
        alloc = BlockAllocator()
        alloc.ensure_blocks("f", 1)
        data_start = alloc.block_lba("f", 0)
        assert data_start >= BlockAllocator.INODE_ZONE_BLOCKS + BlockAllocator.JOURNAL_ZONE_BLOCKS
        assert alloc.journal_lba == BlockAllocator.INODE_ZONE_BLOCKS

    def test_inode_lba_stable_and_in_zone(self):
        alloc = BlockAllocator()
        lba = alloc.inode_lba(42)
        assert lba == alloc.inode_lba(42)
        assert 0 <= lba < BlockAllocator.INODE_ZONE_BLOCKS

    def test_drop_forgets_layout(self):
        alloc = BlockAllocator()
        alloc.ensure_blocks("f", 4)
        first = alloc.block_lba("f", 0)
        alloc.drop("f")
        again = alloc.block_lba("f", 0)  # re-allocates elsewhere
        assert again != first
