"""Integration tests for the assembled storage stack."""

from repro.sim import Engine
from repro.storage import HDD, RAID0, SSD, StorageStack


def make_stack(device=None, cache_bytes=64 * 1024 * 1024, seed=0, **kwargs):
    engine = Engine(seed)
    stack = StorageStack(engine, device or HDD(), cache_bytes, **kwargs)
    return engine, stack


def timed(engine, gen):
    start = engine.now
    engine.run_process(gen)
    return engine.now - start


class TestReadPath(object):
    def test_cached_read_is_nearly_free(self):
        engine, stack = make_stack()

        def body():
            yield from stack.read(1, "f", 0, 4096)
            t_miss = engine.now
            yield from stack.read(1, "f", 0, 4096)
            return t_miss, engine.now

        t_miss, t_done = engine.run_process(body())
        assert (t_done - t_miss) < t_miss / 100

    def test_sequential_stream_triggers_readahead(self):
        engine, stack = make_stack()

        def body():
            # Two sequential reads from BOF establish a stream.
            yield from stack.read(1, "f", 0, 4096 * 8)
            yield from stack.read(1, "f", 4096 * 8 + stack.cache.READAHEAD_MIN * 4096, 4096 * 8)

        engine.run_process(body())
        # readahead inserted pages past what was requested
        assert len(stack.cache) > 16 + 4

    def test_zero_length_read_costs_only_cpu(self):
        engine, stack = make_stack()

        def body():
            yield from stack.read(1, "f", 0, 0)
            return engine.now

        assert engine.run_process(body()) < 0.001
        assert stack.stats.reads_submitted == 0

    def test_random_reads_slower_than_sequential(self):
        def reader(stack, offsets):
            for offset in offsets:
                yield from stack.read(1, "f", offset, 4096)

        engine_a, stack_a = make_stack()
        t_seq = timed(engine_a, reader(stack_a, [i * 4096 for i in range(64)]))
        engine_b, stack_b = make_stack()
        t_rand = timed(
            engine_b, reader(stack_b, [(i * 7919) % 100000 * 4096 for i in range(64)])
        )
        assert t_rand > t_seq * 3


class TestWritePath(object):
    def test_buffered_write_is_fast(self):
        engine, stack = make_stack()

        def body():
            yield from stack.write(1, "f", 0, 65536)
            return engine.now

        assert engine.run_process(body()) < 0.001
        assert stack.cache.dirty_count == 16

    def test_fsync_flushes_dirty_pages(self):
        engine, stack = make_stack()

        def body():
            yield from stack.write(1, "f", 0, 65536)
            yield from stack.fsync(1, "f")

        engine.run_process(body())
        assert stack.cache.dirty_count == 0
        assert stack.stats.fsyncs == 1
        assert stack.stats.blocks_written >= 16

    def test_fsync_costs_real_time_on_hdd(self):
        engine, stack = make_stack()

        def body():
            yield from stack.write(1, "f", 0, 4096)
            yield from stack.fsync(1, "f")
            return engine.now

        # At least one seek to the journal zone plus the barrier; the
        # exact rotational delay varies with the per-run phase salt.
        assert engine.run_process(body()) > 0.0015

    def test_fsync_other_file_leaves_dirty(self):
        engine, stack = make_stack()

        def body():
            yield from stack.write(1, "a", 0, 4096)
            yield from stack.fsync(1, "b")

        engine.run_process(body())
        assert stack.cache.dirty_count == 1

    def test_ext3_ordered_data_drags_other_files(self):
        engine, stack = make_stack(fs_profile="ext3")

        def body():
            yield from stack.write(1, "a", 0, 4096)
            yield from stack.write(1, "b", 0, 4096)
            yield from stack.fsync(1, "b")

        engine.run_process(body())
        assert stack.cache.dirty_count == 0  # a was flushed too

    def test_dirty_throttling_kicks_in(self):
        engine, stack = make_stack(cache_bytes=4096 * 100)  # 100 pages, limit 20

        def body():
            yield from stack.write(1, "f", 0, 4096 * 50)
            return engine.now

        elapsed = engine.run_process(body())
        assert stack.cache.dirty_count <= stack.cache.dirty_limit
        assert elapsed > 0.001  # synchronous writeback happened

    def test_sync_all(self):
        engine, stack = make_stack()

        def body():
            yield from stack.write(1, "a", 0, 4096)
            yield from stack.write(1, "b", 0, 4096)
            yield from stack.sync_all(1)

        engine.run_process(body())
        assert stack.cache.dirty_count == 0


class TestMetadata(object):
    def test_meta_read_caches(self):
        engine, stack = make_stack()

        def body():
            yield from stack.meta_read(1, 42)
            t_first = engine.now
            yield from stack.meta_read(1, 42)
            return t_first, engine.now

        t_first, t_second = engine.run_process(body())
        assert (t_second - t_first) < t_first / 10

    def test_namespace_ops_batch_journal_writes(self):
        engine, stack = make_stack()

        def body():
            for index in range(64):
                yield from stack.namespace_op(1, index)

        engine.run_process(body())
        assert stack.stats.writes_submitted >= 1

    def test_journal_commit_includes_pending_meta(self):
        engine, stack = make_stack()

        def body():
            yield from stack.namespace_op(1, 1)
            yield from stack.fsync(1, 1)

        engine.run_process(body())
        assert stack._pending_meta_blocks == 0
        assert stack.stats.journal_commits == 1

    def test_drop_file_invalidates(self):
        engine, stack = make_stack()

        def body():
            yield from stack.write(1, "f", 0, 4096)
            stack.drop_file(1, "f")

        engine.run_process(body())
        assert stack.cache.dirty_count == 0


class TestDevices(object):
    def test_raid_parallelism_for_two_threads(self):
        def workload(stack):
            def reader(tid, fid):
                for index in range(100):
                    offset = ((index * 7919 + tid * 13) % 100000) * 4096
                    yield from stack.read(tid, fid, offset, 4096)

            stack.engine.spawn(reader(1, "a"))
            stack.engine.spawn(reader(2, "b"))
            stack.engine.run()
            return stack.engine.now

        engine_h, stack_h = make_stack(HDD(), scheduler="fifo")
        stack_h.alloc.ensure_blocks("a", 110000)
        stack_h.alloc.ensure_blocks("b", 110000)
        t_hdd = workload(stack_h)

        engine_r, stack_r = make_stack(RAID0(2), scheduler="fifo")
        stack_r.alloc.ensure_blocks("a", 110000)
        stack_r.alloc.ensure_blocks("b", 110000)
        t_raid = workload(stack_r)
        assert t_raid < t_hdd * 0.8

    def test_ssd_much_faster_than_hdd(self):
        def reads(stack):
            def body():
                for index in range(50):
                    yield from stack.read(1, "f", ((index * 7919) % 90000) * 4096, 4096)

            return timed(stack.engine, body())

        _, stack_h = make_stack(HDD())
        _, stack_s = make_stack(SSD(), scheduler="fifo")
        assert reads(stack_s) < reads(stack_h) / 10

    def test_stats_accumulate(self):
        engine, stack = make_stack()

        def body():
            yield from stack.read(1, "f", 0, 8192)
            yield from stack.write(1, "f", 0, 4096)
            yield from stack.fsync(1, "f")

        engine.run_process(body())
        stats = stack.stats.as_dict()
        assert stats["reads_submitted"] >= 1
        assert stats["blocks_read"] >= 2
        assert stats["fsyncs"] == 1
