"""Unit tests for the I/O schedulers."""

import pytest

from repro.storage import BlockRequest
from repro.storage.scheduler import (
    CFQScheduler,
    ElevatorScheduler,
    FIFOScheduler,
    make_scheduler,
)


def req(tid, lba):
    return BlockRequest(tid, lba, 1, False)


class TestFIFO(object):
    def test_arrival_order(self):
        sched = FIFOScheduler()
        first, second = req(1, 100), req(2, 5)
        sched.add(first, 0.0)
        sched.add(second, 0.0)
        assert sched.pop(0.0, 0) is first
        assert sched.pop(0.0, 0) is second
        assert sched.pop(0.0, 0) is None

    def test_never_idles(self):
        assert FIFOScheduler().idle_deadline(0.0) is None


class TestElevator(object):
    def test_services_upward_sweep(self):
        sched = ElevatorScheduler()
        requests = [req(1, lba) for lba in (500, 100, 300)]
        for request in requests:
            sched.add(request, 0.0)
        order = [sched.pop(0.0, 200).lba for _ in range(3)]
        assert order == [300, 500, 100]  # up from 200, wrap to lowest

    def test_wraps_to_lowest_when_nothing_ahead(self):
        sched = ElevatorScheduler()
        sched.add(req(1, 10), 0.0)
        sched.add(req(1, 20), 0.0)
        assert sched.pop(0.0, 1000).lba == 10

    def test_len_tracks_pending(self):
        sched = ElevatorScheduler()
        sched.add(req(1, 1), 0.0)
        sched.add(req(1, 2), 0.0)
        assert len(sched) == 2
        sched.pop(0.0, 0)
        assert len(sched) == 1


class TestCFQ(object):
    def test_serves_active_thread_within_slice(self):
        sched = CFQScheduler(slice_sync=0.100)
        a1, a2, b1 = req("A", 1), req("A", 2), req("B", 3)
        sched.add(a1, 0.0)
        sched.add(b1, 0.0)
        sched.add(a2, 0.0)
        assert sched.pop(0.0, 0) is a1
        assert sched.pop(0.01, 0) is a2  # still A's slice
        # A's queue is now empty: CFQ anticipates rather than switching.
        assert sched.pop(0.02, 0) is None
        sched.idle_expired(0.03)
        assert sched.pop(0.03, 0) is b1

    def test_slice_expiry_rotates(self):
        sched = CFQScheduler(slice_sync=0.010)
        a1, a2, b1 = req("A", 1), req("A", 2), req("B", 3)
        for request in (a1, a2, b1):
            sched.add(request, 0.0)
        assert sched.pop(0.0, 0) is a1
        # Past the slice: B gets its turn even though A has work.
        assert sched.pop(0.02, 0) is b1

    def test_anticipation_when_active_queue_empties(self):
        sched = CFQScheduler(slice_sync=0.100, slice_idle=0.008)
        a1, b1 = req("A", 1), req("B", 2)
        sched.add(a1, 0.0)
        sched.add(b1, 0.0)
        assert sched.pop(0.0, 0) is a1
        # A's queue is empty but the slice is live: don't hand B the disk.
        assert sched.pop(0.001, 0) is None
        deadline = sched.idle_deadline(0.001)
        assert deadline == pytest.approx(0.009)

    def test_anticipation_success(self):
        sched = CFQScheduler(slice_sync=0.100, slice_idle=0.008)
        a1, b1 = req("A", 1), req("B", 2)
        sched.add(a1, 0.0)
        sched.add(b1, 0.0)
        sched.pop(0.0, 0)
        a2 = req("A", 5)
        sched.add(a2, 0.004)  # arrives within the idle window
        assert sched.pop(0.004, 0) is a2

    def test_anticipation_failure_rotates(self):
        sched = CFQScheduler(slice_sync=0.100, slice_idle=0.008)
        a1, b1 = req("A", 1), req("B", 2)
        sched.add(a1, 0.0)
        sched.add(b1, 0.0)
        sched.pop(0.0, 0)
        assert sched.pop(0.005, 0) is None
        sched.idle_expired(0.009)
        assert sched.pop(0.009, 0) is b1

    def test_no_idling_when_no_active_thread(self):
        sched = CFQScheduler()
        assert sched.idle_deadline(0.0) is None

    def test_idle_deadline_capped_by_slice_end(self):
        sched = CFQScheduler(slice_sync=0.010, slice_idle=0.008)
        sched.add(req("A", 1), 0.0)
        sched.pop(0.0, 0)
        deadline = sched.idle_deadline(0.005)
        assert deadline == pytest.approx(0.010)  # slice end, not now+idle

    def test_round_robin_is_fair(self):
        sched = CFQScheduler(slice_sync=0.001)
        for i in range(3):
            sched.add(req("A", i), 0.0)
            sched.add(req("B", i), 0.0)
        served = []
        now = 0.0
        while len(sched):
            request = sched.pop(now, 0)
            if request is None:
                sched.idle_expired(now)
                continue
            served.append(request.thread_id)
            now += 0.002  # every service outlasts the slice
        assert served[:4] in (["A", "B", "A", "B"], ["B", "A", "B", "A"])

    def test_bad_slice_rejected(self):
        with pytest.raises(ValueError):
            CFQScheduler(slice_sync=0)

    def test_size_accounting(self):
        sched = CFQScheduler()
        sched.add(req("A", 1), 0.0)
        sched.add(req("B", 2), 0.0)
        assert len(sched) == 2
        sched.pop(0.0, 0)
        assert len(sched) == 1


def test_make_scheduler_by_name():
    assert isinstance(make_scheduler("fifo"), FIFOScheduler)
    assert isinstance(make_scheduler("elevator"), ElevatorScheduler)
    cfq = make_scheduler("cfq", slice_sync=0.042)
    assert isinstance(cfq, CFQScheduler)
    assert cfq.slice_sync == 0.042
    with pytest.raises(ValueError):
        make_scheduler("deadline")
