"""Unit tests for the page cache."""

import pytest

from repro.storage.cache import PageCache


class TestResidency(object):
    def test_miss_then_hit(self):
        cache = PageCache(16)
        assert not cache.lookup(("f", 0))
        cache.insert(("f", 0), dirty=False)
        assert cache.lookup(("f", 0))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = PageCache(2)
        cache.insert(("f", 0), dirty=False)
        cache.insert(("f", 1), dirty=False)
        cache.lookup(("f", 0))  # 0 becomes MRU
        cache.insert(("f", 2), dirty=False)  # evicts 1
        assert cache.contains(("f", 0))
        assert not cache.contains(("f", 1))
        assert cache.contains(("f", 2))

    def test_capacity_respected(self):
        cache = PageCache(4)
        for block in range(10):
            cache.insert(("f", block), dirty=False)
        assert len(cache) == 4

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(0)

    def test_reinsert_moves_to_mru(self):
        cache = PageCache(2)
        cache.insert(("f", 0), dirty=False)
        cache.insert(("f", 1), dirty=False)
        cache.insert(("f", 0), dirty=False)  # refresh
        cache.insert(("f", 2), dirty=False)  # evicts 1, not 0
        assert cache.contains(("f", 0))


class TestDirty(object):
    def test_eviction_returns_dirty_keys(self):
        cache = PageCache(2)
        cache.insert(("f", 0), dirty=True)
        cache.insert(("f", 1), dirty=False)
        evicted = cache.insert(("f", 2), dirty=False)
        assert evicted == [("f", 0)]

    def test_clean_eviction_returns_nothing(self):
        cache = PageCache(1)
        cache.insert(("f", 0), dirty=False)
        assert cache.insert(("f", 1), dirty=False) == []

    def test_mark_clean(self):
        cache = PageCache(4)
        cache.insert(("f", 0), dirty=True)
        assert cache.dirty_count == 1
        cache.mark_clean([("f", 0)])
        assert cache.dirty_count == 0
        # now evicting it returns nothing
        cache.insert(("f", 1), dirty=False)
        cache.insert(("f", 2), dirty=False)
        cache.insert(("f", 3), dirty=False)
        assert cache.insert(("f", 4), dirty=False) == []

    def test_rewrite_keeps_single_dirty_entry(self):
        cache = PageCache(4)
        cache.insert(("f", 0), dirty=True)
        cache.insert(("f", 0), dirty=True)
        assert cache.dirty_count == 1

    def test_dirty_upgrade_on_reinsert(self):
        cache = PageCache(4)
        cache.insert(("f", 0), dirty=False)
        cache.insert(("f", 0), dirty=True)
        assert cache.dirty_count == 1

    def test_dirty_keys_of_filters_by_file(self):
        cache = PageCache(8)
        cache.insert(("a", 0), dirty=True)
        cache.insert(("b", 0), dirty=True)
        cache.insert(("a", 1), dirty=True)
        assert sorted(cache.dirty_keys_of("a")) == [("a", 0), ("a", 1)]

    def test_oldest_dirty_ordering(self):
        cache = PageCache(8)
        for block in range(4):
            cache.insert(("f", block), dirty=True)
        assert cache.oldest_dirty(2) == [("f", 0), ("f", 1)]

    def test_invalidate_file_discards_dirty(self):
        cache = PageCache(8)
        cache.insert(("a", 0), dirty=True)
        cache.insert(("b", 0), dirty=True)
        cache.invalidate_file("a")
        assert not cache.contains(("a", 0))
        assert cache.contains(("b", 0))
        assert cache.dirty_count == 1

    def test_drop_clean_keeps_dirty(self):
        cache = PageCache(8)
        cache.insert(("a", 0), dirty=False)
        cache.insert(("a", 1), dirty=True)
        cache.drop_clean()
        assert not cache.contains(("a", 0))
        assert cache.contains(("a", 1))

    def test_dirty_limit_fraction(self):
        cache = PageCache(100, dirty_ratio=0.2)
        assert cache.dirty_limit == 20


class TestReadahead(object):
    @staticmethod
    def span(plan):
        start, end = plan
        return end - start

    def test_random_access_gets_no_prefetch(self):
        cache = PageCache(64)
        assert self.span(cache.readahead_plan("t", "f", 500, 1)) == 0

    def test_scan_from_bof_detected(self):
        cache = PageCache(64)
        assert self.span(cache.readahead_plan("t", "f", 0, 4)) > 0

    def test_sequential_stream_keeps_prefetching(self):
        cache = PageCache(256)
        position = 0
        total = 0
        for _ in range(40):
            start, end = cache.readahead_plan("t", "f", position, 1)
            total += end - start
            position += 1
        # The stream reads 40 blocks; readahead must have covered them
        # and run ahead of the reader.
        assert total >= 40

    def test_window_capped(self):
        cache = PageCache(4096)
        position = 0
        for _ in range(200):
            start, end = cache.readahead_plan("t", "f", position, 1)
            assert end - start <= 2 * PageCache.READAHEAD_MAX
            position += 1

    def test_prefetch_is_chunky_not_per_read(self):
        cache = PageCache(4096)
        plans = []
        position = 0
        for _ in range(64):
            plans.append(cache.readahead_plan("t", "f", position, 1))
            position += 1
        chunks = [end - start for start, end in plans if end > start]
        # Some reads trigger no new prefetch (still inside the last
        # chunk), and issued chunks are multi-block.
        assert len(chunks) < 40
        assert max(chunks) >= PageCache.READAHEAD_MIN

    def test_broken_stream_stops_prefetch(self):
        cache = PageCache(64)
        cache.readahead_plan("t", "f", 0, 4)
        assert self.span(cache.readahead_plan("t", "f", 900, 1)) == 0

    def test_streams_are_per_thread_and_file(self):
        cache = PageCache(64)
        cache.readahead_plan("t1", "f", 0, 4)
        # Another thread reading elsewhere in the same file does not
        # inherit t1's stream state.
        assert self.span(cache.readahead_plan("t2", "f", 900, 1)) == 0
