"""Tests for file-system timing personalities."""

import pytest

from repro.sim import Engine
from repro.storage import FS_PROFILES, HDD, StorageStack


def fsync_heavy_blocks(profile):
    engine = Engine(3)
    stack = StorageStack(engine, HDD(), 64 << 20, fs_profile=profile)

    def body():
        for index in range(40):
            yield from stack.write(1, "a", index * 4096, 4096)
            yield from stack.write(1, "b", index * 4096, 4096)
            yield from stack.fsync(1, "a")

    engine.run_process(body())
    return stack.stats.blocks_written


class TestProfiles(object):
    def test_all_four_personalities_exist(self):
        assert set(FS_PROFILES) == {"ext2", "ext3", "ext4", "xfs", "jfs"} - {"ext2"}

    def test_ext3_ordered_data(self):
        assert FS_PROFILES["ext3"].ordered_data
        assert not FS_PROFILES["ext4"].ordered_data

    def test_ext3_fsync_writes_the_most(self):
        # data=ordered drags the other file's dirty pages into every
        # fsync, the classic ext3 behavior; it also journals more
        # blocks per commit than XFS.
        blocks = {name: fsync_heavy_blocks(name) for name in FS_PROFILES}
        assert blocks["ext3"] == max(blocks.values())
        assert blocks["xfs"] == min(blocks.values())

    def test_profiles_differ_in_allocation_granularity(self):
        assert FS_PROFILES["ext3"].max_extent_blocks < FS_PROFILES["ext4"].max_extent_blocks

    def test_stack_accepts_profile_objects(self):
        engine = Engine()
        stack = StorageStack(engine, HDD(), 1 << 20, fs_profile=FS_PROFILES["xfs"])
        assert stack.profile.name == "xfs"

    def test_unknown_profile_name_raises(self):
        engine = Engine()
        with pytest.raises(KeyError):
            StorageStack(engine, HDD(), 1 << 20, fs_profile="zfs")
