"""Unit tests for device timing models (HDD, SSD, RAID-0)."""

import pytest

from repro.sim import Engine
from repro.storage import BLOCK_SIZE, BlockRequest, HDD, RAID0
from repro.storage.hdd import HDDSpindle
from repro.storage.ssd import SSDSpindle


def service_time(spindle, request):
    engine = Engine()

    def body():
        yield from spindle.service(request)
        return engine.now

    return engine.run_process(body())


class TestHDD(object):
    def test_sequential_faster_than_random(self):
        spindle = HDDSpindle()
        sequential = service_time(spindle, BlockRequest(1, 0, 8, False))
        # Continue from the head position: nearly free.
        more = service_time(spindle, BlockRequest(1, 8, 8, False))
        far = service_time(spindle, BlockRequest(1, 50_000_000, 8, False))
        assert more <= sequential  # no initial seek either way, but check shape
        assert far > more * 10

    def test_seek_grows_with_distance(self):
        spindle = HDDSpindle()
        near = spindle.access_time(1000)
        far = spindle.access_time(50_000_000)
        assert near < far
        assert far <= spindle.max_seek + spindle.avg_rotation

    def test_zero_distance_access_is_free(self):
        spindle = HDDSpindle()
        spindle._head = 123
        assert spindle.access_time(123) == 0.0

    def test_transfer_time_scales_with_size(self):
        spindle = HDDSpindle()
        assert spindle.transfer_time(16) == pytest.approx(
            16 * BLOCK_SIZE / spindle.seq_bandwidth
        )

    def test_head_moves_after_service(self):
        spindle = HDDSpindle()
        service_time(spindle, BlockRequest(1, 100, 4, False))
        assert spindle.position() == 104

    def test_device_has_one_spindle(self):
        assert HDD().nspindles == 1

    def test_split_is_identity(self):
        device = HDD()
        request = BlockRequest(1, 10, 4, False)
        assert device.split(request) == [(0, request)]


class TestSSD(object):
    def test_no_positional_penalty(self):
        spindle = SSDSpindle()
        near = service_time(spindle, BlockRequest(1, 0, 1, False))
        far = service_time(spindle, BlockRequest(1, 50_000_000, 1, False))
        assert near == pytest.approx(far)

    def test_writes_slower_than_reads(self):
        spindle = SSDSpindle()
        read = service_time(spindle, BlockRequest(1, 0, 1, False))
        write = service_time(spindle, BlockRequest(1, 0, 1, True))
        assert write > read

    def test_internal_concurrency(self):
        assert SSDSpindle().concurrency > 1

    def test_much_faster_than_hdd_random(self):
        ssd_time = service_time(SSDSpindle(), BlockRequest(1, 9_999_999, 1, False))
        hdd_time = service_time(HDDSpindle(), BlockRequest(1, 9_999_999, 1, False))
        assert ssd_time < hdd_time / 20


class TestRAID0(object):
    def test_two_spindles(self):
        assert RAID0(2).nspindles == 2

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            RAID0(2, chunk_bytes=1000)

    def test_zero_disks_rejected(self):
        with pytest.raises(ValueError):
            RAID0(0)

    def test_small_request_hits_one_member(self):
        device = RAID0(2, chunk_bytes=512 * 1024)
        request = BlockRequest(1, 0, 8, False)
        pieces = device.split(request)
        assert len(pieces) == 1
        member, child = pieces[0]
        assert member == 0
        assert child.parent is request

    def test_chunk_spanning_request_splits(self):
        chunk_blocks = 512 * 1024 // BLOCK_SIZE  # 128
        device = RAID0(2, chunk_bytes=512 * 1024)
        request = BlockRequest(1, chunk_blocks - 4, 8, False)
        pieces = device.split(request)
        assert len(pieces) == 2
        members = [m for m, _c in pieces]
        assert members == [0, 1]
        assert request.pending_children == 2
        assert sum(c.nblocks for _m, c in pieces) == 8

    def test_alternating_chunks_alternate_members(self):
        chunk_blocks = 512 * 1024 // BLOCK_SIZE
        device = RAID0(2, chunk_bytes=512 * 1024)
        members = [
            device.split(BlockRequest(1, i * chunk_blocks, 1, False))[0][0]
            for i in range(4)
        ]
        assert members == [0, 1, 0, 1]

    def test_member_lba_compaction(self):
        # Chunks map onto member disks contiguously (chunk k of a member
        # lands at member-lba k*chunk).
        chunk_blocks = 512 * 1024 // BLOCK_SIZE
        device = RAID0(2, chunk_bytes=512 * 1024)
        _member, child = device.split(BlockRequest(1, 2 * chunk_blocks, 1, False))[0]
        assert child.lba == chunk_blocks  # second chunk on member 0
