"""Storage-stack edge cases: in-flight pages, RAID writes, journal wrap."""

from repro.sim import Engine
from repro.storage import HDD, RAID0, StorageStack
from repro.storage.alloc import BlockAllocator


def make_stack(device=None, **kwargs):
    engine = Engine(kwargs.pop("seed", 0))
    stack = StorageStack(engine, device or HDD(), 64 << 20, **kwargs)
    return engine, stack


class TestInflightPages(object):
    def test_second_reader_waits_for_inflight_page(self):
        engine, stack = make_stack()
        stack.alloc.ensure_blocks("f", 64)
        done = {}

        def reader(tid):
            # Mid-file offset: no readahead, exactly one block involved.
            yield from stack.read(tid, "f", 100 * 4096, 4096)
            done[tid] = engine.now

        engine.spawn(reader(1))
        engine.spawn(reader(2))
        engine.run()
        # One physical read served both; the second reader finished at
        # (or a hair after) the same moment, not after a second seek.
        assert stack.stats.reads_submitted == 1
        assert abs(done[1] - done[2]) < 0.001

    def test_inflight_map_drains(self):
        engine, stack = make_stack()

        def body():
            yield from stack.read(1, "f", 0, 65536)

        engine.run_process(body())
        engine.run()
        assert stack._inflight == {}

    def test_reader_behind_prefetch_waits_not_skips(self):
        engine, stack = make_stack()
        latencies = []

        def body():
            # Sequential stream: triggers readahead.
            for block in range(32):
                start = engine.now
                yield from stack.read(1, "f", block * 4096, 4096)
                latencies.append(engine.now - start)

        engine.run_process(body())
        # The stream cannot run faster than the disk: total time must be
        # at least the media-rate transfer of all the data it consumed.
        transfer = 32 * 4096 / (100 * 1024 * 1024)
        assert sum(latencies) >= transfer


class TestRaidWrites(object):
    def test_large_write_stripes_across_members(self):
        engine, stack = make_stack(RAID0(2), scheduler="fifo")

        def body():
            yield from stack.write(1, "f", 0, 2 << 20)  # 2 MB, 4 chunks
            yield from stack.fsync(1, "f")

        engine.run_process(body())
        # Both members saw traffic: head moved on each spindle.
        positions = [s.position() for s in stack.device.spindles]
        assert all(p > 0 for p in positions)

    def test_striped_fsync_faster_than_single_disk(self):
        def timed(device):
            engine, stack = make_stack(device, scheduler="fifo", seed=4)

            def body():
                yield from stack.write(1, "f", 0, 8 << 20)
                yield from stack.fsync(1, "f")

            engine.run_process(body())
            return engine.now

        assert timed(RAID0(2)) < timed(HDD()) * 0.8


class TestJournal(object):
    def test_journal_cursor_wraps(self):
        engine, stack = make_stack()
        for _ in range(10000):
            stack._journal_lba(16)
        assert 0 <= stack._meta_journal_cursor < BlockAllocator.JOURNAL_ZONE_BLOCKS

    def test_journal_writes_in_journal_zone(self):
        engine, stack = make_stack()
        lba = stack._journal_lba(8)
        assert BlockAllocator.INODE_ZONE_BLOCKS <= lba
        assert lba < BlockAllocator.INODE_ZONE_BLOCKS + BlockAllocator.JOURNAL_ZONE_BLOCKS


class TestMetadataWarmth(object):
    def test_warm_metadata_makes_meta_read_cheap(self):
        engine, stack = make_stack()
        stack.warm_metadata([42])

        def body():
            start = engine.now
            yield from stack.meta_read(1, 42)
            return engine.now - start

        assert engine.run_process(body()) < 0.0001

    def test_drop_caches_keep_metadata(self):
        engine, stack = make_stack()

        def body():
            yield from stack.read(1, "f", 0, 4096)
            yield from stack.meta_read(1, 42)

        engine.run_process(body())
        stack.drop_caches(keep_metadata=True)
        assert stack.cache.contains(("ino", 42))
        assert not stack.cache.contains(("f", 0))
        stack.drop_caches(keep_metadata=False)
        assert not stack.cache.contains(("ino", 42))
