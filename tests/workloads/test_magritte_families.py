"""Per-family Magritte smoke tests: one app per family through the
whole trace -> compile -> ARTC replay pipeline."""

import pytest

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite

REPRESENTATIVES = [
    "iphoto_view400",
    "itunes_album1",
    "imovie_add1",
    "pages_pdf15",
    "numbers_xls5",
    "keynote_ppt20",
]


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_family_pipeline(name):
    app = build_suite([name])[name]
    traced = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
    profile = app.profile
    # Trace volume and threading follow the profile.
    assert 0.5 * profile.events < len(traced.trace) < 2.0 * profile.events
    assert len(traced.trace.threads) == profile.nthreads
    # Compiles without model misses and replays with only the planted
    # residuals (plus at most a couple of trace-order ambiguities).
    bench = compile_trace(traced.trace, traced.snapshot)
    assert bench.stats["model_misses"] == 0
    report = replay_benchmark(
        bench, PLATFORMS["ssd"], ReplayMode.ARTC, seed=420, warm_cache=True
    )
    assert report.failures <= profile.artc_errors + 3


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_family_traces_use_darwin_calls(name):
    app = build_suite([name])[name]
    traced = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
    names = {record.name for record in traced.trace}
    assert "getattrlist" in names  # every family does bulk metadata
    # Save-flavored families exercise the atomic-save dance.
    if any(k in app.profile.mix for k in ("tmp_save", "exchange_save")):
        assert "rename" in names or "exchangedata" in names
