"""Tests for the Magritte suite."""

import pytest

from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.workloads.magritte import PROFILES, build_suite, suite_names


class TestSuiteShape(object):
    def test_thirty_four_traces(self):
        assert len(suite_names()) == 34
        assert len(PROFILES) == 34

    def test_families_match_table3(self):
        families = {}
        for name in suite_names():
            families.setdefault(name.split("_")[0], []).append(name)
        assert len(families["iphoto"]) == 6
        assert len(families["itunes"]) == 5
        assert len(families["imovie"]) == 4
        assert len(families["pages"]) == 8
        assert len(families["numbers"]) == 4
        assert len(families["keynote"]) == 7

    def test_build_subset(self):
        suite = build_suite(["iphoto_start400"])
        assert list(suite) == ["iphoto_start400"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_suite(["iphoto_start9000"])


class TestAppBehavior(object):
    @pytest.fixture(scope="class")
    def traced(self):
        app = build_suite(["imovie_start1"])["imovie_start1"]
        return trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True), app

    def test_trace_size_near_profile_target(self, traced):
        result, app = traced
        target = app.profile.events
        assert 0.6 * target < len(result.trace) < 1.6 * target

    def test_thread_count_matches_profile(self, traced):
        result, app = traced
        assert len(result.trace.threads) == app.profile.nthreads

    def test_trace_is_darwin_flavored(self, traced):
        result, _app = traced
        names = {r.name for r in result.trace}
        assert "getattrlist" in names

    def test_snapshot_omits_xattrs_like_ibench(self, traced):
        result, _app = traced
        for entry in result.snapshot:
            assert entry.xattrs == []

    def test_failed_stats_present(self, traced):
        # .DS_Store probing: stat calls that legitimately fail.
        result, _app = traced
        misses = [r for r in result.trace if r.name == "stat" and r.err == "ENOENT"]
        assert misses

    def test_deterministic_generation(self):
        app = build_suite(["numbers_open5"])["numbers_open5"]
        t1 = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
        app2 = build_suite(["numbers_open5"])["numbers_open5"]
        t2 = trace_application(app2, PLATFORMS["mac-ssd"], warm_cache=True)
        assert len(t1.trace) == len(t2.trace)
        assert [r.name for r in t1.trace] == [r.name for r in t2.trace]

    def test_secret_xattr_reads_match_artc_errors(self):
        app = build_suite(["pages_open15"])["pages_open15"]
        traced = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
        secret_reads = [
            r
            for r in traced.trace
            if r.name == "getxattr"
            and r.ok
            and "kMDItemWhereFroms" in str(r.args.get("xname"))
        ]
        assert len(secret_reads) == app.profile.artc_errors


class TestCorrectnessPipeline(object):
    def test_uc_fails_more_than_artc(self):
        from repro.artc.compiler import compile_trace
        from repro.bench.harness import replay_benchmark
        from repro.core.modes import ReplayMode

        app = build_suite(["itunes_importsmall1"])["itunes_importsmall1"]
        traced = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
        bench = compile_trace(traced.trace, traced.snapshot)
        artc = replay_benchmark(
            bench, PLATFORMS["ssd"], ReplayMode.ARTC, seed=400, warm_cache=True
        )
        uc = replay_benchmark(
            bench,
            PLATFORMS["ssd"],
            ReplayMode.UNCONSTRAINED,
            seed=401,
            warm_cache=True,
            jitter=2e-5,
        )
        assert artc.failures <= app.profile.artc_errors + 2
        assert uc.failures > artc.failures
