"""Tests for the microbenchmark workloads."""

from repro.bench import PLATFORMS
from repro.bench.harness import ground_truth_run, trace_application
from repro.workloads import (
    CacheSensitiveReaders,
    CompetingSequentialReaders,
    ParallelRandomReaders,
)


class TestParallelRandomReaders(object):
    def test_setup_creates_per_thread_files(self):
        app = ParallelRandomReaders(nthreads=3, file_bytes=1 << 20)
        fs = PLATFORMS["hdd-ext4"].make_fs()
        app.setup(fs)
        for index in (1, 2, 3):
            assert fs.lookup("/data/reader%d" % index).size == 1 << 20

    def test_trace_volume_matches_parameters(self):
        app = ParallelRandomReaders(nthreads=2, reads_per_thread=50, file_bytes=1 << 20)
        traced = trace_application(app, PLATFORMS["hdd-ext4"])
        # 2 opens + 100 preads + 2 closes
        assert len(traced.trace) == 104
        preads = [r for r in traced.trace if r.name == "pread"]
        assert len(preads) == 100
        assert all(r.ok for r in traced.trace)

    def test_deterministic_for_fixed_seed(self):
        app = ParallelRandomReaders(nthreads=2, reads_per_thread=20, file_bytes=1 << 20)
        t1 = ground_truth_run(app, PLATFORMS["hdd-ext4"], seed=5)
        t2 = ground_truth_run(app, PLATFORMS["hdd-ext4"], seed=5)
        assert t1 == t2

    def test_more_threads_sublinear_on_hdd(self):
        single = ground_truth_run(
            ParallelRandomReaders(nthreads=1, reads_per_thread=300),
            PLATFORMS["hdd-ext4"],
        )
        eight = ground_truth_run(
            ParallelRandomReaders(nthreads=8, reads_per_thread=300),
            PLATFORMS["hdd-ext4"],
        )
        assert eight < 7 * single  # 8x the I/O in well under 8x the time


class TestCacheSensitiveReaders(object):
    def test_cache_size_changes_elapsed(self):
        app = CacheSensitiveReaders(file_bytes=64 << 20, random_reads=400)
        big = PLATFORMS["hdd-ext4"].variant("big", cache_bytes=256 << 20)
        small = PLATFORMS["hdd-ext4"].variant("small", cache_bytes=16 << 20)
        fast = ground_truth_run(app, big)
        slow = ground_truth_run(app, small)
        assert slow > fast * 1.1

    def test_trace_contains_both_threads(self):
        app = CacheSensitiveReaders(file_bytes=8 << 20, random_reads=20)
        traced = trace_application(app, PLATFORMS["hdd-ext4"])
        assert len(traced.trace.threads) == 2


class TestCompetingSequentialReaders(object):
    def test_total_bytes(self):
        app = CompetingSequentialReaders(nthreads=2, reads_per_thread=100)
        assert app.total_bytes == 2 * 100 * 4096

    def test_throughput_rises_with_slice(self):
        app = CompetingSequentialReaders(reads_per_thread=1500)
        base = PLATFORMS["hdd-ext4"]
        slow = ground_truth_run(
            app, base.variant("s1", scheduler_kwargs={"slice_sync": 0.001})
        )
        fast = ground_truth_run(
            app, base.variant("s100", scheduler_kwargs={"slice_sync": 0.100})
        )
        assert fast < slow / 2

    def test_reads_are_sequential(self):
        app = CompetingSequentialReaders(reads_per_thread=10)
        traced = trace_application(app, PLATFORMS["hdd-ext4"])
        reads = [r for r in traced.trace if r.name == "read"]
        assert len(reads) == 20
        assert all(r.ret == 4096 for r in reads)
