"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.sim import Engine
from repro.storage import HDD, SSD, StorageStack
from repro.vfs import FileSystem


def make_fs(seed=0, device=None, platform="linux", cache_bytes=256 * 1024 * 1024,
            scheduler="cfq", fs_profile="ext4", obs=None):
    """A fresh engine + stack + file system.

    ``obs`` attaches an observability context before the stack is
    built (instrumented components discover it at construction time).
    """
    engine = Engine(seed, obs=obs)
    stack = StorageStack(
        engine,
        device if device is not None else HDD(),
        cache_bytes,
        fs_profile=fs_profile,
        scheduler=scheduler,
    )
    return FileSystem(engine, stack, platform)


def run(fs, gen):
    """Drive one generator to completion on fs's engine."""
    return fs.engine.run_process(gen)


@pytest.fixture
def fs():
    return make_fs()


@pytest.fixture
def fs_ssd():
    return make_fs(device=SSD(), scheduler="fifo")


@pytest.fixture
def fs_darwin():
    return make_fs(platform="darwin")
