"""Fault plans: parsing, validation, serialization, determinism."""

import pytest

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    FaultRule,
    parse_rule,
)


class TestParseRule(object):
    def test_trigger_shorthand(self):
        rule = parse_rule("eio@1.5")
        assert rule.kind == "eio"
        assert rule.at == 1.5
        assert rule.count == 1  # triggered rules fire once by default

    def test_rate_with_fields(self):
        rule = parse_rule("latency:rate=0.05:factor=20:op=write")
        assert rule.rate == 0.05
        assert rule.factor == 20.0
        assert rule.op == "write"
        assert rule.count is None  # rate rules are unlimited

    def test_trigger_with_duration(self):
        rule = parse_rule("stall@2:duration=0.25")
        assert rule.at == 2.0
        assert rule.duration == 0.25

    def test_device_scoping(self):
        rule = parse_rule("eio:rate=1.0:device=hdd:spindle=1")
        assert rule.device == "hdd"
        assert rule.spindle == 1

    @pytest.mark.parametrize("bad", [
        "meteor@1",                # unknown kind
        "eio",                     # neither rate nor at
        "eio@1:rate=0.5",          # both rate and at
        "eio:rate=2.0",            # rate out of range
        "eio:rate=0.1:op=think",   # bad op
        "eio:rate=x",              # unparseable value
        "eio:wat=1",               # unknown field
        "eio@soon",                # bad trigger time
        "eio:rate",                # missing '='
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(FaultPlanError):
            parse_rule(bad)


class TestPlanSerialization(object):
    def test_round_trip(self):
        plan = FaultPlan.from_cli(
            ["eio@1.5", "latency:rate=0.05:factor=20", "torn_write:rate=0.1:blocks=2"],
            seed=7,
        )
        clone = FaultPlan.loads(plan.dumps())
        assert clone.to_dict() == plan.to_dict()
        assert clone.seed == 7

    def test_format_header_checked(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.loads('{"format": "not-a-plan", "rules": []}')

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule.from_dict({"kind": "eio", "rate": 0.5, "zap": 1})

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([FaultRule("eio", rate=0.5)])


class TestDeterminism(object):
    def test_rng_is_plan_local_and_seeded(self):
        plan = FaultPlan([FaultRule("eio", rate=0.5)], seed=42)
        a = [plan.rng().random() for _ in range(5)]
        b = [plan.rng().random() for _ in range(5)]
        assert a == b  # fresh RNG per call, same seed -> same draws

    def test_matches_windows(self):
        class Req(object):
            is_write = False

        rule = FaultRule("eio", rate=1.0, after=1.0, until=2.0)
        assert not rule.matches("hdd", 0, Req(), 0.5)
        assert rule.matches("hdd", 0, Req(), 1.5)
        assert not rule.matches("hdd", 0, Req(), 2.5)
