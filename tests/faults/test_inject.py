"""Runtime injection: EIO surfaces as errno, latency costs time,
RAID-0 propagates member failures, and the log is deterministic."""

import json

from repro.faults import FaultPlan, FaultRule, replay_with_faults
from tests.faults.conftest import compiled, rec

#: A read-heavy single-file trace; the snapshot pre-creates /f so the
#: replay's reads hit the (cold) device.
READS = [
    rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
    rec(1, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 0}, ret=65536),
    rec(2, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 65536}, ret=65536),
    rec(3, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 131072}, ret=65536),
    rec(4, "T1", "close", {"fd": 3}),
]
SNAP = [("/f", "reg", 262144)]


def test_eio_surfaces_as_errno(hdd):
    bench = compiled(READS, SNAP)
    plan = FaultPlan([FaultRule("eio", rate=1.0, op="read")], seed=1)
    result = replay_with_faults(bench, hdd, plan=plan)
    report = result.report
    assert result.fault_counts.get("eio", 0) > 0
    # The trace saw the reads succeed; injected EIO is a nonconformance.
    assert report.failures > 0
    assert "EIO" in report.failures_by_errno()
    assert "unexpected-failure" in report.warning_counts()


def test_latency_spike_costs_simulated_time(hdd):
    bench = compiled(READS, SNAP)
    base = replay_with_faults(bench, hdd).report.elapsed
    plan = FaultPlan([FaultRule("latency", rate=1.0, factor=50.0)], seed=1)
    result = replay_with_faults(bench, hdd, plan=plan)
    assert result.fault_counts.get("latency", 0) > 0
    assert result.report.elapsed > base
    # Latency perturbs timing but never semantics.
    assert result.report.failures == 0


def test_explicit_duration_latency(hdd):
    bench = compiled(READS, SNAP)
    base = replay_with_faults(bench, hdd).report.elapsed
    plan = FaultPlan([FaultRule("latency", at=0.0, count=1, duration=0.5)])
    result = replay_with_faults(bench, hdd, plan=plan)
    assert result.report.elapsed >= base + 0.5


def test_raid0_member_failure_propagates(raid):
    # A 2 MB file spans several 512 KB RAID-0 chunks, so its reads
    # stripe across both members wherever the allocator placed it.
    chunk = 512 * 1024
    records = [rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3)]
    for i in range(4):
        records.append(
            rec(1 + i, "T1", "pread",
                {"fd": 3, "nbytes": chunk, "offset": i * chunk}, ret=chunk)
        )
    records.append(rec(5, "T1", "close", {"fd": 3}))
    bench = compiled(records, [("/f", "reg", 4 * chunk)])
    # Fault only member spindle 1: striped reads touching it fail even
    # though member 0 is healthy.
    plan = FaultPlan([FaultRule("eio", rate=1.0, op="read", spindle=1)], seed=1)
    result = replay_with_faults(bench, raid, plan=plan)
    assert result.fault_events, "striping should route requests to spindle 1"
    assert all(e["spindle"] == 1 for e in result.fault_events)
    assert result.report.failures > 0
    assert "EIO" in result.report.failures_by_errno()


def test_same_seed_same_fault_log(hdd):
    bench = compiled(READS, SNAP)

    def run(seed):
        plan = FaultPlan(
            [
                FaultRule("eio", rate=0.4, op="read"),
                FaultRule("latency", rate=0.5, factor=10.0),
            ],
            seed=seed,
        )
        return replay_with_faults(bench, hdd, plan=plan)

    a, b = run(9), run(9)
    assert json.dumps(a.fault_events) == json.dumps(b.fault_events)
    assert json.dumps(a.summary(), sort_keys=True) == json.dumps(
        b.summary(), sort_keys=True
    )
    # A different seed draws a different sequence (overwhelmingly).
    c = run(10)
    assert json.dumps(a.fault_events) != json.dumps(c.fault_events)


def test_empty_plan_injects_nothing(hdd):
    bench = compiled(READS, SNAP)
    plain = replay_with_faults(bench, hdd)
    empty = replay_with_faults(bench, hdd, plan=FaultPlan(seed=123))
    assert empty.fault_events == []
    assert json.dumps(empty.summary(), sort_keys=True) == json.dumps(
        plain.summary(), sort_keys=True
    )


def test_fault_events_flow_into_obs(hdd):
    from repro.obs import Observability

    bench = compiled(READS, SNAP)
    plan = FaultPlan([FaultRule("eio", rate=1.0, op="read")], seed=1)
    obs = Observability()
    result = replay_with_faults(bench, hdd, plan=plan, obs=obs)
    injected = obs.metrics.counter("faults.injected").value
    assert injected == len(result.fault_events) > 0
    assert obs.metrics.counter("faults.injected.eio").value == injected
