"""Crash/recovery: the durability contract, swept over crash points.

The two-sided invariant (the whole point of crash recovery):

- **never surface unacked writes** -- the recovered file never holds
  more bytes than the write calls that completed before the crash
  produced;
- **always surface fsync'd data** -- once an fsync acked, its bytes
  survive any later crash point, and losing them is reported as an
  acked-lost-write violation rather than silently papered over.
"""

import pytest

from repro.faults import FaultPlan, FaultRule, replay_with_faults
from repro.faults.crash import ACKED_LOST_WRITE
from tests.faults.conftest import compiled, rec

KB8 = 8192
FSYNC_IDX = 3
FSYNCED_BYTES = 2 * KB8

#: open, two writes, fsync (acks 16 KB), two more writes, close.
WRITER = [
    rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
    rec(1, "T1", "write", {"fd": 3, "nbytes": KB8}, ret=KB8),
    rec(2, "T1", "write", {"fd": 3, "nbytes": KB8}, ret=KB8),
    rec(3, "T1", "fsync", {"fd": 3}),
    rec(4, "T1", "write", {"fd": 3, "nbytes": KB8}, ret=KB8),
    rec(5, "T1", "write", {"fd": 3, "nbytes": KB8}, ret=KB8),
    rec(6, "T1", "close", {"fd": 3}),
]


def _crash_points(hdd):
    """Every action-completion barrier of a faultless run, plus the
    midpoints between them (crash mid-action)."""
    report = replay_with_faults(compiled(WRITER), hdd).report
    dones = [r.done for r in sorted(report.results, key=lambda r: r.idx)]
    points = [d + 1e-9 for d in dones]
    points += [(a + b) / 2 for a, b in zip(dones, dones[1:]) if b > a]
    return sorted(set(points))


def test_crash_at_every_barrier_honors_durability(hdd):
    bench = compiled(WRITER)
    for t in _crash_points(hdd):
        result = replay_with_faults(bench, hdd, crash_at=t, recover=True)
        assert result.crashed and result.crashed_at == pytest.approx(t)
        done = {r.idx: r for r in result.report.results}
        completed_writes = sum(
            1 for r in done.values() if r.name == "write"
        )
        entry = result.recovered.entry_for("/f")
        size = entry.size if entry is not None else 0
        # Never surface unacked writes.
        assert size <= completed_writes * KB8, (
            "crash@%g surfaced %d bytes from %d completed writes"
            % (t, size, completed_writes)
        )
        # Always surface fsync'd data -- and nothing torn here, so the
        # recovery must be violation-free.
        if FSYNC_IDX in done:
            assert entry is not None
            assert size >= FSYNCED_BYTES, (
                "crash@%g lost fsync'd bytes: %d < %d" % (t, size, FSYNCED_BYTES)
            )
        assert result.violations == [], (
            "crash@%g: %r" % (t, [v.to_dict() for v in result.violations])
        )
        # Recovery replays exactly the remaining suffix.
        assert (
            result.report.n_actions + result.resume_report.n_actions
            == len(bench)
        )


def test_crash_determinism(hdd):
    import json

    bench = compiled(WRITER)
    t = _crash_points(hdd)[4]

    def run():
        return replay_with_faults(bench, hdd, crash_at=t, recover=True)

    a, b = run(), run()
    assert json.dumps(a.summary(), sort_keys=True) == json.dumps(
        b.summary(), sort_keys=True
    )
    assert a.recovered.dumps() == b.recovered.dumps()


def test_torn_fsync_reports_acked_lost_write(hdd):
    """A torn write under an fsync breaks the ack contract: recovery
    must report it, not hide it."""
    bench = compiled(WRITER)
    plan = FaultPlan(
        [FaultRule("torn_write", rate=1.0, op="write", blocks=1)], seed=3
    )
    base = replay_with_faults(compiled(WRITER), hdd)
    fsync_done = next(
        r.done for r in base.report.results if r.idx == FSYNC_IDX
    )
    result = replay_with_faults(
        bench, hdd, plan=plan, crash_at=fsync_done + 1e-9, recover=False
    )
    assert result.fault_counts.get("torn_write", 0) > 0
    kinds = {v.kind for v in result.violations}
    assert ACKED_LOST_WRITE in kinds, [v.to_dict() for v in result.violations]
    # The recovered file is clamped to what actually survived.
    entry = result.recovered.entry_for("/f")
    assert entry is None or entry.size < FSYNCED_BYTES


def test_unlink_rolls_back_when_uncommitted(hdd):
    """A create+unlink whose journal window never committed rolls back
    to the pre-crash namespace."""
    records = [
        rec(0, "T1", "open", {"path": "/g", "flags": "O_RDWR|O_CREAT"}, ret=3),
        rec(1, "T1", "write", {"fd": 3, "nbytes": KB8}, ret=KB8),
        rec(2, "T1", "close", {"fd": 3}),
        rec(3, "T1", "unlink", {"path": "/old"}),
    ]
    bench = compiled(records, [("/old", "reg", KB8)])
    base = replay_with_faults(compiled(records, [("/old", "reg", KB8)]), hdd)
    end = base.report.finished
    result = replay_with_faults(bench, hdd, crash_at=end + 1e-9, recover=True)
    recovered = {e.path for e in result.recovered.entries}
    # Neither the create nor the unlink committed before the crash:
    # /g vanishes, /old survives.
    assert "/g" not in recovered
    assert "/old" in recovered
    assert result.violations == []
