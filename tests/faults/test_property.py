"""Property: an empty fault plan is exactly the identity.

Attaching a fault injector with no rules (any seed) and a durability
tracker must not perturb replay at all: byte-identical JSON summary
and byte-identical final file-system state versus the no-faults
replayer, for every replay mode, on real (Magritte) traces.  This is
the property that makes ``--fault``-less and ``--fault``-ful runs
comparable in the first place.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.artc.replayer import ReplayConfig
from repro.bench.platforms import PLATFORMS
from repro.core.modes import ReplayMode
from repro.faults import FaultPlan, replay_with_faults
from repro.tracing.snapshot import Snapshot
from tests.faults.conftest import MAGRITTE_SAMPLES

#: Baselines (summary json, final-state json) per (sample, mode, seed);
#: hypothesis re-draws combinations, the plain run never changes.
_BASELINES = {}


def _fingerprint(result):
    summary = json.dumps(result.summary(), sort_keys=True)
    state = Snapshot.capture(result.fs, label="final").dumps()
    return summary, state


@given(
    sample=st.sampled_from(MAGRITTE_SAMPLES),
    mode=st.sampled_from(ReplayMode.ALL),
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
    seed=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=12, deadline=None)
def test_empty_plan_is_byte_identical(
    magritte_benchmarks, sample, mode, fault_seed, seed
):
    bench = magritte_benchmarks[sample]
    platform = PLATFORMS["hdd-ext4"]
    key = (sample, mode, seed)
    if key not in _BASELINES:
        plain = replay_with_faults(
            bench, platform, config=ReplayConfig(mode=mode), seed=seed
        )
        _BASELINES[key] = _fingerprint(plain)
    empty = replay_with_faults(
        bench,
        platform,
        config=ReplayConfig(mode=mode),
        plan=FaultPlan(seed=fault_seed),
        seed=seed,
    )
    assert empty.fault_events == []
    base_summary, base_state = _BASELINES[key]
    summary, state = _fingerprint(empty)
    assert summary == base_summary
    assert state == base_state
