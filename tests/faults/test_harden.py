"""The hardened replayer: retry, watchdog, graceful degradation."""

import pytest

from repro.artc.replayer import ReplayConfig, replay
from repro.errors import ReplayAborted
from repro.faults import (
    FaultPlan,
    FaultRule,
    HardenConfig,
    RetryPolicy,
    replay_with_faults,
)
from tests.faults.conftest import compiled, rec

READS = [
    rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
    rec(1, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 0}, ret=65536),
    rec(2, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 65536}, ret=65536),
    rec(3, "T1", "close", {"fd": 3}),
]
SNAP = [("/f", "reg", 131072)]

TRANSIENT_EIO = FaultPlan([FaultRule("eio", at=0.0, count=1, op="read")])


class TestRetry(object):
    def test_backoff_is_capped_exponential(self):
        retry = RetryPolicy(max_attempts=5, base=0.01, cap=0.05)
        assert retry.backoff(0) == 0.01
        assert retry.backoff(1) == 0.02
        assert retry.backoff(2) == 0.04
        assert retry.backoff(3) == 0.05  # capped
        with pytest.raises(ValueError):
            RetryPolicy(base=-1.0)

    def test_classic_replayer_fails_on_transient_eio(self, hdd):
        result = replay_with_faults(
            compiled(READS, SNAP), hdd, plan=TRANSIENT_EIO
        )
        assert result.report.failures == 1
        assert result.report.retries == 0

    def test_retry_recovers_transient_eio(self, hdd):
        from repro.obs import Observability

        obs = Observability()
        config = ReplayConfig(harden=HardenConfig(retry=RetryPolicy()))
        result = replay_with_faults(
            compiled(READS, SNAP), hdd, config=config,
            plan=TRANSIENT_EIO, obs=obs,
        )
        report = result.report
        assert report.failures == 0
        assert report.retries >= 1
        assert report.retries_recovered >= 1
        # The counters surface in the JSON summary and in obs metrics.
        summary = result.summary()
        assert summary["retries"] == report.retries
        assert summary["retries_recovered"] >= 1
        assert obs.metrics.counter("replay.retries").value == report.retries

    def test_retry_gives_up_on_persistent_eio(self, hdd):
        config = ReplayConfig(
            harden=HardenConfig(retry=RetryPolicy(max_attempts=2))
        )
        plan = FaultPlan([FaultRule("eio", rate=1.0, op="read")])
        result = replay_with_faults(
            compiled(READS, SNAP), hdd, config=config, plan=plan
        )
        assert result.report.failures > 0
        assert result.report.retries > 0
        assert result.report.retries_recovered == 0

    def test_retry_costs_simulated_time(self, hdd):
        base = replay_with_faults(
            compiled(READS, SNAP), hdd, plan=TRANSIENT_EIO,
            config=ReplayConfig(
                harden=HardenConfig(retry=RetryPolicy(base=0.001))
            ),
        ).report.elapsed
        slow = replay_with_faults(
            compiled(READS, SNAP), hdd, plan=TRANSIENT_EIO,
            config=ReplayConfig(
                harden=HardenConfig(retry=RetryPolicy(base=0.2))
            ),
        ).report.elapsed
        assert slow > base


class TestWatchdog(object):
    def test_dead_drive_aborts_instead_of_hanging(self, hdd):
        config = ReplayConfig(
            harden=HardenConfig(watchdog_stall=0.5)
        )
        plan = FaultPlan([FaultRule("stall", at=0.0, count=1, op="read")])
        with pytest.raises(ReplayAborted) as info:
            replay_with_faults(
                compiled(READS, SNAP), hdd, config=config, plan=plan
            )
        exc = info.value
        assert "watchdog" in str(exc)
        assert exc.context["pending"] > 0
        assert hasattr(exc, "partial_report")

    def test_dependency_cycle_is_diagnosed(self, hdd):
        from repro.artc.init import initialize

        bench = compiled(READS, SNAP)
        # Wedge the graph: action 0 waits on action 1, which (by thread
        # order) waits on action 0.
        bench.graph.add_edge(1, 0, "test-cycle")
        fs = hdd.make_fs()
        initialize(fs, bench.snapshot)
        config = ReplayConfig(
            harden=HardenConfig(watchdog_stall=0.5), reduced_deps=False
        )
        with pytest.raises(ReplayAborted) as info:
            replay(bench, fs, config)
        exc = info.value
        assert set(exc.members) >= {0, 1}
        assert "cycle" in str(exc)
        assert exc.context["completed"] == 0


class TestDegrade(object):
    def test_poisoned_dependents_are_skipped(self, hdd):
        # T2's read explicitly depends on T1's read; when T1's fails
        # unexpectedly, degradation records-and-skips T2's.
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            rec(1, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 0},
                ret=65536),
            rec(2, "T2", "pread", {"fd": 3, "nbytes": 65536, "offset": 0},
                ret=65536),
            rec(3, "T2", "close", {"fd": 3}),
        ]
        bench = compiled(records, SNAP)
        bench.graph.add_edge(1, 2, "test-dep")
        plan = FaultPlan([FaultRule("eio", rate=1.0, op="read")])
        config = ReplayConfig(
            harden=HardenConfig(degrade=True), reduced_deps=False
        )
        result = replay_with_faults(bench, hdd, config=config, plan=plan)
        report = result.report
        by_idx = {r.idx: r for r in report.results}
        assert not by_idx[1].matched  # the injected failure itself
        assert by_idx[2].skipped  # its dependent was degraded away
        assert report.skipped >= 1
        assert report.summary()["skipped"] == report.skipped
        # Every action still completed (no hang, no cascade).
        assert report.n_actions == len(bench)

    def test_degrade_off_lets_dependents_run(self, hdd):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            rec(1, "T1", "pread", {"fd": 3, "nbytes": 65536, "offset": 0},
                ret=65536),
            rec(2, "T2", "pread", {"fd": 3, "nbytes": 65536, "offset": 0},
                ret=65536),
            rec(3, "T2", "close", {"fd": 3}),
        ]
        bench = compiled(records, SNAP)
        bench.graph.add_edge(1, 2, "test-dep")
        plan = FaultPlan([FaultRule("eio", rate=1.0, op="read")])
        result = replay_with_faults(
            bench, hdd, config=ReplayConfig(reduced_deps=False), plan=plan
        )
        assert result.report.skipped == 0
