"""Shared helpers for the fault-injection / crash-recovery tests."""

import pytest

from repro.artc.compiler import compile_trace
from repro.bench.platforms import PLATFORMS
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None, dur=0.001):
    t = float(idx) / 10
    return TraceRecord(idx, tid, name, args, ret, err, t, t + dur)


def compiled(records, snapshot_entries=(), platform="linux"):
    """Compile a synthetic record list into a benchmark (+ snapshot)."""
    snap = Snapshot()
    for entry in snapshot_entries:
        snap.add(*entry)
    return compile_trace(Trace(records, platform=platform), snap)


@pytest.fixture
def hdd():
    return PLATFORMS["hdd-ext4"]


@pytest.fixture
def raid():
    return PLATFORMS["raid0"]


#: Two small Magritte samples from different app families -- the
#: property suite's representative real traces.
MAGRITTE_SAMPLES = ("itunes_startsmall1", "pages_pdf15")


@pytest.fixture(scope="session")
def magritte_benchmarks():
    from repro.bench.harness import trace_application
    from repro.workloads.magritte import build_suite

    out = {}
    for name in MAGRITTE_SAMPLES:
        app = build_suite([name])[name]
        traced = trace_application(
            app, PLATFORMS["mac-ssd"], warm_cache=True
        )
        out[name] = compile_trace(traced.trace, traced.snapshot)
    return out
