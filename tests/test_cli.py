"""Tests for the artc command-line interface."""

import json
import os

import pytest

from repro.cli import main


def run_cli(*argv):
    return main(list(argv))


@pytest.fixture
def traced(tmp_path):
    trace_path = str(tmp_path / "t.strace")
    assert run_cli(
        "trace", "randreads", "--threads", "2", "-o", trace_path, "--seed", "3"
    ) == 0
    return trace_path, trace_path + ".snapshot.json"


class TestTraceCommand(object):
    def test_writes_trace_and_snapshot(self, traced):
        trace_path, snapshot_path = traced
        assert os.path.exists(trace_path)
        assert os.path.exists(snapshot_path)

    def test_unknown_workload_errors(self, tmp_path):
        assert run_cli("trace", "nonsense", "-o", str(tmp_path / "x")) == 2


class TestCompileReplay(object):
    def test_compile_then_replay(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path
        ) == 0
        assert os.path.exists(bench_path)
        capsys.readouterr()  # drain compile output
        assert run_cli("replay", bench_path, "-p", "ssd", "--json") == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["failures"] == 0
        assert payload["mode"] == "artc"

    def test_replay_modes_and_text_output(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        assert run_cli(
            "replay", bench_path, "-m", "single-threaded", "--categories"
        ) == 0
        out = capsys.readouterr().out
        assert "elapsed:" in out
        assert "failures:      0" in out

    def test_mode_flags_parse(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "b.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path,
            "--mode-flags", "no-file-seq,file-size",
        ) == 0
        from repro.artc.benchmark import CompiledBenchmark

        bench = CompiledBenchmark.load(bench_path)
        assert bench.ruleset.file_size
        assert not bench.ruleset.file_seq

    def test_timeline_and_warnings_output(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        capsys.readouterr()
        assert run_cli(
            "replay", bench_path, "--timeline", "--warnings"
        ) == 0
        out = capsys.readouterr().out
        assert "|" in out  # timeline rows
        assert "T1" in out

    def test_unknown_platform_errors(self, traced, tmp_path):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        assert run_cli("replay", bench_path, "-p", "floppy") == 2


class TestPack(object):
    @pytest.fixture
    def bench_path(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", path)
        capsys.readouterr()
        return path

    def test_pack_then_replay_artcb(self, bench_path, capsys):
        packed = bench_path[: -len(".json")] + ".artcb"
        assert run_cli("pack", bench_path) == 0
        out = capsys.readouterr().out
        assert "packed" in out and packed in out
        assert run_cli("replay", packed, "-p", "ssd", "--json") == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["mode"] == "artc"

    def test_unpack_round_trips(self, bench_path, capsys):
        packed = bench_path[: -len(".json")] + ".artcb"
        back = bench_path[: -len(".json")] + ".back.json"
        assert run_cli("pack", bench_path) == 0
        assert run_cli("pack", packed, "--unpack", "-o", back) == 0
        with open(bench_path) as a, open(back) as b:
            assert json.load(a) == json.load(b)

    def test_replay_core_flag(self, bench_path, capsys):
        assert run_cli(
            "replay", bench_path, "-p", "ssd", "--core", "scoreboard", "--json"
        ) == 0
        sb = capsys.readouterr().out
        assert run_cli(
            "replay", bench_path, "-p", "ssd", "--core", "events", "--json"
        ) == 0
        ev = capsys.readouterr().out
        assert json.loads(sb[sb.index("{"):]) == json.loads(ev[ev.index("{"):])

    def test_replay_jit_core_flag(self, bench_path, capsys):
        assert run_cli(
            "replay", bench_path, "-p", "ssd", "--core", "jit", "--json"
        ) == 0
        jit = capsys.readouterr().out
        assert run_cli(
            "replay", bench_path, "-p", "ssd", "--core", "events", "--json"
        ) == 0
        ev = capsys.readouterr().out
        assert json.loads(jit[jit.index("{"):]) == json.loads(ev[ev.index("{"):])


class TestProfile(object):
    @pytest.fixture
    def bench_path(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", path)
        capsys.readouterr()
        return path

    def test_human_report(self, bench_path, capsys):
        assert run_cli("profile", bench_path) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "inherent parallelism" in out
        assert "replay.actions" in out
        assert "path covers" in out

    def test_json_report(self, bench_path, capsys):
        assert run_cli("profile", bench_path, "--json") == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["critical_path"]["length"] <= (
            payload["summary"]["elapsed"] + 1e-9
        )
        assert payload["metrics"]["replay.actions"]["value"] == (
            payload["summary"]["actions"]
        )

    def test_exports_chrome_trace_and_metrics(self, bench_path, tmp_path):
        metrics_path = str(tmp_path / "metrics.json")
        spans_path = str(tmp_path / "spans.json")
        assert run_cli(
            "profile", bench_path,
            "--metrics-out", metrics_path, "--spans-out", spans_path,
        ) == 0
        with open(metrics_path) as handle:
            metrics = json.load(handle)
        assert metrics["replay.actions"]["type"] == "counter"
        with open(spans_path) as handle:
            trace = json.load(handle)
        assert {e["ph"] for e in trace["traceEvents"]} >= {"M", "X"}

    def test_modes_accepted(self, bench_path, capsys):
        assert run_cli("profile", bench_path, "-m", "single-threaded") == 0
        out = capsys.readouterr().out
        assert "single-threaded" in out

    def test_unknown_platform_errors(self, bench_path):
        assert run_cli("profile", bench_path, "-p", "floppy") == 2


class TestReplayObservability(object):
    def test_replay_export_flags(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        metrics_path = str(tmp_path / "m.json")
        spans_path = str(tmp_path / "s.jsonl")
        assert run_cli(
            "replay", bench_path,
            "--metrics-out", metrics_path, "--spans-out", spans_path,
        ) == 0
        with open(metrics_path) as handle:
            assert "replay.actions" in json.load(handle)
        with open(spans_path) as handle:
            entries = [json.loads(line) for line in handle]
        assert any(entry["cat"] == "syscall" for entry in entries)


class TestStats(object):
    def test_stats_on_benchmark_reports_reduction(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        capsys.readouterr()
        assert run_cli("stats", bench_path) == 0
        out = capsys.readouterr().out
        assert "materialized" in out
        assert "waited on at replay" in out
        assert "compile time:" in out
        assert "critical path:" in out  # trace-weighted chain prediction
        assert "trace weights" in out

    def test_compile_no_reduce_skips_pass(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path,
            "--no-reduce",
        ) == 0
        out = capsys.readouterr().out
        assert "after reduction" not in out
        with open(bench_path) as handle:
            payload = json.load(handle)
        assert payload.get("reduced_preds") is None


class TestExecutionPlanIR(object):
    @pytest.fixture
    def bench_path(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", path)
        capsys.readouterr()
        return path

    def test_compile_dump_ir(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path,
            "--dump-ir",
        ) == 0
        out = capsys.readouterr().out
        assert "execution-plan IR" in out
        assert "kinds:" in out
        # --dump-ir is the verbose per-action listing.
        assert "#0" in out

    def test_stats_ir_summary(self, bench_path, capsys):
        assert run_cli("stats", bench_path, "--ir") == 0
        out = capsys.readouterr().out
        assert "execution-plan IR" in out
        assert "kinds:" in out

    def test_stats_ir_on_artifact(self, bench_path, capsys):
        packed = bench_path[: -len(".json")] + ".artcb"
        assert run_cli("pack", bench_path) == 0
        capsys.readouterr()
        assert run_cli("stats", packed, "--ir") == 0
        out = capsys.readouterr().out
        assert "execution-plan IR" in out

    def test_stats_ir_rejects_raw_trace(self, traced, capsys):
        trace_path, _snapshot_path = traced
        assert run_cli("stats", trace_path, "--ir") == 1
        err = capsys.readouterr().err
        assert "compiled benchmark" in err


class TestConvert(object):
    def test_strace_to_json_and_back(self, traced, tmp_path):
        trace_path, _snap = traced
        json_path = str(tmp_path / "t.jsonl")
        assert run_cli("convert", trace_path, json_path) == 0
        back_path = str(tmp_path / "t2.strace")
        assert run_cli("convert", json_path, back_path) == 0
        from repro.tracing import strace

        original = strace.load(trace_path)
        round_tripped = strace.load(back_path)
        assert len(original) == len(round_tripped)


class TestMagritte(object):
    def test_list_names(self, capsys):
        assert run_cli("magritte", "--list") == 0
        out = capsys.readouterr().out.split()
        assert len(out) == 34
        assert "iphoto_start400" in out

    def test_generate_one_trace(self, tmp_path, capsys):
        out_path = str(tmp_path / "itunes.strace")
        assert run_cli(
            "magritte", "--app", "itunes_startsmall1", "-o", out_path
        ) == 0
        assert os.path.exists(out_path)
        assert os.path.exists(out_path + ".snapshot.json")

    def test_requires_app_or_list(self):
        assert run_cli("magritte") == 2


class TestShardCLI(object):
    @pytest.fixture
    def bench_path(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", path)
        capsys.readouterr()
        return path

    def test_replay_jobs_matches_single_process_digest(self, bench_path,
                                                       capsys):
        assert run_cli(
            "replay", bench_path, "-p", "ssd", "--jobs", "2",
            "--state-digest", "--json",
        ) == 0
        sharded = capsys.readouterr().out
        assert run_cli(
            "replay", bench_path, "-p", "ssd", "--core", "events",
            "--state-digest", "--json",
        ) == 0
        events = capsys.readouterr().out
        sharded = json.loads(sharded[sharded.index("{"):])
        events = json.loads(events[events.index("{"):])
        assert sharded["state_digest"] == events["state_digest"]
        assert sharded["failures"] == events["failures"] == 0

    def test_jobs_requires_shard_core(self, bench_path, capsys):
        assert run_cli(
            "replay", bench_path, "--core", "jit", "--jobs", "2"
        ) == 2
        assert "--core shard" in capsys.readouterr().err

    def test_jobs_refuses_fault_injection(self, bench_path, capsys):
        assert run_cli(
            "replay", bench_path, "--jobs", "2", "--fault", "eio@0.5"
        ) == 2
        err = capsys.readouterr().err
        assert "fault" in err and "--jobs 1" in err

    def test_jobs_refuses_crash_at(self, bench_path, capsys):
        assert run_cli(
            "replay", bench_path, "--jobs", "2", "--crash-at", "0.5"
        ) == 2
        assert "process-global" in capsys.readouterr().err

    def test_follow_refuses_jobs(self, traced, capsys):
        trace_path, _snap = traced
        assert run_cli(
            "replay", trace_path, "--follow", "--jobs", "2"
        ) == 2
        assert "single-process" in capsys.readouterr().err

    def test_follow_refuses_shard_core(self, traced, capsys):
        trace_path, _snap = traced
        assert run_cli(
            "replay", trace_path, "--follow", "--core", "shard"
        ) == 2
        assert "--follow" in capsys.readouterr().err

    def test_stats_jobs_prints_partition(self, bench_path, capsys):
        assert run_cli("stats", bench_path, "--jobs", "4") == 0
        out = capsys.readouterr().out
        assert "shard plan:" in out
        assert "cross edges:" in out
        assert "shard loads:" in out

    def test_verify_jobs_certifies_plan(self, bench_path, capsys):
        assert run_cli("verify", bench_path, "--jobs", "2") == 0
        out = capsys.readouterr().out
        assert "shardplan:jobs=2" in out
