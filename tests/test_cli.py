"""Tests for the artc command-line interface."""

import json
import os

import pytest

from repro.cli import main


def run_cli(*argv):
    return main(list(argv))


@pytest.fixture
def traced(tmp_path):
    trace_path = str(tmp_path / "t.strace")
    assert run_cli(
        "trace", "randreads", "--threads", "2", "-o", trace_path, "--seed", "3"
    ) == 0
    return trace_path, trace_path + ".snapshot.json"


class TestTraceCommand(object):
    def test_writes_trace_and_snapshot(self, traced):
        trace_path, snapshot_path = traced
        assert os.path.exists(trace_path)
        assert os.path.exists(snapshot_path)

    def test_unknown_workload_errors(self, tmp_path):
        assert run_cli("trace", "nonsense", "-o", str(tmp_path / "x")) == 2


class TestCompileReplay(object):
    def test_compile_then_replay(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path
        ) == 0
        assert os.path.exists(bench_path)
        capsys.readouterr()  # drain compile output
        assert run_cli("replay", bench_path, "-p", "ssd", "--json") == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["failures"] == 0
        assert payload["mode"] == "artc"

    def test_replay_modes_and_text_output(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        assert run_cli(
            "replay", bench_path, "-m", "single-threaded", "--categories"
        ) == 0
        out = capsys.readouterr().out
        assert "elapsed:" in out
        assert "failures:      0" in out

    def test_mode_flags_parse(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "b.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path,
            "--mode-flags", "no-file-seq,file-size",
        ) == 0
        from repro.artc.benchmark import CompiledBenchmark

        bench = CompiledBenchmark.load(bench_path)
        assert bench.ruleset.file_size
        assert not bench.ruleset.file_seq

    def test_timeline_and_warnings_output(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        capsys.readouterr()
        assert run_cli(
            "replay", bench_path, "--timeline", "--warnings"
        ) == 0
        out = capsys.readouterr().out
        assert "|" in out  # timeline rows
        assert "T1" in out

    def test_unknown_platform_errors(self, traced, tmp_path):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        assert run_cli("replay", bench_path, "-p", "floppy") == 2


class TestStats(object):
    def test_stats_on_benchmark_reports_reduction(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        run_cli("compile", trace_path, "-s", snapshot_path, "-o", bench_path)
        capsys.readouterr()
        assert run_cli("stats", bench_path) == 0
        out = capsys.readouterr().out
        assert "materialized" in out
        assert "waited on at replay" in out
        assert "compile time:" in out

    def test_compile_no_reduce_skips_pass(self, traced, tmp_path, capsys):
        trace_path, snapshot_path = traced
        bench_path = str(tmp_path / "bench.json")
        assert run_cli(
            "compile", trace_path, "-s", snapshot_path, "-o", bench_path,
            "--no-reduce",
        ) == 0
        out = capsys.readouterr().out
        assert "after reduction" not in out
        with open(bench_path) as handle:
            payload = json.load(handle)
        assert payload.get("reduced_preds") is None


class TestConvert(object):
    def test_strace_to_json_and_back(self, traced, tmp_path):
        trace_path, _snap = traced
        json_path = str(tmp_path / "t.jsonl")
        assert run_cli("convert", trace_path, json_path) == 0
        back_path = str(tmp_path / "t2.strace")
        assert run_cli("convert", json_path, back_path) == 0
        from repro.tracing import strace

        original = strace.load(trace_path)
        round_tripped = strace.load(back_path)
        assert len(original) == len(round_tripped)


class TestMagritte(object):
    def test_list_names(self, capsys):
        assert run_cli("magritte", "--list") == 0
        out = capsys.readouterr().out.split()
        assert len(out) == 34
        assert "iphoto_start400" in out

    def test_generate_one_trace(self, tmp_path, capsys):
        out_path = str(tmp_path / "itunes.strace")
        assert run_cli(
            "magritte", "--app", "itunes_startsmall1", "-o", out_path
        ) == 0
        assert os.path.exists(out_path)
        assert os.path.exists(out_path + ".snapshot.json")

    def test_requires_app_or_list(self):
        assert run_cli("magritte") == 2
