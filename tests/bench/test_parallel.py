"""Tests for the parallel experiment harness (repro.bench.parallel)."""

import json
import os

from repro.bench.parallel import (
    Cell,
    atomic_write_text,
    cell_key,
    derive_seed,
    run_cells,
    summarize,
)


def square(x):
    return x * x


def seeded(seed, base=0):
    return {"seed": seed, "value": base + seed}


def boom():
    raise RuntimeError("cell exploded")


class TestCellKey(object):
    def test_stable_across_calls(self):
        assert cell_key(square, {"x": 3}) == cell_key(square, {"x": 3})

    def test_argument_order_irrelevant(self):
        a = cell_key(seeded, {"seed": 1, "base": 2})
        b = cell_key(seeded, {"base": 2, "seed": 1})
        assert a == b

    def test_distinct_args_distinct_keys(self):
        assert cell_key(square, {"x": 3}) != cell_key(square, {"x": 4})

    def test_distinct_functions_distinct_keys(self):
        assert cell_key(square, {}) != cell_key(boom, {})

    def test_format_version_salts_the_key(self, monkeypatch):
        # A bumped BENCH_FORMAT_VERSION must invalidate every cached
        # cell: stale results from older trace/compile/replay
        # semantics can never be served to newer code.
        from repro.bench import parallel

        before = cell_key(square, {"x": 3})
        monkeypatch.setattr(
            parallel, "BENCH_FORMAT_VERSION", parallel.BENCH_FORMAT_VERSION + 1
        )
        assert cell_key(square, {"x": 3}) != before


class TestAutoSeed(object):
    def test_deterministic(self):
        a = Cell(seeded, {"base": 10}, auto_seed=True)
        b = Cell(seeded, {"base": 10}, auto_seed=True)
        assert a.kwargs["seed"] == b.kwargs["seed"]

    def test_distinct_cells_get_distinct_seeds(self):
        a = Cell(seeded, {"base": 10}, auto_seed=True)
        b = Cell(seeded, {"base": 11}, auto_seed=True)
        assert a.kwargs["seed"] != b.kwargs["seed"]

    def test_explicit_seed_wins(self):
        cell = Cell(seeded, {"base": 1, "seed": 42}, auto_seed=True)
        assert cell.kwargs["seed"] == 42

    def test_seed_fits_31_bits(self):
        assert 0 <= derive_seed("ffffffff" + "0" * 56) < 2 ** 31


class TestRunCells(object):
    def test_serial_submission_order(self):
        cells = [Cell(square, {"x": i}) for i in range(5)]
        results = run_cells(cells, workers=1)
        assert [r.value for r in results] == [0, 1, 4, 9, 16]
        assert [r.index for r in results] == list(range(5))
        assert not any(r.cached for r in results)

    def test_parallel_submission_order(self):
        cells = [Cell(square, {"x": i}) for i in range(6)]
        results = run_cells(cells, workers=2)
        assert [r.value for r in results] == [0, 1, 4, 9, 16, 25]

    def test_progress_callback_sees_every_result(self):
        seen = []
        cells = [Cell(square, {"x": i}) for i in range(3)]
        run_cells(cells, workers=1, progress=seen.append)
        assert sorted(r.value for r in seen) == [0, 1, 4]

    def test_cache_roundtrip(self, tmp_path):
        cache = str(tmp_path / "cache")
        cells = [Cell(square, {"x": i}) for i in range(3)]
        first = run_cells(cells, workers=1, cache_dir=cache)
        assert not any(r.cached for r in first)
        second = run_cells(
            [Cell(square, {"x": i}) for i in range(3)],
            workers=1,
            cache_dir=cache,
        )
        assert all(r.cached for r in second)
        assert [r.value for r in second] == [0, 1, 4]

    def test_cache_disabled_per_cell(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_cells([Cell(square, {"x": 2}, cache=False)], workers=1,
                  cache_dir=cache)
        results = run_cells([Cell(square, {"x": 2}, cache=False)], workers=1,
                            cache_dir=cache)
        assert not results[0].cached

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        cell = Cell(square, {"x": 5})
        (cache / (cell.key + ".json")).write_text("{not json")
        results = run_cells([cell], workers=1, cache_dir=str(cache))
        assert results[0].value == 25
        assert not results[0].cached
        # And the recompute repaired the entry.
        entry = json.loads((cache / (cell.key + ".json")).read_text())
        assert entry["value"] == 25
        assert entry["key"] == cell.key


class TestCacheAccounting(object):
    def entry(self, cache, cell):
        with open(os.path.join(cache, cell.key + ".json")) as handle:
            return json.load(handle)

    def test_fresh_entry_has_zero_hits_and_a_wall_time(self, tmp_path):
        cache = str(tmp_path / "cache")
        cell = Cell(square, {"x": 3})
        run_cells([cell], workers=1, cache_dir=cache)
        entry = self.entry(cache, cell)
        assert entry["hits"] == 0
        assert entry["seconds"] >= 0.0

    def test_each_cached_load_counts_a_hit(self, tmp_path):
        cache = str(tmp_path / "cache")
        cell = Cell(square, {"x": 3})
        run_cells([cell], workers=1, cache_dir=cache)
        for expected in (1, 2, 3):
            run_cells([Cell(square, {"x": 3})], workers=1, cache_dir=cache)
            assert self.entry(cache, cell)["hits"] == expected

    def test_cached_result_reports_original_wall_time(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_cells([Cell(square, {"x": 3})], workers=1, cache_dir=cache)
        cell = Cell(square, {"x": 3})
        recorded = self.entry(cache, cell)["seconds"]
        results = run_cells([cell], workers=1, cache_dir=cache)
        assert results[0].cached
        assert results[0].seconds == recorded

    def test_summarize_splits_cached_from_computed(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_cells([Cell(square, {"x": 1})], workers=1, cache_dir=cache)
        results = run_cells(
            [Cell(square, {"x": 1}), Cell(square, {"x": 2})],
            workers=1, cache_dir=cache,
        )
        stats = summarize(results)
        assert stats["cells"] == 2
        assert stats["cached"] == 1
        assert stats["computed"] == 1
        assert stats["compute_seconds"] >= 0.0
        assert stats["saved_seconds"] >= 0.0

    def test_summarize_empty(self):
        assert summarize([]) == {
            "cells": 0, "cached": 0, "computed": 0,
            "compute_seconds": 0.0, "saved_seconds": 0.0,
        }


class TestAtomicWrite(object):
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out" / "result.txt"
        atomic_write_text(str(target), "hello\n")
        assert target.read_text() == "hello\n"

    def test_overwrites_whole_file(self, tmp_path):
        target = tmp_path / "result.txt"
        atomic_write_text(str(target), "long old content\n")
        atomic_write_text(str(target), "new\n")
        assert target.read_text() == "new\n"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "result.txt"
        atomic_write_text(str(target), "x")
        assert os.listdir(str(tmp_path)) == ["result.txt"]
