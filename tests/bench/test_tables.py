"""Tests for benchmark table/series formatting."""

import pytest

from repro.bench.tables import cdf, format_series, format_table, percent, percentile


class TestFormatTable(object):
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert all(len(line) >= 6 for line in lines[2:])
        # Columns align: 'value' header position matches cell positions.
        header_col = lines[1].index("value")
        assert lines[3][header_col - 2] in " r"  # padded

    def test_handles_numbers_and_strings(self):
        text = format_table(["a"], [[1.5], ["x"]])
        assert "1.5" in text and "x" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSeriesAndStats(object):
    def test_format_series(self):
        text = format_series("title", [("x1", 0.5), ("x2", 1.25)], "%.2f")
        assert "0.50" in text and "1.25" in text

    def test_percent(self):
        assert percent(0.123) == "+12.3%"
        assert percent(-0.05) == "-5.0%"

    def test_cdf_monotone(self):
        points = cdf([3.0, 1.0, 2.0])
        values = [v for v, _f in points]
        fractions = [f for _v, f in points]
        assert values == sorted(values)
        assert fractions == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_percentile(self):
        values = list(range(100))
        assert percentile(values, 0.5) == 50
        assert percentile(values, 0.0) == 0
        assert percentile([], 0.5) == 0.0
