"""Tests for the experiment harness."""

import pytest

from repro.bench import PLATFORMS
from repro.bench.harness import (
    ground_truth_run,
    replay_benchmark,
    replay_matrix,
    trace_application,
)
from repro.core.modes import ReplayMode
from repro.workloads import ParallelRandomReaders


@pytest.fixture(scope="module")
def app():
    return ParallelRandomReaders(nthreads=2, reads_per_thread=60, file_bytes=8 << 20)


class TestTraceApplication(object):
    def test_produces_trace_snapshot_elapsed(self, app):
        result = trace_application(app, PLATFORMS["hdd-ext4"])
        assert len(result.trace) == 124
        assert result.elapsed > 0
        assert "/data/reader1" in result.trace.records[0].args.get("path", "") or True
        assert result.snapshot.entry_for("/data/reader1").size == 8 << 20

    def test_trace_platform_follows_source(self, app):
        result = trace_application(app, PLATFORMS["mac-hdd"])
        assert result.trace.platform == "darwin"


class TestGroundTruth(object):
    def test_matches_traced_run_time(self, app):
        traced = trace_application(app, PLATFORMS["hdd-ext4"], seed=4)
        truth = ground_truth_run(app, PLATFORMS["hdd-ext4"], seed=4)
        assert truth == pytest.approx(traced.elapsed)  # passive tracing


class TestReplayMatrix(object):
    def test_matrix_shape(self, app):
        res = replay_matrix(
            app,
            PLATFORMS["hdd-ext4"],
            PLATFORMS["ssd"],
            modes=(ReplayMode.SINGLE, ReplayMode.ARTC),
        )
        assert res["source"] == "hdd-ext4"
        assert res["target"] == "ssd"
        assert res["original"] > 0
        assert set(res["modes"]) == {ReplayMode.SINGLE, ReplayMode.ARTC}
        for row in res["modes"].values():
            assert row["elapsed"] > 0
            assert row["error"] >= 0
            assert row["failures"] == 0

    def test_signed_error_sign_convention(self, app):
        res = replay_matrix(
            app, PLATFORMS["hdd-ext4"], PLATFORMS["hdd-ext4"],
            modes=(ReplayMode.ARTC,),
        )
        row = res["modes"][ReplayMode.ARTC]
        assert row["error"] == pytest.approx(abs(row["signed_error"]))


class TestReplayBenchmark(object):
    def test_replay_on_initialized_target(self, app):
        from repro.artc.compiler import compile_trace

        traced = trace_application(app, PLATFORMS["hdd-ext4"])
        bench = compile_trace(traced.trace, traced.snapshot)
        report = replay_benchmark(bench, PLATFORMS["ssd"], ReplayMode.ARTC)
        assert report.failures == 0
        assert report.n_actions == len(traced.trace)
