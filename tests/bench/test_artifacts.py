"""Tests for the content-addressed compiled-benchmark artifact cache."""

import os

import pytest

from repro.artc import artifact
from repro.bench import PLATFORMS
from repro.bench.artifacts import (
    ArtifactCache,
    artifact_key,
    describe_platform,
    resolve,
)
from repro.bench.harness import replay_matrix
from repro.core.modes import ReplayMode, RuleSet
from repro.workloads import ParallelRandomReaders


@pytest.fixture
def app():
    return ParallelRandomReaders(nthreads=2, reads_per_thread=40, file_bytes=4 << 20)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(root=str(tmp_path / "artifacts"))


SOURCE = PLATFORMS["hdd-ext4"]


def _bump_many(root, key, count):
    """Child-process body for the concurrency test (module-level so it
    survives both fork and spawn start methods)."""
    bumper = ArtifactCache(root=root)
    for _ in range(count):
        bumper.record_hit(key)


class TestArtifactKey(object):
    def test_deterministic(self, app):
        assert artifact_key(app, SOURCE, 3) == artifact_key(app, SOURCE, 3)

    def test_inputs_are_identifying(self, app):
        base = artifact_key(app, SOURCE, 0)
        assert artifact_key(app, SOURCE, 1) != base
        assert artifact_key(app, PLATFORMS["ssd"], 0) != base
        assert artifact_key(app, SOURCE, 0, warm_cache=True) != base
        assert (
            artifact_key(app, SOURCE, 0, ruleset=RuleSet.unconstrained()) != base
        )

    def test_default_ruleset_is_artc(self, app):
        assert artifact_key(app, SOURCE, 0) == artifact_key(
            app, SOURCE, 0, ruleset=RuleSet.artc_default()
        )

    def test_platform_variants_distinct_despite_shared_name(self, app):
        variant = SOURCE.variant(cache_bytes=SOURCE.cache_bytes // 2)
        assert variant.name == SOURCE.name
        assert describe_platform(variant) != describe_platform(SOURCE)
        assert artifact_key(app, variant, 0) != artifact_key(app, SOURCE, 0)


class TestArtifactCache(object):
    def test_miss_build_hit(self, app, cache):
        bench, info = cache.get_or_build(app, SOURCE, 0)
        assert info["cached"] is False
        again, info2 = cache.get_or_build(app, SOURCE, 0)
        assert info2["cached"] is True
        assert info2["key"] == info["key"]
        assert again.dumps() == bench.dumps()
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_build_stashes_trace_provenance(self, app, cache):
        bench, _ = cache.get_or_build(app, SOURCE, 0)
        assert bench.stats["source_elapsed"] > 0
        assert bench.stats["trace_events"] == len(bench)

    def test_corrupt_artifact_is_a_miss_then_repaired(self, app, cache):
        _, info = cache.get_or_build(app, SOURCE, 0)
        with open(info["path"], "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.seek(handle.tell() - 1)
            handle.write(b"\x00")
        bench, info2 = cache.get_or_build(app, SOURCE, 0)
        assert info2["cached"] is False  # rebuilt, overwriting the bad file
        assert artifact.load(info2["path"]).dumps() == bench.dumps()

    def test_sidecar_counts_hits_durably(self, app, cache):
        _, info = cache.get_or_build(app, SOURCE, 0)
        cache.get_or_build(app, SOURCE, 0)
        other = ArtifactCache(root=cache.root)  # fresh process, same disk
        other.get_or_build(app, SOURCE, 0)
        assert cache.durable_hits(info["key"]) == 2
        assert other.durable_hits(info["key"]) == 2

    def test_rebuild_resets_hit_journal(self, app, cache):
        _, info = cache.get_or_build(app, SOURCE, 0)
        cache.get_or_build(app, SOURCE, 0)
        assert cache.durable_hits(info["key"]) == 1
        # A corrupt artifact forces a rebuild; the old journal counted
        # reuses of an artifact that no longer exists.
        with open(info["path"], "wb") as handle:
            handle.write(b"garbage")
        cache.get_or_build(app, SOURCE, 0)
        assert cache.durable_hits(info["key"]) == 0

    def test_legacy_sidecar_hits_still_counted(self, app, cache):
        import json

        _, info = cache.get_or_build(app, SOURCE, 0)
        sidecar = os.path.join(cache.root, info["key"] + ".json")
        with open(sidecar) as handle:
            entry = json.load(handle)
        entry["hits"] = 5  # a sidecar written by the pre-journal code
        with open(sidecar, "w") as handle:
            json.dump(entry, handle)
        cache.get_or_build(app, SOURCE, 0)
        assert cache.durable_hits(info["key"]) == 6

    def test_concurrent_hits_lose_nothing(self, cache, tmp_path):
        """The read-modify-write race the serve worker pool would hit:
        N processes bumping the same key concurrently must lose zero
        hits (the old atomic_write_text sidecar bump lost them)."""
        import multiprocessing

        os.makedirs(cache.root, exist_ok=True)
        key = "f" * 64
        procs = [
            multiprocessing.Process(
                target=_bump_many, args=(cache.root, key, 50)
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        assert cache.durable_hits(key) == 200


class TestResolve(object):
    def test_explicit_cache_passes_through(self, cache):
        assert resolve(cache) is cache

    def test_false_disables(self):
        assert resolve(False) is None

    def test_none_without_env_disables(self, monkeypatch):
        monkeypatch.delenv("ARTC_ARTIFACT_DIR", raising=False)
        assert resolve(None) is None

    def test_none_with_env_opts_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("ARTC_ARTIFACT_DIR", str(tmp_path / "art"))
        resolved = resolve(None)
        assert isinstance(resolved, ArtifactCache)
        assert resolved.root == str(tmp_path / "art")
        assert resolve(True) is resolved  # same process-wide default


class TestReplayMatrixWiring(object):
    def test_hit_serves_identical_results(self, app, cache):
        kwargs = dict(
            modes=(ReplayMode.ARTC, ReplayMode.SINGLE),
            artifact_cache=cache,
        )
        cold = replay_matrix(app, SOURCE, PLATFORMS["ssd"], **kwargs)
        warm = replay_matrix(app, SOURCE, PLATFORMS["ssd"], **kwargs)
        assert cold["artifact"]["cached"] is False
        assert warm["artifact"]["cached"] is True
        assert warm["source_elapsed"] == cold["source_elapsed"]
        assert warm["trace_events"] == cold["trace_events"]
        for mode in kwargs["modes"]:
            assert warm["modes"][mode]["elapsed"] == cold["modes"][mode]["elapsed"]

    def test_cells_share_one_compile_across_targets(self, app, cache):
        replay_matrix(app, SOURCE, PLATFORMS["ssd"],
                      modes=(ReplayMode.ARTC,), artifact_cache=cache)
        replay_matrix(app, SOURCE, PLATFORMS["raid0"],
                      modes=(ReplayMode.ARTC,), artifact_cache=cache)
        replay_matrix(app, SOURCE, PLATFORMS["hdd-xfs"],
                      modes=(ReplayMode.ARTC,), artifact_cache=cache)
        assert cache.stats() == {"hits": 2, "misses": 1, "stores": 1}

    def test_disabled_by_default_without_env(self, app, monkeypatch):
        monkeypatch.delenv("ARTC_ARTIFACT_DIR", raising=False)
        result = replay_matrix(app, SOURCE, PLATFORMS["ssd"],
                               modes=(ReplayMode.ARTC,))
        assert "artifact" not in result
