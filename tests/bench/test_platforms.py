"""Tests for platform configurations."""

from repro.bench.platforms import PLATFORMS


class TestPlatforms(object):
    def test_macro_matrix_platforms_exist(self):
        for name in ("hdd-ext4", "hdd-ext3", "hdd-xfs", "hdd-jfs",
                     "raid0", "smallcache", "ssd"):
            assert name in PLATFORMS

    def test_make_fs_produces_working_system(self):
        fs = PLATFORMS["hdd-ext4"].make_fs(seed=3)
        fs.create_file_now("/x", size=100)
        assert fs.exists("/x")
        assert fs.stack.profile.name == "ext4"

    def test_seed_controls_engine_rng(self):
        a = PLATFORMS["ssd"].make_fs(seed=1).engine.rng.random()
        b = PLATFORMS["ssd"].make_fs(seed=1).engine.rng.random()
        c = PLATFORMS["ssd"].make_fs(seed=2).engine.rng.random()
        assert a == b != c

    def test_os_flavors(self):
        assert PLATFORMS["mac-hdd"].make_fs().platform == "darwin"
        assert PLATFORMS["hdd-ext4"].make_fs().platform == "linux"

    def test_raid_platform_has_two_spindles(self):
        fs = PLATFORMS["raid0"].make_fs()
        assert fs.stack.device.nspindles == 2

    def test_variant_overrides_selected_fields(self):
        base = PLATFORMS["hdd-ext4"]
        tuned = base.variant("tuned", scheduler_kwargs={"slice_sync": 0.042})
        assert tuned.name == "tuned"
        assert tuned.scheduler_kwargs == {"slice_sync": 0.042}
        assert tuned.fs_profile == base.fs_profile
        assert base.scheduler_kwargs == {}  # original untouched

    def test_variant_cache_override(self):
        small = PLATFORMS["hdd-ext4"].variant(cache_bytes=1 << 20)
        assert small.make_fs().stack.cache.capacity_pages == (1 << 20) // 4096
