"""Cross-platform replay matrix: Darwin/Linux traces on all four
target OS families (paper: "supporting replay on Linux, Mac OS X,
FreeBSD, and Illumos")."""

import pytest

pytestmark = pytest.mark.tier2  # slow integration tier

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.core.modes import ReplayMode
from repro.syscalls.emulation import EmulationOptions
from repro.workloads.base import Application, must

TARGETS = ["hdd-ext4", "mac-hdd", "freebsd-hdd", "illumos-hdd"]


class DarwinDesktopApp(Application):
    """Exercises every emulation group: attribute lists, xattr
    spellings, hints, fsync semantics, exchangedata, /dev/random."""

    name = "darwin-desktop"
    roots = ("/data",)

    def setup(self, fs):
        fs.makedirs_now("/data")
        node = fs.create_file_now("/data/doc", size=64 << 10)
        node.xattrs["com.apple.FinderInfo"] = 32

    def main(self, osapi):
        def body(tid=1):
            yield from osapi.call(tid, "getattrlist", path="/data/doc")
            yield from osapi.call(tid, "stat_extended", path="/data/doc")
            yield from osapi.call(tid, "listxattr", path="/data/doc")
            yield from osapi.call(
                tid, "getxattr", path="/data/doc", xname="com.apple.nope"
            )
            fd = must((yield from osapi.call(
                tid, "open_nocancel", path="/data/doc", flags="O_RDWR")))
            yield from osapi.call(tid, "fcntl", fd=fd, cmd="F_RDADVISE",
                                  offset=0, arg=32768)
            yield from osapi.call(tid, "fcntl", fd=fd, cmd="F_NOCACHE", arg=1)
            yield from osapi.call(tid, "fcntl", fd=fd, cmd="F_PREALLOCATE",
                                  arg=128 << 10)
            yield from osapi.call(tid, "read_nocancel", fd=fd, nbytes=32768)
            yield from osapi.call(tid, "write_nocancel", fd=fd, nbytes=4096)
            yield from osapi.call(tid, "fsync_nocancel", fd=fd)
            yield from osapi.call(tid, "fcntl", fd=fd, cmd="F_FULLFSYNC")
            yield from osapi.call(tid, "fgetattrlist", fd=fd)
            yield from osapi.call(tid, "close_nocancel", fd=fd)
            # Atomic swap + directory attrs.
            fd2 = must((yield from osapi.call(
                tid, "open", path="/data/new", flags="O_WRONLY|O_CREAT")))
            yield from osapi.call(tid, "write", fd=fd2, nbytes=8192)
            yield from osapi.call(tid, "close", fd=fd2)
            yield from osapi.call(tid, "exchangedata",
                                  path1="/data/doc", path2="/data/new")
            yield from osapi.call(tid, "unlink", path="/data/new")
            dfd = must((yield from osapi.call(
                tid, "open", path="/data", flags="O_RDONLY|O_DIRECTORY")))
            yield from osapi.call(tid, "getdirentriesattr", fd=dfd)
            yield from osapi.call(tid, "close", fd=dfd)
            # Entropy: non-blocking on Darwin, symlinked on Linux init.
            rfd = must((yield from osapi.call(
                tid, "open", path="/dev/random", flags="O_RDONLY")))
            yield from osapi.call(tid, "read", fd=rfd, nbytes=16)
            yield from osapi.call(tid, "close", fd=rfd)

        return (yield from self.spawn_threads(osapi, [body()]))


@pytest.fixture(scope="module")
def darwin_benchmark():
    app = DarwinDesktopApp()
    traced = trace_application(app, PLATFORMS["mac-hdd"])
    return compile_trace(traced.trace, traced.snapshot)


class TestDarwinTraceOnEveryTarget(object):
    @pytest.mark.parametrize("target", TARGETS)
    def test_replays_without_failures(self, darwin_benchmark, target):
        report = replay_benchmark(
            darwin_benchmark, PLATFORMS[target], ReplayMode.ARTC, seed=510
        )
        assert report.failures == 0, (target, report.failures_by_errno())

    @pytest.mark.parametrize("target", TARGETS)
    def test_flush_mode_no_slower_than_durable(self, darwin_benchmark, target):
        durable = replay_benchmark(
            darwin_benchmark, PLATFORMS[target], ReplayMode.ARTC, seed=511,
            emulation=EmulationOptions(fsync_mode="durable"),
        )
        flush = replay_benchmark(
            darwin_benchmark, PLATFORMS[target], ReplayMode.ARTC, seed=511,
            emulation=EmulationOptions(fsync_mode="flush"),
        )
        assert flush.elapsed <= durable.elapsed * 1.05

    def test_dev_random_stall_avoided_by_init_symlink(self, darwin_benchmark):
        # Linux target: ARTC's init symlinks /dev/random -> urandom, so
        # the 16-byte read doesn't stall for seconds.
        report = replay_benchmark(
            darwin_benchmark, PLATFORMS["hdd-ext4"], ReplayMode.ARTC, seed=512
        )
        assert report.elapsed < 1.0


class TestLinuxTraceOnDarwin(object):
    def test_linux_fsync_emulated_durably(self):
        class LinuxWriter(Application):
            name = "linux-writer"
            roots = ("/data",)

            def setup(self, fs):
                fs.makedirs_now("/data")

            def main(self, osapi):
                def body(tid=1):
                    fd = must((yield from osapi.call(
                        tid, "open", path="/data/out",
                        flags="O_WRONLY|O_CREAT")))
                    for _ in range(10):
                        yield from osapi.call(tid, "write", fd=fd, nbytes=4096)
                        yield from osapi.call(tid, "fsync", fd=fd)
                    yield from osapi.call(tid, "close", fd=fd)

                return (yield from self.spawn_threads(osapi, [body()]))

        traced = trace_application(LinuxWriter(), PLATFORMS["hdd-ext4"])
        bench = compile_trace(traced.trace, traced.snapshot)
        durable = replay_benchmark(
            bench, PLATFORMS["mac-hdd"], ReplayMode.ARTC, seed=513,
            emulation=EmulationOptions(fsync_mode="durable"),
        )
        flush = replay_benchmark(
            bench, PLATFORMS["mac-hdd"], ReplayMode.ARTC, seed=513,
            emulation=EmulationOptions(fsync_mode="flush"),
        )
        assert durable.failures == flush.failures == 0
        # Durable mode issues F_FULLFSYNC on Darwin: strictly costlier
        # than the volatile-cache flush semantics.
        assert durable.elapsed > flush.elapsed
