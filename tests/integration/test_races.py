"""Deterministic demonstrations of the race classes UC replay admits.

Each test builds a small trace whose correctness depends on one
inferred dependency, then shows (a) ARTC reproduces it under scheduling
jitter and (b) the unconstrained replay can break it.
"""

import pytest

pytestmark = pytest.mark.tier2  # slow integration tier

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.core.modes import ReplayMode
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from tests.conftest import make_fs


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.2)


def replay_worst(records, entries=(), mode=ReplayMode.UNCONSTRAINED, seeds=8):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    bench = compile_trace(Trace(records), snap)
    worst = 0
    for seed in range(seeds):
        fs = make_fs(seed=seed)
        initialize(fs, snap)
        report = replay(bench, fs, ReplayConfig(mode=mode, jitter=5e-4))
        worst = max(worst, report.failures)
    return worst


class TestRaceClasses(object):
    # The paper's introductory hazard: "one thread opens a file, a
    # second thread writes to it, and a third closes it."
    HANDOFF = [
        rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
        rec(1, "T2", "write", {"fd": 3, "nbytes": 4096}, ret=4096),
        rec(2, "T3", "close", {"fd": 3}),
    ]

    def test_three_thread_handoff(self):
        assert replay_worst(self.HANDOFF, [("/d", "dir")]) >= 1
        assert replay_worst(
            self.HANDOFF, [("/d", "dir")], mode=ReplayMode.ARTC
        ) == 0

    # Path reuse: create/unlink in one thread, recreate in another.
    NAME_REUSE = [
        rec(0, "T1", "open", {"path": "/d/t", "flags": "O_WRONLY|O_CREAT|O_EXCL"}, ret=3),
        rec(1, "T1", "close", {"fd": 3}),
        rec(2, "T1", "unlink", {"path": "/d/t"}),
        rec(3, "T2", "open", {"path": "/d/t", "flags": "O_WRONLY|O_CREAT|O_EXCL"}, ret=3),
        rec(4, "T2", "close", {"fd": 3}),
    ]

    def test_exclusive_create_name_reuse(self):
        # UC may run T2's O_EXCL create before T1's unlink -> EEXIST.
        # (o_excl_fix must be off to observe it, as ARTC's workaround
        # deliberately masks this class.)
        snap = [("/d", "dir")]
        bench_failures = []
        for seed in range(8):
            snapshot = Snapshot()
            snapshot.add("/d", "dir")
            bench = compile_trace(Trace(self.NAME_REUSE), snapshot)
            fs = make_fs(seed=seed)
            initialize(fs, snapshot)
            report = replay(
                bench,
                fs,
                ReplayConfig(
                    mode=ReplayMode.UNCONSTRAINED, jitter=5e-4, o_excl_fix=False
                ),
            )
            bench_failures.append(report.failures)
        assert max(bench_failures) >= 1
        assert replay_worst(self.NAME_REUSE, snap, mode=ReplayMode.ARTC) == 0

    # Rename invalidating a path another thread still uses.
    RENAME_RACE = [
        rec(0, "T1", "stat", {"path": "/d/sub/x"}, ret=0),
        rec(1, "T1", "rename", {"old": "/d/sub", "new": "/d/moved"}),
        rec(2, "T2", "stat", {"path": "/d/moved/x"}, ret=0),
        rec(3, "T2", "stat", {"path": "/d/sub/x"}, ret=-1, err="ENOENT"),
    ]

    def test_directory_rename_race(self):
        entries = [("/d", "dir"), ("/d/sub", "dir"), ("/d/sub/x", "reg", 10)]
        assert replay_worst(self.RENAME_RACE, entries) >= 1
        assert replay_worst(self.RENAME_RACE, entries, mode=ReplayMode.ARTC) == 0

    # Deleted-while-open: reads must happen before the last close.
    DELETED_OPEN = [
        rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDONLY"}, ret=3),
        rec(1, "T2", "unlink", {"path": "/d/f"}),
        rec(2, "T1", "pread", {"fd": 3, "nbytes": 100, "offset": 0}, ret=100),
        rec(3, "T1", "close", {"fd": 3}),
        rec(4, "T2", "open", {"path": "/d/f", "flags": "O_RDONLY"}, ret=-1, err="ENOENT"),
    ]

    def test_deleted_while_open_sequence(self):
        entries = [("/d", "dir"), ("/d/f", "reg", 4096)]
        assert replay_worst(self.DELETED_OPEN, entries, mode=ReplayMode.ARTC) == 0
