"""End-to-end integration: trace -> save/load -> compile -> replay."""

import pytest

pytestmark = pytest.mark.tier2  # slow integration tier

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.benchmark import CompiledBenchmark
from repro.artc.init import delta_init, initialize
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.core.modes import ReplayMode
from repro.tracing import strace
from repro.tracing.trace import Trace
from repro.workloads import ParallelRandomReaders
from repro.workloads.magritte import build_suite


@pytest.fixture(scope="module")
def traced():
    app = ParallelRandomReaders(nthreads=2, reads_per_thread=80, file_bytes=16 << 20)
    return trace_application(app, PLATFORMS["hdd-ext4"])


class TestFullPipeline(object):
    def test_trace_survives_json_round_trip_through_pipeline(self, traced, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        traced.trace.save(path)
        trace = Trace.load(path)
        bench = compile_trace(trace, traced.snapshot)
        fs = PLATFORMS["ssd"].make_fs(seed=1)
        initialize(fs, traced.snapshot)
        report = replay(bench, fs, ReplayConfig())
        assert report.failures == 0

    def test_trace_survives_strace_round_trip_through_pipeline(self, traced, tmp_path):
        path = str(tmp_path / "trace.strace")
        strace.save(traced.trace, path)
        trace = strace.load(path)
        bench = compile_trace(trace, traced.snapshot)
        fs = PLATFORMS["ssd"].make_fs(seed=1)
        initialize(fs, traced.snapshot)
        report = replay(bench, fs, ReplayConfig())
        assert report.failures == 0

    def test_benchmark_file_is_self_contained(self, traced, tmp_path):
        bench = compile_trace(traced.trace, traced.snapshot)
        path = str(tmp_path / "bench.json")
        bench.save(path)
        # A different process would only have the benchmark file.
        loaded = CompiledBenchmark.load(path)
        fs = PLATFORMS["hdd-ext4"].make_fs(seed=9)
        initialize(fs, loaded.snapshot)
        report = replay(loaded, fs, ReplayConfig())
        assert report.failures == 0

    def test_delta_init_between_repeated_replays(self, traced):
        bench = compile_trace(traced.trace, traced.snapshot)
        fs = PLATFORMS["hdd-ext4"].make_fs(seed=2)
        initialize(fs, traced.snapshot)
        first = replay(bench, fs, ReplayConfig())
        stats = delta_init(fs, traced.snapshot)
        second = replay(bench, fs, ReplayConfig())
        assert first.failures == 0
        assert second.failures == 0
        # The reader workload does not change the tree: delta is a no-op.
        assert stats.files_created == 0


class TestConcurrentOverlayReplay(object):
    def test_two_magritte_traces_replay_concurrently(self):
        """The paper's iPhoto+iTunes concurrent-replay scenario, via
        overlaid initialization with per-trace prefixes."""
        from repro.artc.init import overlay

        apps = build_suite(["itunes_startsmall1", "numbers_open5"])
        source = PLATFORMS["mac-ssd"]
        benches = []
        for name, app in apps.items():
            traced = trace_application(app, source, warm_cache=True)
            benches.append(compile_trace(traced.trace, traced.snapshot))
        fs = PLATFORMS["ssd"].make_fs(seed=5)
        # Both trees live under distinct prefixes in one file system.
        overlay(fs, [b.snapshot for b in benches], prefixes=["", ""])
        # (The two suites use disjoint /data/<app> subtrees, so no
        # prefixing is strictly required; run both replays in turn.)
        for bench in benches:
            report = replay(bench, fs, ReplayConfig(mode=ReplayMode.ARTC))
            assert report.failures <= 1


class TestDeterminism(object):
    def test_replay_deterministic_for_fixed_seed(self, traced):
        bench = compile_trace(traced.trace, traced.snapshot)

        def one():
            fs = PLATFORMS["hdd-ext4"].make_fs(seed=11)
            initialize(fs, traced.snapshot)
            return replay(bench, fs, ReplayConfig()).elapsed

        assert one() == one()

    def test_different_seed_changes_timing_not_semantics(self, traced):
        bench = compile_trace(traced.trace, traced.snapshot)
        elapsed = set()
        for seed in (21, 22):
            fs = PLATFORMS["hdd-ext4"].make_fs(seed=seed)
            initialize(fs, traced.snapshot)
            report = replay(bench, fs, ReplayConfig())
            assert report.failures == 0
            elapsed.add(round(report.elapsed, 9))
        assert len(elapsed) == 2  # rotational phase differs per boot
