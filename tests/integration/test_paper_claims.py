"""Fast integration checks of the paper's headline claims.

Miniature versions of the benchmark experiments (seconds, not minutes)
so the core claims stay guarded by the ordinary test suite:

1. ARTC's semantic failures are orders of magnitude below the
   unconstrained replay's (Table 3).
2. ARTC adapts to queue-depth feedback that rigid replays miss
   (Figure 5a).
3. ARTC's dependency edges are fewer and longer than temporal
   ordering's (Figure 8).
4. fillsync is accurate under every mode (Figure 7a).
"""

import pytest

pytestmark = pytest.mark.tier2  # slow integration tier

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, replay_matrix, trace_application
from repro.core.analysis import edge_stats
from repro.core.deps import temporal_graph
from repro.core.modes import ReplayMode
from repro.leveldb.apps import LevelDBFillSync, LevelDBReadRandom
from repro.workloads import ParallelRandomReaders
from repro.workloads.magritte import build_suite


def test_claim_correctness_separation():
    app = build_suite(["iphoto_duplicate400"])["iphoto_duplicate400"]
    traced = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
    bench = compile_trace(traced.trace, traced.snapshot)
    uc = replay_benchmark(
        bench, PLATFORMS["ssd"], ReplayMode.UNCONSTRAINED,
        seed=301, warm_cache=True, jitter=2e-5,
    )
    artc = replay_benchmark(
        bench, PLATFORMS["ssd"], ReplayMode.ARTC, seed=302, warm_cache=True
    )
    assert artc.failures <= app.profile.artc_errors + 3
    assert uc.failures > 5 * max(1, artc.failures)


def test_claim_queue_depth_feedback():
    app = ParallelRandomReaders(nthreads=8, reads_per_thread=250)
    res = replay_matrix(
        app, PLATFORMS["hdd-ext4"], PLATFORMS["hdd-ext4"],
        modes=(ReplayMode.SINGLE, ReplayMode.ARTC),
    )
    single = res["modes"][ReplayMode.SINGLE]
    artc = res["modes"][ReplayMode.ARTC]
    assert single["signed_error"] > 0.3  # rigid replay overestimates
    assert artc["error"] < 0.15
    assert artc["error"] < single["error"] / 2


def test_claim_edges_fewer_but_longer():
    app = LevelDBReadRandom(nthreads=4, ops_per_thread=150, nkeys=20000)
    platform = PLATFORMS["hdd-ext4"].variant(cache_bytes=8 << 20)
    traced = trace_application(app, platform)
    bench = compile_trace(traced.trace, traced.snapshot)
    artc = edge_stats(bench.graph, bench.actions)
    temporal = edge_stats(temporal_graph(bench.actions), bench.actions)
    assert artc["edges"] < temporal["edges"]
    assert artc["mean_length"] > 10 * temporal["mean_length"]


def test_claim_fillsync_accurate_everywhere():
    app = LevelDBFillSync(nthreads=8, ops_per_thread=20)
    res = replay_matrix(
        app, PLATFORMS["hdd-ext4"], PLATFORMS["ssd"],
        modes=(ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC),
    )
    for mode, row in res["modes"].items():
        assert row["error"] < 0.35, (mode, row["error"])
        assert row["failures"] == 0


def test_claim_artc_concurrency_beats_temporal():
    app = LevelDBReadRandom(nthreads=4, ops_per_thread=150, nkeys=20000)
    platform = PLATFORMS["hdd-ext4"].variant(cache_bytes=8 << 20)
    traced = trace_application(app, platform)
    bench = compile_trace(traced.trace, traced.snapshot)
    artc = replay_benchmark(bench, platform, ReplayMode.ARTC, seed=310)
    temporal = replay_benchmark(bench, platform, ReplayMode.TEMPORAL, seed=311)
    assert artc.mean_outstanding() > temporal.mean_outstanding()
    assert artc.elapsed <= temporal.elapsed * 1.05
