"""Unit tests for condition variables, mutexes, and semaphores."""

import pytest

from repro.sim import Condition, Delay, Engine, Mutex, Semaphore


def test_condition_notify_all_wakes_everyone():
    engine = Engine()
    cond = Condition()
    woken = []

    def waiter(name):
        yield from cond.wait()
        woken.append(name)

    def notifier():
        yield Delay(1.0)
        cond.notify_all()

    for name in ("a", "b", "c"):
        engine.spawn(waiter(name))
    engine.spawn(notifier())
    engine.run()
    assert sorted(woken) == ["a", "b", "c"]
    assert cond.waiter_count == 0


def test_condition_notify_one_wakes_fifo():
    engine = Engine()
    cond = Condition()
    woken = []

    def waiter(name):
        yield from cond.wait()
        woken.append(name)

    def notifier():
        yield Delay(1.0)
        cond.notify_one()
        yield Delay(1.0)
        cond.notify_one()

    engine.spawn(waiter("first"))
    engine.spawn(waiter("second"))
    engine.spawn(notifier())
    engine.run()
    assert woken == ["first", "second"]


def test_condition_is_reusable():
    engine = Engine()
    cond = Condition()
    log = []

    def waiter():
        yield from cond.wait()
        log.append("one")
        yield from cond.wait()
        log.append("two")

    def notifier():
        yield Delay(1.0)
        cond.notify_all()
        yield Delay(1.0)
        cond.notify_all()

    engine.spawn(waiter())
    engine.spawn(notifier())
    engine.run()
    assert log == ["one", "two"]


def test_mutex_mutual_exclusion():
    engine = Engine()
    mutex = Mutex()
    active = []
    max_active = []

    def body(name):
        yield from mutex.acquire()
        active.append(name)
        max_active.append(len(active))
        yield Delay(1.0)
        active.remove(name)
        mutex.release()

    for name in range(4):
        engine.spawn(body(name))
    engine.run()
    assert max(max_active) == 1
    assert not mutex.locked


def test_mutex_fifo_handoff():
    engine = Engine()
    mutex = Mutex()
    order = []

    def body(name):
        yield from mutex.acquire()
        order.append(name)
        yield Delay(1.0)
        mutex.release()

    for name in range(3):
        engine.spawn(body(name))
    engine.run()
    assert order == [0, 1, 2]


def test_mutex_release_unlocked_raises():
    with pytest.raises(RuntimeError):
        Mutex().release()


def test_semaphore_limits_concurrency():
    engine = Engine()
    sem = Semaphore(2)
    active = [0]
    peak = [0]

    def body():
        yield from sem.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield Delay(1.0)
        active[0] -= 1
        sem.release()

    for _ in range(6):
        engine.spawn(body())
    engine.run()
    assert peak[0] == 2
    assert sem.count == 2


def test_semaphore_negative_count_rejected():
    with pytest.raises(ValueError):
        Semaphore(-1)
