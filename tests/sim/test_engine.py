"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import ProcessCrashed, SimulationError
from repro.sim import Delay, Engine, Event, WaitEvent
from repro.sim.events import wait_all


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_delay_advances_clock():
    engine = Engine()

    def body():
        yield Delay(2.5)
        return engine.now

    assert engine.run_process(body()) == 2.5


def test_zero_delay_is_legal():
    engine = Engine()

    def body():
        yield Delay(0.0)
        return engine.now

    assert engine.run_process(body()) == 0.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_processes_interleave_in_time_order():
    engine = Engine()
    log = []

    def body(name, delay):
        yield Delay(delay)
        log.append(name)

    engine.spawn(body("late", 3.0))
    engine.spawn(body("early", 1.0))
    engine.spawn(body("mid", 2.0))
    engine.run()
    assert log == ["early", "mid", "late"]


def test_fifo_order_at_equal_timestamps():
    engine = Engine()
    log = []

    def body(name):
        yield Delay(1.0)
        log.append(name)

    for name in "abcde":
        engine.spawn(body(name))
    engine.run()
    assert log == list("abcde")


def test_process_result_and_done_event():
    engine = Engine()

    def body():
        yield Delay(1.0)
        return 42

    process = engine.spawn(body())
    engine.run()
    assert process.result == 42
    assert not process.alive
    assert process.done.is_set
    assert process.done.value == 42


def test_join_via_done_event():
    engine = Engine()

    def worker():
        yield Delay(2.0)
        return "payload"

    def waiter(proc):
        value = yield WaitEvent(proc.done)
        return (value, engine.now)

    worker_proc = engine.spawn(worker())
    waiter_proc = engine.spawn(waiter(worker_proc))
    engine.run()
    assert waiter_proc.result == ("payload", 2.0)


def test_event_value_delivery():
    engine = Engine()
    event = Event()

    def setter():
        yield Delay(1.0)
        event.set("hello")

    def getter():
        value = yield WaitEvent(event)
        return value

    engine.spawn(setter())
    getter_proc = engine.spawn(getter())
    engine.run()
    assert getter_proc.result == "hello"


def test_wait_on_already_set_event_is_instant():
    engine = Engine()
    event = Event()
    event.set("early")

    def body():
        value = yield WaitEvent(event)
        return (value, engine.now)

    assert engine.run_process(body()) == ("early", 0.0)


def test_event_double_set_rejected():
    event = Event()
    event.set()
    with pytest.raises(RuntimeError):
        event.set()


def test_yielding_bare_event_works():
    engine = Engine()
    event = engine.timer(1.5)

    def body():
        yield event
        return engine.now

    assert engine.run_process(body()) == 1.5


def test_wait_all_any_order():
    engine = Engine()
    events = [engine.timer(3.0), engine.timer(1.0), engine.timer(2.0)]

    def body():
        yield from wait_all(events)
        return engine.now

    assert engine.run_process(body()) == 3.0


def test_crash_surfaces_with_process_name():
    engine = Engine()

    def body():
        yield Delay(1.0)
        raise ValueError("boom")

    engine.spawn(body(), name="crasher")
    with pytest.raises(ProcessCrashed) as info:
        engine.run()
    assert info.value.process_name == "crasher"
    assert isinstance(info.value.original, ValueError)


def test_yielding_garbage_is_an_error():
    engine = Engine()

    def body():
        yield 42

    engine.spawn(body())
    with pytest.raises(SimulationError):
        engine.run()


def test_run_until_pauses_cleanly():
    engine = Engine()
    log = []

    def body():
        for _ in range(5):
            yield Delay(1.0)
            log.append(engine.now)

    engine.spawn(body())
    engine.run(until=2.5)
    assert log == [1.0, 2.0]
    assert engine.now == 2.5
    engine.run()
    assert log == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_deadlock_detected_by_run_process():
    engine = Engine()

    def body():
        yield WaitEvent(Event())  # nobody will ever set this

    with pytest.raises(SimulationError):
        engine.run_process(body())


def test_call_at_past_rejected():
    engine = Engine()

    def body():
        yield Delay(5.0)

    engine.run_process(body())
    with pytest.raises(SimulationError):
        engine.call_at(1.0, lambda v: None)


def test_rng_determinism():
    values_a = [Engine(seed=7).rng.random() for _ in range(3)]
    values_b = [Engine(seed=7).rng.random() for _ in range(3)]
    assert values_a == values_b
    assert values_a != [Engine(seed=8).rng.random() for _ in range(3)]


def test_spawn_names_are_unique_by_default():
    engine = Engine()

    def body():
        yield Delay(0.0)

    names = {engine.spawn(body()).name for _ in range(10)}
    assert len(names) == 10
