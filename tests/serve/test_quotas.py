"""Unit tests for the per-tenant quota ledger (deterministic clock)."""

import pytest

from repro.serve.quotas import QuotaExceeded, QuotaLedger, QuotaPolicy


class FakeClock(object):
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def ledger(**policy):
    clock = FakeClock()
    return QuotaLedger(QuotaPolicy(**policy), clock=clock), clock


class TestInflightCap(object):
    def test_cap_rejects_then_settle_frees(self):
        quotas, _clock = ledger(max_inflight=2)
        quotas.admit("t")
        quotas.admit("t")
        with pytest.raises(QuotaExceeded) as err:
            quotas.admit("t")
        assert err.value.reason == "max-inflight"
        quotas.settle("t")
        quotas.admit("t")  # freed slot re-admits

    def test_cap_is_per_tenant(self):
        quotas, _clock = ledger(max_inflight=1)
        quotas.admit("alice")
        quotas.admit("bob")  # different tenant, own cap
        with pytest.raises(QuotaExceeded):
            quotas.admit("alice")

    def test_zero_cap_disables(self):
        quotas, _clock = ledger(max_inflight=0)
        for _ in range(100):
            quotas.admit("t")


class TestActionsBudget(object):
    def test_disabled_rate_never_debits(self):
        quotas, _clock = ledger(actions_per_sec=0.0)
        quotas.admit("t")
        quotas.settle("t", actions=10 ** 9)
        quotas.admit("t")  # still admitted; tokens untouched
        assert quotas.snapshot()["t"]["actions"] == 10 ** 9

    def test_charge_behind_overdraft(self):
        # Bucket starts at burst (10); cost is only debited at settle,
        # so one expensive request goes through and drives the balance
        # negative -- then admission is refused until refill.
        quotas, clock = ledger(actions_per_sec=1.0, burst_actions=10.0)
        quotas.admit("t")
        quotas.settle("t", actions=100)
        assert quotas.snapshot()["t"]["tokens"] == pytest.approx(-90.0)
        with pytest.raises(QuotaExceeded) as err:
            quotas.admit("t")
        assert err.value.reason == "actions-budget"

        clock.now += 89.0  # still in overdraft
        with pytest.raises(QuotaExceeded):
            quotas.admit("t")
        clock.now += 6.0  # balance climbs past zero
        quotas.admit("t")

    def test_refill_caps_at_burst(self):
        quotas, clock = ledger(actions_per_sec=10.0, burst_actions=20.0)
        quotas.admit("t")
        quotas.settle("t", actions=5)
        clock.now += 1000.0
        assert quotas.snapshot()["t"]["tokens"] == pytest.approx(20.0)

    def test_default_burst_is_four_seconds(self):
        policy = QuotaPolicy(actions_per_sec=50.0)
        assert policy.burst_actions == pytest.approx(200.0)


class TestAccounting(object):
    def test_snapshot_counts(self):
        quotas, _clock = ledger(max_inflight=1)
        quotas.admit("t")
        with pytest.raises(QuotaExceeded):
            quotas.admit("t")
        quotas.settle("t", actions=7)
        snap = quotas.snapshot()["t"]
        assert snap["admitted"] == 1
        assert snap["rejected"] == 1
        assert snap["inflight"] == 0
        assert snap["actions"] == 7

    def test_settle_never_goes_negative_inflight(self):
        quotas, _clock = ledger()
        quotas.settle("t")
        assert quotas.snapshot()["t"]["inflight"] == 0
