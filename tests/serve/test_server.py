"""End-to-end tests for the ``artc serve`` daemon.

One module-scoped daemon (2 worker shards, private artifact dir, debug
hooks enabled) backs most tests; the quota tests run their own
short-lived servers with deliberately tiny policies.

The replay-identity tests compare serve responses against a *direct*
oracle that mirrors ``artc replay`` -- an independent compile into a
separate cache, then the same fresh-target/initialize/replay sequence
-- so agreement proves the whole daemon path (protocol, sharding,
coalescing, cache) preserves byte-identical reports and final FS-state
digests.
"""

import json
import shutil
import socket
import tempfile

import pytest

from repro.bench.artifacts import ArtifactCache
from repro.core.modes import ReplayMode
from repro.serve import ServeConfig, ServerThread, submit_many
from repro.serve.quotas import QuotaPolicy

# A deliberately small cell so compiles take well under a second.
APP_ARGS = {"nthreads": 2, "reads_per_thread": 30, "file_bytes": 4 << 20}


def cell(seed, **extra):
    params = {
        "app": "randreads",
        "app_args": dict(APP_ARGS),
        "source": "mac-ssd",
        "platform": "hdd-ext4",
        "seed": seed,
    }
    params.update(extra)
    return params


def direct_replay(params, cache_root):
    """The ``artc replay`` oracle: independent compile, identical
    replay sequence, returns ``(summary, state_digest)``."""
    from repro.artc.init import initialize
    from repro.artc.replayer import replay
    from repro.serve import jobs
    from repro.verify.abstract import fs_digest

    cache = ArtifactCache(root=cache_root)
    bench, _info = cache.get_or_build(
        jobs.build_app(params),
        jobs.lookup_platform(params.get("source", "mac-ssd")),
        int(params.get("seed", 0)),
        ruleset=jobs.build_ruleset(params.get("ruleset")),
        warm_cache=bool(params.get("warm_cache", False)),
    )
    target = jobs.lookup_platform(params.get("platform", "hdd-ext4"))
    fs = target.make_fs(seed=int(params.get("replay_seed", params.get("seed", 0))))
    if bench.snapshot is not None:
        initialize(fs, bench.snapshot)
    report = replay(bench, fs, jobs._replay_config(params))
    return report.summary(), fs_digest(fs)


@pytest.fixture(scope="module")
def workdir():
    # mkdtemp (not tmp_path) keeps the unix socket path short enough
    # for sun_path's ~108-byte limit.
    root = tempfile.mkdtemp(prefix="artc-serve-")
    yield root
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture(scope="module")
def served(workdir):
    config = ServeConfig(
        unix_path=workdir + "/artc.sock",
        workers=2,
        artifact_dir=workdir + "/artifacts",
        allow_debug=True,
    )
    with ServerThread(config) as handle:
        yield handle


@pytest.fixture
def client(served):
    with served.client(timeout=120.0) as conn:
        yield conn


def counter(client, name):
    return client.metrics().get(name, {}).get("value", 0)


class TestRoundTrip(object):
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert result["protocol"] == "artc-serve-v1"

    def test_status_reports_pool(self, client):
        status = client.status()
        assert status["pool"]["shards"] == 2
        assert len(status["workers"]) == 2
        assert status["uptime_seconds"] >= 0

    def test_unknown_kind_is_404(self, client):
        envelope = client.request("frobnicate", check=False)
        assert envelope["ok"] is False
        assert envelope["status"] == 404

    def test_bad_json_line_is_400(self, served):
        with socket.socket(socket.AF_UNIX) as sock:
            sock.settimeout(10.0)
            sock.connect(served.config.unix_path)
            sock.sendall(b"this is not json\n")
            envelope = json.loads(sock.makefile("rb").readline())
        assert envelope["ok"] is False
        assert envelope["status"] == 400
        assert envelope["error"]["type"] == "protocol-error"

    def test_bad_cell_is_clean_error(self, client):
        envelope = client.request("replay", {"app": "no-such-app"},
                                  check=False)
        assert envelope["ok"] is False
        assert envelope["status"] == 404
        assert envelope["error"]["type"] == "unknown-app"


class TestReplayIdentity(object):
    """Serve responses must be byte-identical to direct ``artc
    replay`` -- report summary and final FS-state digest -- across
    every ordering mode and every replay core."""

    CASES = [(mode, "auto") for mode in ReplayMode.ALL] + [
        (ReplayMode.ARTC, "events"),
        (ReplayMode.ARTC, "scoreboard"),
        (ReplayMode.ARTC, "jit"),
    ]

    @pytest.mark.parametrize("mode,core", CASES)
    def test_matches_direct_replay(self, client, workdir, mode, core):
        params = cell(seed=7, mode=mode, core=core)
        envelope = client.replay(**params)
        summary, digest = direct_replay(params, workdir + "/oracle")
        assert envelope["result"]["summary"] == summary
        assert envelope["result"]["state_digest"] == digest
        assert envelope["result"]["summary"]["failures"] == 0

    def test_concurrent_sessions_isolated(self, served, workdir):
        # 8 in-flight sessions over 4 distinct cells: every response
        # must match its own cell's oracle, unperturbed by neighbours.
        seeds = [101, 102, 103, 104]
        requests = [("replay", cell(seed)) for seed in seeds for _ in (0, 1)]
        envelopes = submit_many(
            served.client_kwargs(), requests, concurrency=8, barrier=True
        )
        assert all(envelope["ok"] for envelope in envelopes), envelopes
        for index, seed in enumerate(seeds):
            summary, digest = direct_replay(cell(seed), workdir + "/oracle")
            for envelope in envelopes[2 * index:2 * index + 2]:
                assert envelope["result"]["summary"] == summary
                assert envelope["result"]["state_digest"] == digest


class TestCoalescing(object):
    def test_identical_inflight_requests_run_once(self, served, client):
        before_compiles = counter(client, "serve.cache.compiles")
        before_warm = counter(client, "serve.cache.warm_hits")
        k = 6
        envelopes = submit_many(
            served.client_kwargs(),
            [("replay", cell(seed=777))] * k,
            concurrency=k,
            barrier=True,
        )
        assert all(envelope["ok"] for envelope in envelopes), envelopes
        # One execution: exactly one compile, zero warm re-serves --
        # the other K-1 responses came off the leader's envelope.
        assert counter(client, "serve.cache.compiles") - before_compiles == 1
        assert counter(client, "serve.cache.warm_hits") - before_warm == 0
        assert sum(1 for e in envelopes if e.get("coalesced")) == k - 1
        first = envelopes[0]["result"]
        for envelope in envelopes[1:]:
            assert envelope["result"]["summary"] == first["summary"]
            assert envelope["result"]["state_digest"] == first["state_digest"]

    def test_distinct_cells_do_not_coalesce(self, served, client):
        before = counter(client, "serve.cache.compiles")
        envelopes = submit_many(
            served.client_kwargs(),
            [("replay", cell(seed=881)), ("replay", cell(seed=882))],
            concurrency=2,
            barrier=True,
        )
        assert all(envelope["ok"] for envelope in envelopes)
        assert not any(envelope.get("coalesced") for envelope in envelopes)
        assert counter(client, "serve.cache.compiles") - before == 2


class TestWarmServing(object):
    def test_repeat_cell_serves_warm_with_durable_evidence(
            self, served, client):
        params = cell(seed=555)
        cold = client.replay(**params)
        assert cold["cached"] is False
        key = cold["result"]["artifact"]["key"]

        before_compiles = counter(client, "serve.cache.compiles")
        warm = client.replay(**params)
        assert warm["cached"] is True
        assert counter(client, "serve.cache.compiles") == before_compiles
        assert warm["result"]["summary"] == cold["result"]["summary"]
        assert warm["result"]["state_digest"] == cold["result"]["state_digest"]

        # The warm serve is provable after the fact: the artifact's
        # durable hit journal recorded it.
        cache = ArtifactCache(root=served.config.artifact_dir)
        assert cache.durable_hits(key) >= 1

    def test_warm_hits_metric_counts(self, client):
        params = cell(seed=556)
        client.replay(**params)
        before = counter(client, "serve.cache.warm_hits")
        client.replay(**params)
        assert counter(client, "serve.cache.warm_hits") == before + 1


class TestWorkerFailures(object):
    def test_crash_is_500_and_respawns(self, client):
        envelope = client.request("debug", {"op": "crash"}, check=False)
        assert envelope["ok"] is False
        assert envelope["status"] == 500
        assert envelope["error"]["type"] == "worker-crashed"
        # The shard is immediately usable again.
        echo = client.request("debug", {"op": "echo", "payload": "alive"})
        assert echo["result"]["echo"] == "alive"
        assert client.status()["pool"]["respawns"] >= 1

    def test_timeout_kills_worker(self, client):
        envelope = client.request(
            "debug", {"op": "sleep", "seconds": 30}, timeout=0.5, check=False
        )
        assert envelope["ok"] is False
        assert envelope["status"] == 504
        assert envelope["error"]["type"] == "timeout"
        echo = client.request("debug", {"op": "echo", "payload": "back"})
        assert echo["result"]["echo"] == "back"


class TestHttpView(object):
    def _http(self, served, payload):
        with socket.socket(socket.AF_UNIX) as sock:
            sock.settimeout(30.0)
            sock.connect(served.config.unix_path)
            sock.sendall(payload)
            chunks = b""
            while True:
                block = sock.recv(65536)
                if not block:
                    break
                chunks += block
        head, _sep, body = chunks.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        return status, json.loads(body.decode("utf-8"))

    def test_healthz(self, served):
        status, payload = self._http(
            served, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert status == 200
        assert payload["result"]["pong"] is True

    def test_metrics_endpoint(self, served, client):
        client.ping()  # ensure at least one counter exists
        status, payload = self._http(
            served, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert status == 200
        assert "serve.requests_total" in payload["result"]["metrics"]

    def test_post_kind_route(self, served):
        body = json.dumps({"op": "echo", "payload": "via-http"}).encode()
        head = (
            "POST /debug HTTP/1.1\r\nHost: x\r\n"
            "X-Artc-Tenant: http-test\r\n"
            "Content-Length: %d\r\n\r\n" % len(body)
        ).encode()
        status, payload = self._http(served, head + body)
        assert status == 200
        assert payload["result"]["echo"] == "via-http"

    def test_unknown_route_404(self, served):
        status, payload = self._http(
            served, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert status == 404
        assert payload["ok"] is False


class TestQuotas(object):
    def _server(self, workdir, name, policy):
        return ServerThread(ServeConfig(
            unix_path="%s/%s.sock" % (workdir, name),
            workers=2,
            artifact_dir=workdir + "/artifacts",
            allow_debug=True,
            quota=policy,
        ))

    def test_max_inflight_rejects_429(self, workdir):
        with self._server(workdir, "q1",
                          QuotaPolicy(max_inflight=1)) as handle:
            # Two overlapping sleeps from one tenant: distinct params
            # (no coalescing), so the second must hit the cap.
            envelopes = submit_many(
                handle.client_kwargs(),
                [("debug", {"op": "sleep", "seconds": 1.5}),
                 ("debug", {"op": "sleep", "seconds": 1.6})],
                concurrency=2,
                barrier=True,
            )
            statuses = sorted(e["status"] for e in envelopes)
            assert statuses == [200, 429]
            rejected = next(e for e in envelopes if e["status"] == 429)
            assert rejected["error"]["type"] == "quota-exceeded"
            assert rejected["reason"] == "max-inflight"

    def test_actions_budget_rejects_429(self, workdir):
        policy = QuotaPolicy(actions_per_sec=0.001, burst_actions=1.0)
        with self._server(workdir, "q2", policy) as handle:
            with handle.client(tenant="heavy") as conn:
                first = conn.replay(**cell(seed=1))
                assert first["ok"]  # charge-behind: whale admitted once
                second = conn.request("replay", cell(seed=2), check=False)
                assert second["status"] == 429
                assert second["reason"] == "actions-budget"
                # Local kinds are never charged, other tenants have
                # their own bucket.
                assert conn.ping()["pong"] is True
            with handle.client(tenant="light") as other:
                assert other.replay(**cell(seed=1))["ok"]


class TestShutdown(object):
    def test_shutdown_request_stops_daemon(self, workdir):
        handle = self._fresh(workdir)
        with handle.client() as conn:
            assert conn.shutdown()["stopping"] is True
        handle._thread.join(timeout=30.0)
        assert not handle._thread.is_alive()
        with pytest.raises((ConnectionRefusedError, FileNotFoundError,
                            ConnectionError, OSError)):
            handle.client().ping()

    def _fresh(self, workdir):
        return ServerThread(ServeConfig(
            unix_path=workdir + "/down.sock",
            workers=2,
            artifact_dir=workdir + "/artifacts",
        )).start()
