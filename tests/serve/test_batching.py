"""Unit tests for the single-flight request coalescer."""

import asyncio

from repro.serve.batching import Coalescer


def run(coro):
    return asyncio.run(coro)


def test_first_join_leads_later_joins_follow():
    async def main():
        coalescer = Coalescer()
        leader_a, future_a = coalescer.join("k")
        leader_b, future_b = coalescer.join("k")
        leader_c, future_c = coalescer.join("k")
        assert leader_a is True
        assert leader_b is False and leader_c is False
        assert future_b is future_a and future_c is future_a
        assert coalescer.leaders == 1
        assert coalescer.coalesced == 2
        assert coalescer.inflight_keys == 1
        followers = coalescer.finish("k", {"ok": True})
        assert followers == 2

    run(main())


def test_finish_fans_out_one_envelope():
    async def main():
        coalescer = Coalescer()
        _leader, future = coalescer.join("k")
        _f, follower_future = coalescer.join("k")
        envelope = {"ok": False, "status": 500}
        coalescer.finish("k", envelope)
        # Failures fan out identically -- same dict, not an exception.
        assert (await future) is envelope
        assert (await follower_future) is envelope

    run(main())


def test_key_clears_after_finish():
    async def main():
        coalescer = Coalescer()
        coalescer.join("k")
        coalescer.finish("k", {})
        leader_again, _future = coalescer.join("k")
        assert leader_again is True  # next request executes (served warm)
        assert coalescer.inflight_keys == 1

    run(main())


def test_distinct_keys_do_not_share():
    async def main():
        coalescer = Coalescer()
        _la, future_a = coalescer.join("a")
        leader_b, future_b = coalescer.join("b")
        assert leader_b is True
        assert future_a is not future_b

    run(main())


def test_abandon_drops_without_result():
    async def main():
        coalescer = Coalescer()
        coalescer.join("k")
        coalescer.abandon("k")
        assert coalescer.inflight_keys == 0
        coalescer.abandon("missing")  # idempotent on unknown keys

    run(main())


def test_finish_unknown_key_is_harmless():
    async def main():
        coalescer = Coalescer()
        assert coalescer.finish("ghost", {"ok": True}) == 0

    run(main())
