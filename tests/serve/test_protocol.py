"""Unit tests for the artc-serve-v1 wire protocol."""

import json

import pytest

from repro.serve import protocol


class TestNormalize(object):
    def test_fills_defaults(self):
        request = protocol.normalize_request({"kind": "replay"})
        assert request == {
            "kind": "replay",
            "id": None,
            "tenant": "anon",
            "timeout": None,
            "params": {},
        }

    def test_round_trips_fields(self):
        request = protocol.normalize_request({
            "kind": "compile", "id": 42, "tenant": "ci",
            "timeout": 7, "params": {"app": "randreads"},
        })
        assert request["id"] == 42
        assert request["tenant"] == "ci"
        assert request["timeout"] == 7.0
        assert request["params"] == {"app": "randreads"}

    def test_non_object_is_400(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.normalize_request(["replay"])
        assert err.value.status == protocol.BAD_REQUEST

    def test_missing_kind_is_400(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.normalize_request({"params": {}})

    def test_unknown_kind_is_404(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.normalize_request({"kind": "frobnicate"})
        assert err.value.status == protocol.NOT_FOUND

    def test_bad_timeout_rejected(self):
        for timeout in (0, -1, "soon"):
            with pytest.raises(protocol.ProtocolError):
                protocol.normalize_request({"kind": "ping", "timeout": timeout})

    def test_bad_tenant_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.normalize_request({"kind": "ping", "tenant": ""})


class TestRequestKey(object):
    def _key(self, **obj):
        return protocol.request_key(protocol.normalize_request(obj))

    def test_same_work_same_key(self):
        a = self._key(kind="replay", params={"app": "randreads", "seed": 1})
        b = self._key(kind="replay", params={"seed": 1, "app": "randreads"})
        assert a == b  # param order must not matter

    def test_requester_fields_excluded(self):
        a = self._key(kind="replay", params={"app": "randreads"},
                      tenant="alice", id=1, timeout=5)
        b = self._key(kind="replay", params={"app": "randreads"},
                      tenant="bob", id=99)
        assert a == b  # identical work from two tenants must coalesce

    def test_kind_and_params_included(self):
        base = self._key(kind="replay", params={"app": "randreads"})
        assert base != self._key(kind="lint", params={"app": "randreads"})
        assert base != self._key(kind="replay", params={"app": "seqreaders"})


class TestFraming(object):
    def test_encode_decode_round_trip(self):
        envelope = protocol.ok_response(3, {"pong": True}, cached=True)
        line = protocol.encode_line(envelope)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_line(line) == envelope

    def test_decode_junk_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"not json\n")

    def test_error_response_shape(self):
        envelope = protocol.error_response(
            7, protocol.QUOTA_EXCEEDED, "quota-exceeded", "slow down",
            reason="max-inflight",
        )
        assert envelope["ok"] is False
        assert envelope["status"] == 429
        assert envelope["error"]["type"] == "quota-exceeded"
        assert envelope["reason"] == "max-inflight"


class TestHttpView(object):
    def test_sniffs_http(self):
        assert protocol.looks_like_http(b"GET /metrics HTTP/1.1\r\n")
        assert protocol.looks_like_http(b"POST /api HTTP/1.0\n")
        assert not protocol.looks_like_http(b'{"kind": "ping"}\n')
        assert not protocol.looks_like_http(b"GETAWAY /x HTTP/1.1\r\n")

    def test_parse_head(self):
        method, path, headers = protocol.parse_http_head(
            b"POST /replay HTTP/1.1\r\n"
            b"Content-Length: 12\r\n"
            b"X-Artc-Tenant: ci\r\n\r\n"
        )
        assert method == "POST"
        assert path == "/replay"
        assert headers["content-length"] == "12"
        assert headers["x-artc-tenant"] == "ci"

    def test_get_routes(self):
        for route, kind in (("/healthz", "ping"), ("/metrics", "metrics"),
                            ("/status", "status")):
            request = protocol.http_request_from("GET", route, {}, b"")
            assert request["kind"] == kind
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.http_request_from("GET", "/nope", {}, b"")
        assert err.value.status == protocol.NOT_FOUND

    def test_post_kind_route_reads_headers(self):
        request = protocol.http_request_from(
            "POST", "/replay",
            {"x-artc-tenant": "ci", "x-artc-timeout": "2.5"},
            json.dumps({"app": "randreads"}).encode("utf-8"),
        )
        assert request["kind"] == "replay"
        assert request["tenant"] == "ci"
        assert request["timeout"] == 2.5
        assert request["params"] == {"app": "randreads"}

    def test_post_api_route_is_whole_request(self):
        request = protocol.http_request_from(
            "POST", "/api", {},
            json.dumps({"kind": "ping", "tenant": "t"}).encode("utf-8"),
        )
        assert request["kind"] == "ping"
        assert request["tenant"] == "t"

    def test_http_response_bytes(self):
        data = protocol.http_response(200, {"ok": True})
        head, _sep, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert ("Content-Length: %d" % len(body)).encode() in head
        assert json.loads(body.decode("utf-8")) == {"ok": True}
