"""Tests for cross-platform pseudo-call emulation (paper section 4.3.4)."""

import pytest

from repro.syscalls.emulation import (
    EMULATED_CALLS,
    EmulationOptions,
    emulation_count,
    plan_for,
)


class TestEmulationTable(object):
    def test_nineteen_emulated_calls(self):
        # "ARTC performs emulation for 19 different calls."
        assert emulation_count() == 19

    def test_groups_match_paper(self):
        assert len(EMULATED_CALLS["metadata"]) == 11
        assert len(EMULATED_CALLS["hints"]) == 3
        assert len(EMULATED_CALLS["obscure"]) == 3
        assert len(EMULATED_CALLS["fsync"]) == 1
        assert len(EMULATED_CALLS["atomicity"]) == 1


class TestNativePassThrough(object):
    def test_native_call_unchanged(self):
        plan = plan_for("read", {"fd": 3, "nbytes": 10}, "linux", "linux")
        assert plan == [("read", {"fd": 3, "nbytes": 10})]

    def test_nocancel_stripped_off_darwin(self):
        plan = plan_for("read_nocancel", {"fd": 3, "nbytes": 10}, "darwin", "linux")
        assert plan[0][0] == "read"

    def test_size_variant_aliases(self):
        # getfsstat64 has no Linux equivalent by name; it maps to statfs.
        plan = plan_for("getfsstat64", {}, "darwin", "linux")
        assert plan[0][0] == "statfs"


class TestMetadataEmulations(object):
    def test_getattrlist_to_stat(self):
        plan = plan_for("getattrlist", {"path": "/x"}, "darwin", "linux")
        assert plan == [("stat", {"path": "/x"})]

    def test_fgetattrlist_to_fstat(self):
        plan = plan_for("fgetattrlist", {"fd": 5}, "darwin", "linux")
        assert plan == [("fstat", {"fd": 5})]

    def test_bulk_attrs_to_target_getdents(self):
        assert plan_for("getattrlistbulk", {"fd": 5}, "darwin", "linux")[0][0] == "getdents64"
        assert plan_for("getattrlistbulk", {"fd": 5}, "darwin", "freebsd")[0][0] == "getdirentries"

    def test_obscure_extended_stats(self):
        assert plan_for("stat_extended", {"path": "/x"}, "darwin", "linux")[0][0] == "stat"
        assert plan_for("lstat_extended", {"path": "/x"}, "darwin", "linux")[0][0] == "lstat"
        assert plan_for("fstat_extended", {"fd": 4}, "darwin", "linux")[0][0] == "fstat"


class TestHintEmulations(object):
    def test_rdadvise_to_fadvise_on_linux(self):
        plan = plan_for(
            "fcntl", {"fd": 4, "cmd": "F_RDADVISE", "offset": 0, "arg": 4096},
            "darwin", "linux",
        )
        assert plan[0][0] == "posix_fadvise"

    def test_rdadvise_ignored_on_freebsd(self):
        plan = plan_for(
            "fcntl", {"fd": 4, "cmd": "F_RDADVISE", "arg": 4096}, "darwin", "freebsd"
        )
        assert plan == []

    def test_preallocate_to_fallocate(self):
        plan = plan_for(
            "fcntl", {"fd": 4, "cmd": "F_PREALLOCATE", "arg": 1 << 20},
            "darwin", "linux",
        )
        assert plan[0][0] == "fallocate"
        assert plan[0][1]["length"] == 1 << 20

    def test_nocache_ignored(self):
        assert plan_for("fcntl", {"fd": 4, "cmd": "F_NOCACHE"}, "darwin", "linux") == []

    def test_non_hint_fcntl_untouched(self):
        plan = plan_for("fcntl", {"fd": 4, "cmd": "F_DUPFD"}, "darwin", "linux")
        assert plan[0][0] == "fcntl"


class TestFsyncSemantics(object):
    def test_darwin_fsync_on_linux_durable(self):
        plan = plan_for("fsync", {"fd": 3}, "darwin", "linux")
        assert plan == [("fsync", {"fd": 3})]

    def test_darwin_fsync_on_linux_flush(self):
        options = EmulationOptions(fsync_mode="flush")
        plan = plan_for("fsync", {"fd": 3}, "darwin", "linux", options)
        assert plan == [("fdatasync", {"fd": 3})]

    def test_linux_fsync_on_darwin_durable_uses_fullfsync(self):
        plan = plan_for("fsync", {"fd": 3}, "linux", "darwin")
        assert plan == [("fcntl", {"fd": 3, "cmd": "F_FULLFSYNC"})]

    def test_linux_fsync_on_darwin_flush(self):
        options = EmulationOptions(fsync_mode="flush")
        plan = plan_for("fsync", {"fd": 3}, "linux", "darwin", options)
        assert plan == [("fsync", {"fd": 3})]

    def test_bad_fsync_mode_rejected(self):
        with pytest.raises(ValueError):
            EmulationOptions(fsync_mode="yolo")


class TestExchangedata(object):
    def test_link_and_two_renames(self):
        plan = plan_for(
            "exchangedata", {"path1": "/a", "path2": "/b"}, "darwin", "linux"
        )
        names = [step for step, _ in plan]
        assert names == ["link", "rename", "rename"]
        # The swap: link a aside, move b over a, move the saved copy to b.
        link_args, rename1, rename2 = (args for _name, args in plan)
        assert link_args["target"] == "/a"
        assert rename1 == {"old": "/b", "new": "/a"}
        assert rename2["new"] == "/b"

    def test_native_on_darwin(self):
        plan = plan_for(
            "exchangedata", {"path1": "/a", "path2": "/b"}, "darwin", "darwin"
        )
        assert plan[0][0] == "exchangedata"

    def test_emulated_swap_is_semantically_correct(self):
        from tests.conftest import make_fs, run
        from repro.syscalls.execute import ExecContext, perform

        fs = make_fs()
        fs.create_file_now("/a", size=111)
        fs.create_file_now("/b", size=222)
        ctx = ExecContext(fs)
        plan = plan_for("exchangedata", {"path1": "/a", "path2": "/b"}, "darwin", "linux")
        for name, args in plan:
            ret, err = run(fs, perform(ctx, 1, name, args))
            assert err is None, (name, err)
        assert fs.lookup("/a").size == 222
        assert fs.lookup("/b").size == 111
        assert not fs.exists("/a.exch-tmp")
