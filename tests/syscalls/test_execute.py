"""Tests for the unified executor."""

import pytest

from repro.syscalls.execute import ExecContext, perform
from tests.conftest import make_fs, run


@pytest.fixture
def ctx():
    fs = make_fs()
    fs.makedirs_now("/d")
    fs.create_file_now("/d/f", size=8192)
    return ExecContext(fs)


def call(ctx, name, /, **args):
    return run(ctx.fs, perform(ctx, 1, name, args))


class TestBasicDispatch(object):
    def test_open_read_close_round_trip(self, ctx):
        fd, err = call(ctx, "open", path="/d/f", flags="O_RDONLY")
        assert err is None
        n, err = call(ctx, "read", fd=fd, nbytes=100)
        assert (n, err) == (100, None)
        assert call(ctx, "close", fd=fd) == (0, None)

    def test_symbolic_flag_strings_parsed(self, ctx):
        fd, err = call(ctx, "open", path="/d/new", flags="O_WRONLY|O_CREAT|O_EXCL")
        assert err is None
        assert ctx.fs.exists("/d/new")

    def test_numeric_flags_accepted(self, ctx):
        from repro.vfs import flags as F

        fd, err = call(ctx, "open", path="/d/f", flags=F.O_RDONLY)
        assert err is None

    def test_alias_names_dispatch(self, ctx):
        fd, _ = call(ctx, "open64", path="/d/f", flags="O_RDONLY")
        n, err = call(ctx, "pread64", fd=fd, nbytes=10, offset=0)
        assert (n, err) == (10, None)
        stat, err = call(ctx, "stat64", path="/d/f")
        assert err is None

    def test_errors_propagate(self, ctx):
        assert call(ctx, "open", path="/missing/f", flags="O_RDONLY") == (-1, "ENOENT")
        assert call(ctx, "unlink", path="/d/zzz") == (-1, "ENOENT")

    def test_unknown_name_raises(self, ctx):
        from repro.errors import UnsupportedSyscallError

        with pytest.raises(UnsupportedSyscallError):
            call(ctx, "frobnicate", path="/d/f")


class TestFcntlDispatch(object):
    def test_dupfd(self, ctx):
        fd, _ = call(ctx, "open", path="/d/f", flags="O_RDONLY")
        new, err = call(ctx, "fcntl", fd=fd, cmd="F_DUPFD")
        assert err is None and new != fd

    def test_fullfsync(self, ctx):
        fd, _ = call(ctx, "open", path="/d/f", flags="O_RDWR")
        call(ctx, "write", fd=fd, nbytes=4096)
        assert call(ctx, "fcntl", fd=fd, cmd="F_FULLFSYNC") == (0, None)
        assert ctx.fs.stack.cache.dirty_count == 0

    def test_preallocate(self, ctx):
        fd, _ = call(ctx, "open", path="/d/f", flags="O_RDWR")
        ret, err = call(ctx, "fcntl", fd=fd, cmd="F_PREALLOCATE", arg=1 << 20)
        assert err is None
        assert ctx.fs.lookup("/d/f").size >= 1 << 20

    def test_unknown_cmd_validates_fd_only(self, ctx):
        fd, _ = call(ctx, "open", path="/d/f", flags="O_RDONLY")
        assert call(ctx, "fcntl", fd=fd, cmd="F_GETPATH") == (0, None)
        assert call(ctx, "fcntl", fd=99, cmd="F_GETPATH") == (-1, "EBADF")


class TestComplexKinds(object):
    def test_pipe_returns_pair(self, ctx):
        (r, w), err = call(ctx, "pipe")
        assert err is None
        assert r != w

    def test_lio_listio_submits_batch(self, ctx):
        fd, _ = call(ctx, "open", path="/d/f", flags="O_RDWR")
        ops = [
            {"aiocb": "a", "fd": fd, "nbytes": 100, "offset": 0},
            {"aiocb": "b", "fd": fd, "nbytes": 100, "offset": 4096, "is_write": True},
        ]
        ret, err = call(ctx, "lio_listio", ops=ops)
        assert err is None
        assert call(ctx, "aio_suspend", aiocbs=["a", "b"]) == (0, None)

    def test_getcwd_and_chdir(self, ctx):
        assert call(ctx, "chdir", path="/d") == (0, None)
        stat, err = call(ctx, "stat", path="f")
        assert err is None

    def test_fchdir(self, ctx):
        fd, _ = call(ctx, "open", path="/d", flags="O_RDONLY|O_DIRECTORY")
        assert call(ctx, "fchdir", fd=fd) == (0, None)
        stat, err = call(ctx, "stat", path="f")
        assert err is None

    def test_shm_name_argument(self, ctx):
        fd, err = call(ctx, "shm_open", name="seg", flags="O_RDWR|O_CREAT")
        assert err is None
        assert call(ctx, "shm_unlink", name="seg") == (0, None)
