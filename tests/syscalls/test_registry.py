"""Tests for the system-call registry."""

import pytest

from repro.errors import UnsupportedSyscallError
from repro.syscalls.registry import CATEGORIES, REGISTRY, spec_for


class TestRegistryContents(object):
    def test_supports_over_80_calls(self):
        # The paper: "capable of replaying over 80 different system calls".
        assert len(REGISTRY) > 80

    def test_core_posix_calls_present(self):
        for name in (
            "open", "close", "read", "write", "pread", "pwrite", "lseek",
            "fsync", "stat", "lstat", "fstat", "mkdir", "rmdir", "unlink",
            "rename", "link", "symlink", "readlink", "truncate", "dup",
            "dup2", "fcntl", "mmap", "chdir", "access", "statfs",
        ):
            assert name in REGISTRY, name

    def test_darwin_specific_calls_present(self):
        for name in (
            "getattrlist", "setattrlist", "exchangedata", "getdirentriesattr",
            "stat_extended", "fstat_extended", "open_nocancel",
        ):
            assert name in REGISTRY, name
            assert REGISTRY[name].available_on("darwin")

    def test_aio_family_present(self):
        for name in ("aio_read", "aio_write", "aio_error", "aio_return",
                     "aio_suspend", "lio_listio"):
            assert name in REGISTRY

    def test_aliases_share_kinds(self):
        assert spec_for("pread64").kind == spec_for("pread").kind
        assert spec_for("open64").kind == spec_for("open").kind
        assert spec_for("stat64").kind == spec_for("stat").kind
        assert spec_for("read_nocancel").kind == spec_for("read").kind

    def test_platform_availability(self):
        assert spec_for("exchangedata").available_on("darwin")
        assert not spec_for("exchangedata").available_on("linux")
        assert not spec_for("fallocate").available_on("darwin")
        assert spec_for("open").available_on("illumos")

    def test_unknown_call_raises(self):
        with pytest.raises(UnsupportedSyscallError):
            spec_for("io_uring_enter")

    def test_categories_cover_figure10_buckets(self):
        for bucket in ("read", "write", "fsync", "stat", "meta", "aio"):
            assert bucket in CATEGORIES

    def test_every_spec_has_valid_category(self):
        for spec in REGISTRY.values():
            assert spec.category in CATEGORIES, spec.name

    def test_every_kind_has_a_handler(self):
        from repro.syscalls.execute import HANDLERS

        for spec in REGISTRY.values():
            assert spec.kind in HANDLERS, spec.name
