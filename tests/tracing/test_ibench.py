"""Tests for the iBench dtrace trace format."""

import pytest

from repro.errors import TraceParseError
from repro.tracing import ibench

SAMPLE = "\n".join(
    [
        "# iBench dtrace capture",
        '1380000000123456\t85\t0x70000abc\topen\t"/Library/x.plist", 0x2, 0x1B6\t3',
        "1380000000123600\t12\t0x70000abc\tread\t0x3, 0x7fff5fbff000, 0x1000\t4096",
        "1380000000123700\t30\t0x70000abc\twrite_nocancel\t0x3, 0x10e43a000, 0x400\t1024",
        "1380000000123800\t5\t0x70000abc\tclose\t0x3\t0",
        '1380000000123900\t9\t0x70000def\tstat64\t"/missing"\t-1 ENOENT',
        '1380000000124000\t40\t0x70000def\tgetattrlist\t"/Library"\t0',
        '1380000000124100\t22\t0x70000abc\texchangedata\t"/a", "/b"\t0',
    ]
) + "\n"


class TestParsing(object):
    def test_parses_all_records(self):
        trace = ibench.loads(SAMPLE, label="sample")
        assert len(trace) == 7
        assert trace.platform == "darwin"
        assert trace.label == "sample"

    def test_timestamps_are_seconds(self):
        trace = ibench.loads(SAMPLE)
        record = trace[0]
        assert record.t_enter == pytest.approx(1380000000.123456)
        # Duration is a difference of two ~1.4e9 floats: allow float
        # resolution at that magnitude.
        assert record.duration == pytest.approx(85e-6, rel=0.01)

    def test_buffer_pointers_discarded(self):
        trace = ibench.loads(SAMPLE)
        read = trace[1]
        assert read.args == {"fd": 3, "nbytes": 4096}

    def test_flag_words_become_symbolic(self):
        trace = ibench.loads(SAMPLE)
        assert trace[0].args["flags"] == "O_RDWR"
        assert trace[0].args["mode"] == 0o666

    def test_errno_parsed(self):
        trace = ibench.loads(SAMPLE)
        stat = trace[4]
        assert not stat.ok
        assert stat.err == "ENOENT"

    def test_hex_thread_ids_preserved(self):
        trace = ibench.loads(SAMPLE)
        assert trace[0].tid == "0x70000abc"
        assert trace[4].tid == "0x70000def"

    def test_two_path_calls(self):
        trace = ibench.loads(SAMPLE)
        assert trace[6].args == {"path1": "/a", "path2": "/b"}

    def test_bad_field_count_raises(self):
        with pytest.raises(TraceParseError):
            ibench.loads("123\t45\ttid\topen\n")


class TestRoundTrip(object):
    def test_dumps_loads_round_trip(self):
        trace = ibench.loads(SAMPLE)
        clone = ibench.loads(ibench.dumps(trace))
        assert len(clone) == len(trace)
        for a, b in zip(trace.records, clone.records):
            assert a.name == b.name
            assert a.args == b.args
            assert a.err == b.err

    def test_file_round_trip(self, tmp_path):
        trace = ibench.loads(SAMPLE)
        path = str(tmp_path / "t.ibench")
        ibench.save(trace, path)
        assert len(ibench.load(path)) == len(trace)


class TestPipeline(object):
    def test_ibench_trace_compiles_and_replays(self):
        from repro.artc import compile_trace, replay, ReplayConfig
        from repro.artc.init import initialize
        from repro.tracing.snapshot import Snapshot
        from tests.conftest import make_fs

        text = "\n".join(
            [
                '100000000\t50\t0x1\topen\t"/w/f", 0x41, 0x1B6\t3',
                "100000100\t400\t0x1\twrite\t0x3, 0x0, 0x2000\t8192",
                "100000600\t9000\t0x1\tfsync\t0x3\t0",
                "100010000\t5\t0x1\tclose\t0x3\t0",
                '100010100\t20\t0x2\tstat64\t"/w/f"\t0',
            ]
        ) + "\n"
        trace = ibench.loads(text, label="mini")
        snapshot = Snapshot()
        snapshot.add("/w", "dir")
        bench = compile_trace(trace, snapshot)
        fs = make_fs()
        initialize(fs, snapshot)
        report = replay(bench, fs, ReplayConfig())
        assert report.failures == 0
