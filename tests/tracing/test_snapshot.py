"""Tests for file-tree snapshots."""

import pytest

from repro.errors import SnapshotError
from repro.tracing.snapshot import Snapshot
from tests.conftest import make_fs


@pytest.fixture
def fs():
    filesystem = make_fs()
    filesystem.makedirs_now("/data/sub")
    filesystem.create_file_now("/data/file", size=12345)
    node = filesystem.create_file_now("/data/sub/deep", size=1)
    node.xattrs["user.k"] = 8
    filesystem.symlink_now("/data/file", "/data/link")
    return filesystem


class TestCapture(object):
    def test_captures_types_sizes_targets(self, fs):
        snap = Snapshot.capture(fs, roots=("/data",))
        by_path = {e.path: e for e in snap}
        assert by_path["/data"].ftype == "dir"
        assert by_path["/data/file"].size == 12345
        assert by_path["/data/link"].target == "/data/file"
        assert by_path["/data/sub/deep"].xattrs == ["user.k"]

    def test_xattrs_can_be_omitted(self, fs):
        snap = Snapshot.capture(fs, roots=("/data",), include_xattrs=False)
        assert snap.entry_for("/data/sub/deep").xattrs == []

    def test_dev_excluded(self, fs):
        snap = Snapshot.capture(fs, roots=("/",))
        assert not any(p.startswith("/dev") for p in snap.paths())

    def test_missing_root_raises(self, fs):
        with pytest.raises(SnapshotError):
            Snapshot.capture(fs, roots=("/nope",))


class TestValidation(object):
    def test_valid_snapshot_passes(self, fs):
        Snapshot.capture(fs, roots=("/data",)).validate()

    def test_duplicate_rejected(self):
        snap = Snapshot()
        snap.add("/a", "dir")
        snap.add("/a", "dir")
        with pytest.raises(SnapshotError):
            snap.validate()

    def test_orphan_rejected(self):
        snap = Snapshot()
        snap.add("/a/b/c", "reg")
        with pytest.raises(SnapshotError):
            snap.validate()

    def test_symlink_without_target_rejected(self):
        snap = Snapshot()
        snap.add("/l", "symlink")
        with pytest.raises(SnapshotError):
            snap.validate()


class TestSerialization(object):
    def test_json_round_trip(self, fs):
        snap = Snapshot.capture(fs, roots=("/data",), label="rt")
        clone = Snapshot.loads(snap.dumps())
        assert clone.label == "rt"
        assert clone.paths() == snap.paths()
        assert clone.entry_for("/data/file").size == 12345

    def test_file_round_trip(self, fs, tmp_path):
        snap = Snapshot.capture(fs, roots=("/data",))
        path = str(tmp_path / "snap.json")
        snap.save(path)
        assert Snapshot.load(path).paths() == snap.paths()

    def test_loads_rejects_garbage(self):
        with pytest.raises(SnapshotError):
            Snapshot.loads('{"format": "nope"}')

    def test_sorted_parents_first(self):
        snap = Snapshot()
        snap.add("/a/b/c", "reg")
        snap.add("/a", "dir")
        snap.add("/a/b", "dir")
        assert [e.path for e in snap.sorted()] == ["/a", "/a/b", "/a/b/c"]
