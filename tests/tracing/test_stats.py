"""Tests for trace statistics."""

import pytest

from repro.tracing.stats import format_statistics, trace_statistics
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None, dur=0.01):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + dur)


@pytest.fixture
def trace():
    return Trace(
        [
            rec(0, 1, "open", {"path": "/a/f", "flags": "O_RDONLY"}, ret=3),
            rec(1, 1, "read", {"fd": 3, "nbytes": 4096}, ret=4096),
            rec(2, 2, "pwrite", {"fd": 4, "nbytes": 100, "offset": 0}, ret=100),
            rec(3, 2, "stat", {"path": "/a/f"}, ret=-1, err="ENOENT"),
            rec(4, 1, "read", {"fd": 3, "nbytes": 4096}, ret=2048),
        ],
        platform="linux",
        label="stats-test",
    )


class TestStatistics(object):
    def test_counts(self, trace):
        stats = trace_statistics(trace)
        assert stats["records"] == 5
        assert stats["threads"] == {1: 3, 2: 2}
        assert stats["by_name"]["read"] == 2
        assert stats["by_category"]["read"] == 2
        assert stats["by_category"]["write"] == 1

    def test_byte_volumes(self, trace):
        stats = trace_statistics(trace)
        assert stats["bytes_read"] == 4096 + 2048
        assert stats["bytes_written"] == 100

    def test_failures(self, trace):
        assert trace_statistics(trace)["failures"] == {"ENOENT": 1}

    def test_hot_paths(self, trace):
        top = dict(trace_statistics(trace)["top_paths"])
        assert top["/a/f"] == 2

    def test_outstanding(self, trace):
        stats = trace_statistics(trace)
        assert stats["in_call_time"] == pytest.approx(0.05)
        assert stats["mean_outstanding"] > 0

    def test_empty_trace(self):
        stats = trace_statistics(Trace())
        assert stats["records"] == 0
        assert stats["mean_outstanding"] == 0.0

    def test_formatting(self, trace):
        text = format_statistics(trace_statistics(trace))
        assert "stats-test" in text
        assert "ENOENT" in text
        assert "/a/f" in text


class TestCli(object):
    def test_stats_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.tracing import strace

        trace = Trace(
            [rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3)],
            label="cli",
        )
        path = str(tmp_path / "t.strace")
        strace.save(trace, path)
        assert main(["stats", path]) == 0
        assert "1 records" in capsys.readouterr().out
