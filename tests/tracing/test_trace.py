"""Tests for the trace model and JSON format."""

import pytest

from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid=1, name="stat", args=None, ret=0, err=None, t=None):
    t = float(idx) if t is None else t
    return TraceRecord(idx, tid, name, args or {"path": "/x"}, ret, err, t, t + 0.5)


class TestTraceRecord(object):
    def test_ok_and_duration(self):
        record = rec(0)
        assert record.ok
        assert record.duration == 0.5

    def test_failed_record(self):
        record = rec(0, ret=-1, err="ENOENT")
        assert not record.ok

    def test_dict_round_trip(self):
        record = rec(3, tid="T2", name="open", args={"path": "/f", "flags": "O_RDONLY"}, ret=4)
        clone = TraceRecord.from_dict(record.to_dict())
        assert clone.idx == 3
        assert clone.tid == "T2"
        assert clone.args == record.args
        assert clone.ret == 4


class TestTrace(object):
    def test_threads_in_first_appearance_order(self):
        trace = Trace([rec(0, tid="B"), rec(1, tid="A"), rec(2, tid="B")])
        assert trace.threads == ["B", "A"]

    def test_duration_spans_all_records(self):
        trace = Trace([rec(0, t=1.0), rec(1, t=5.0)])
        assert trace.duration == pytest.approx(4.5)

    def test_empty_trace(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.threads == []

    def test_by_thread_partitions(self):
        trace = Trace([rec(0, tid=1), rec(1, tid=2), rec(2, tid=1)])
        groups = trace.by_thread()
        assert [r.idx for r in groups[1]] == [0, 2]
        assert [r.idx for r in groups[2]] == [1]

    def test_json_round_trip(self):
        trace = Trace(
            [rec(0, name="open", args={"path": "/a", "flags": "O_RDONLY"}, ret=3),
             rec(1, name="read", args={"fd": 3, "nbytes": 100}, ret=100),
             rec(2, name="stat", args={"path": "/nope"}, ret=-1, err="ENOENT")],
            platform="darwin",
            label="demo",
        )
        clone = Trace.loads(trace.dumps())
        assert clone.platform == "darwin"
        assert clone.label == "demo"
        assert len(clone) == 3
        assert clone[2].err == "ENOENT"
        assert clone[1].args == {"fd": 3, "nbytes": 100}

    def test_loads_rejects_garbage(self):
        with pytest.raises(ValueError):
            Trace.loads('{"format": "not-a-trace"}\n')

    def test_save_load_file(self, tmp_path):
        trace = Trace([rec(0)], label="file-test")
        path = tmp_path / "t.jsonl"
        trace.save(str(path))
        assert Trace.load(str(path)).label == "file-test"

    def test_sort_by_issue(self):
        trace = Trace([rec(0, t=5.0), rec(1, t=1.0), rec(2, t=3.0)])
        trace.sort_by_issue()
        assert [r.t_enter for r in trace.records] == [1.0, 3.0, 5.0]
        assert [r.idx for r in trace.records] == [0, 1, 2]

    def test_renumber(self):
        trace = Trace([rec(5), rec(9)])
        trace.renumber()
        assert [r.idx for r in trace.records] == [0, 1]
