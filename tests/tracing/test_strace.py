"""Tests for the strace-compatible text format."""

import pytest

from repro.errors import TraceParseError
from repro.tracing import strace
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None, t=None):
    t = float(idx) if t is None else t
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.25)


@pytest.fixture
def sample():
    return Trace(
        [
            rec(0, 101, "open", {"path": "/a/b", "flags": "O_RDWR|O_CREAT", "mode": 0o644}, ret=3),
            rec(1, 101, "write", {"fd": 3, "nbytes": 4096}, ret=4096),
            rec(2, 102, "stat", {"path": "/missing"}, ret=-1, err="ENOENT"),
            rec(3, 101, "rename", {"old": "/a/b", "new": "/a/c"}),
            rec(4, 102, "pread", {"fd": 3, "nbytes": 100, "offset": 8192}, ret=100),
            rec(5, 101, "aio_suspend", {"aiocbs": ["cb1", "cb2"]}),
            rec(6, 101, "getxattr", {"path": "/a/c", "xname": "user.k"}, ret=-1, err="ENODATA"),
        ],
        platform="darwin",
        label="fmt-test",
    )


class TestEmission(object):
    def test_lines_look_like_strace(self, sample):
        text = strace.dumps(sample)
        lines = text.splitlines()
        assert lines[0].startswith("#")
        assert '101 0.000000 open("/a/b", O_RDWR|O_CREAT, 420) = 3' in lines[1]
        assert "ENOENT" in lines[3]
        assert lines[1].endswith("<0.250000>")

    def test_header_carries_platform(self, sample):
        assert "platform=darwin" in strace.dumps(sample).splitlines()[0]


class TestRoundTrip(object):
    def test_full_round_trip(self, sample):
        clone = strace.loads(strace.dumps(sample))
        assert clone.platform == "darwin"
        assert clone.label == "fmt-test"
        assert len(clone) == len(sample)
        for original, copy in zip(sample.records, clone.records):
            assert copy.tid == original.tid
            assert copy.name == original.name
            assert copy.args == original.args
            assert copy.err == original.err
            assert copy.t_enter == pytest.approx(original.t_enter)
            assert copy.duration == pytest.approx(original.duration)

    def test_ret_values_preserved(self, sample):
        clone = strace.loads(strace.dumps(sample))
        assert clone[0].ret == 3
        assert clone[2].ret == -1

    def test_file_round_trip(self, sample, tmp_path):
        path = str(tmp_path / "trace.strace")
        strace.save(sample, path)
        assert len(strace.load(path)) == len(sample)


class TestParsing(object):
    def test_parse_hand_written_line(self):
        trace = strace.loads(
            '7 12.500000 open("/etc/fstab", O_RDONLY) = 5 <0.000100>\n'
        )
        record = trace[0]
        assert record.tid == 7
        assert record.args == {"path": "/etc/fstab", "flags": "O_RDONLY"}
        assert record.ret == 5

    def test_parse_quoted_path_with_spaces_and_parens(self):
        trace = strace.loads(
            '1 0.1 stat("/My Photos (2013)/a, b.jpg") = 0 <0.000010>\n'
        )
        assert trace[0].args["path"] == "/My Photos (2013)/a, b.jpg"

    def test_parse_escaped_quote_in_path(self):
        trace = strace.loads('1 0.1 stat("/a\\"b") = 0 <0.000010>\n')
        assert trace[0].args["path"] == '/a"b'

    def test_comments_and_blanks_skipped(self):
        trace = strace.loads("\n# platform=freebsd\n\n1 0.1 sync() = 0 <0.001>\n")
        assert trace.platform == "freebsd"
        assert len(trace) == 1

    def test_malformed_line_raises_with_location(self):
        with pytest.raises(TraceParseError) as info:
            strace.loads("1 0.1 open(/x = 0 <0.1>\n")
        assert info.value.line_number == 1

    def test_missing_duration_raises(self):
        with pytest.raises(TraceParseError):
            strace.loads('1 0.1 stat("/x") = 0\n')

    def test_unknown_call_raises(self):
        from repro.errors import UnsupportedSyscallError

        with pytest.raises(UnsupportedSyscallError):
            strace.loads("1 0.1 frobnicate(3) = 0 <0.1>\n")


class TestEndToEnd(object):
    def test_parsed_trace_is_compilable_and_replayable(self, tmp_path):
        """strace text -> Trace -> compile -> replay."""
        text = "\n".join(
            [
                "# platform=linux label=hand",
                '1 0.000100 mkdir("/w", 493) = 0 <0.000050>',
                '1 0.000200 open("/w/f", O_WRONLY|O_CREAT, 420) = 3 <0.000080>',
                "1 0.000300 write(3, 8192) = 8192 <0.000200>",
                "2 0.000400 stat(\"/w/f\") = 0 <0.000020>",
                "1 0.000600 fsync(3) = 0 <0.010000>",
                "1 0.010700 close(3) = 0 <0.000010>",
                '2 0.010800 unlink("/w/f") = 0 <0.000090>',
            ]
        )
        trace = strace.loads(text)
        from repro.artc import compile_trace, replay, ReplayConfig
        from repro.artc.init import initialize
        from repro.tracing.snapshot import Snapshot
        from tests.conftest import make_fs

        snapshot = Snapshot(label="hand")
        bench = compile_trace(trace, snapshot)
        fs = make_fs()
        initialize(fs, snapshot)
        report = replay(bench, fs, ReplayConfig())
        assert report.failures == 0
        assert report.n_actions == 7
