"""Tests for the passive tracer."""

from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


def test_untraced_calls_leave_no_records():
    fs = make_fs()
    osapi = TracedOS(fs)

    def body():
        yield from osapi.call(1, "mkdir", path="/d", mode=0o755)

    fs.engine.run_process(body())
    assert osapi.trace is None


def test_records_capture_everything():
    fs = make_fs()
    fs.create_file_now("/f", size=100)
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="t", platform="linux")

    def body():
        fd, err = yield from osapi.call(1, "open", path="/f", flags="O_RDONLY")
        yield from osapi.call(2, "read", fd=fd, nbytes=50)
        yield from osapi.call(1, "stat", path="/nope")

    fs.engine.run_process(body())
    assert len(trace) == 3
    open_rec, read_rec, stat_rec = trace.records
    assert open_rec.name == "open" and open_rec.ret == 3 and open_rec.ok
    assert open_rec.args == {"path": "/f", "flags": "O_RDONLY"}
    assert read_rec.tid == 2 and read_rec.ret == 50
    assert stat_rec.err == "ENOENT"
    assert open_rec.t_return >= open_rec.t_enter
    assert read_rec.idx == 1


def test_stat_results_serialized_jsonable():
    fs = make_fs()
    fs.create_file_now("/f", size=100)
    osapi = TracedOS(fs)
    trace = osapi.start_tracing()

    def body():
        yield from osapi.call(1, "stat", path="/f")
        yield from osapi.call(1, "pipe")

    fs.engine.run_process(body())
    import json

    json.dumps(trace.records[0].ret)  # stat result must be JSON-safe
    assert trace.records[1].ret == [3, 4]


def test_tracing_does_not_perturb_timing():
    def run(traced):
        fs = make_fs()
        fs.create_file_now("/f", size=1 << 20)
        osapi = TracedOS(fs)
        if traced:
            osapi.start_tracing()

        def body():
            fd, _ = yield from osapi.call(1, "open", path="/f", flags="O_RDONLY")
            for index in range(32):
                yield from osapi.call(1, "pread", fd=fd, nbytes=4096, offset=index * 16384)

        fs.engine.run_process(body())
        return fs.engine.now

    assert run(True) == run(False)  # passive tracing: zero overhead
