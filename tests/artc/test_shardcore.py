"""Tests for the sharded multi-process replay core."""

import pytest

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.core.modes import ReplayMode
from repro.errors import ReplayError
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults.harden import HardenConfig
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from repro.verify.abstract import fs_digest
from repro.vfs.nodes import FileType
from tests.conftest import make_fs


def rec(idx, tid, name, args, ret=0, err=None, dur=0.001):
    t = float(idx) / 10
    return TraceRecord(idx, tid, name, args, ret, err, t, t + dur)


def file_series(records, tid, path, fd, nbytes=1024, read_ret=None):
    base = len(records)
    records += [
        rec(base, tid, "open", {"path": path, "flags": "O_RDWR|O_CREAT"},
            ret=fd),
        rec(base + 1, tid, "write", {"fd": fd, "nbytes": nbytes}, ret=nbytes),
        rec(base + 2, tid, "pread",
            {"fd": fd, "nbytes": nbytes, "offset": 0},
            ret=nbytes if read_ret is None else read_ret),
        rec(base + 3, tid, "close", {"fd": fd}),
    ]


def bench_of(records):
    # Seed every parent directory the trace touches; O_CREAT opens
    # mutate their directory, so per-thread directories are what keep
    # independent threads in independent resource components.
    snap = Snapshot()
    for parent in sorted({
        record.args["path"].rsplit("/", 1)[0]
        for record in records if "path" in record.args
    }):
        if parent:
            snap.add(parent, FileType.DIR)
    return compile_trace(Trace(records, platform="linux"), snap)


def parallel_bench(n_groups=4, read_ret=None):
    records = []
    for group in range(n_groups):
        file_series(records, "T%d" % group, "/d%d/f" % group, 3 + group,
                    read_ret=read_ret)
    return bench_of(records)


def run(bench, core, jobs=1, mode=ReplayMode.ARTC, seed=7, **kwargs):
    fs = make_fs(seed=seed)
    initialize(fs, bench.snapshot)
    report = replay(
        bench, fs, ReplayConfig(mode=mode, core=core, jobs=jobs, **kwargs)
    )
    return report, fs


def result_tuples(report):
    return [
        (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err, r.matched,
         r.skipped)
        for r in report.results
    ]


def semantic_tuples(report):
    return [
        (r.idx, r.tid, r.name, r.err, r.matched, r.skipped)
        for r in report.results
    ]


class TestShardReplay(object):
    def test_jobs1_byte_identical_to_scoreboard(self):
        bench = parallel_bench()
        scoreboard, fs_a = run(bench, "scoreboard")
        sharded, fs_b = run(bench, "shard", jobs=1)
        assert result_tuples(scoreboard) == result_tuples(sharded)
        assert scoreboard.summary() == sharded.summary()
        assert fs_digest(fs_a) == fs_digest(fs_b)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_multiprocess_matches_event_core(self, jobs):
        bench = parallel_bench()
        events, fs_a = run(bench, "events")
        sharded, fs_b = run(bench, "shard", jobs=jobs)
        assert semantic_tuples(events) == semantic_tuples(sharded)
        assert events.failures == sharded.failures
        assert events.warning_counts() == sharded.warning_counts()
        assert fs_digest(fs_a) == fs_digest(fs_b)

    def test_multiprocess_merges_warnings(self):
        # Every pread is short (trace claims 4096, replay sees 1024):
        # four emissions from four shards must merge into the same
        # single collapsed warning the one-process replay reports.
        bench = parallel_bench(read_ret=4096)
        events, _ = run(bench, "events")
        sharded, _ = run(bench, "shard", jobs=4)
        assert events.failures == 4
        assert sharded.failures == 4
        assert events.warning_counts() == sharded.warning_counts()
        assert len(sharded.warnings) == len(events.warnings) == 1
        assert sharded.warnings[0].message == events.warnings[0].message

    def test_shard_stats_attached(self):
        bench = parallel_bench()
        sharded, _ = run(bench, "shard", jobs=2)
        stats = sharded.shard_stats
        assert stats["shards"] == 2
        assert stats["worker_actions"] and sum(stats["worker_actions"]) == 16
        assert "cut_fraction" in stats and "cross_waits" in stats

    def test_single_component_degenerates_to_one_worker(self):
        # One shared file: everything is one component, so jobs=4
        # still replays in-process, byte-identical to the scoreboard.
        records = []
        file_series(records, "T1", "/data/shared", 3)
        base = len(records)
        records += [
            rec(base, "T2", "open", {"path": "/data/shared",
                                     "flags": "O_RDONLY"}, ret=4),
            rec(base + 1, "T2", "close", {"fd": 4}),
        ]
        bench = bench_of(records)
        scoreboard, fs_a = run(bench, "scoreboard")
        sharded, fs_b = run(bench, "shard", jobs=4)
        assert result_tuples(scoreboard) == result_tuples(sharded)
        assert fs_digest(fs_a) == fs_digest(fs_b)
        assert sharded.shard_stats["shards"] == 1


class TestSupportEnvelope(object):
    def test_temporal_refused_at_any_jobs(self):
        bench = parallel_bench()
        for jobs in (1, 2):
            with pytest.raises(ReplayError, match="temporal"):
                run(bench, "shard", jobs=jobs, mode=ReplayMode.TEMPORAL)

    def test_harden_refused(self):
        bench = parallel_bench()
        with pytest.raises(ReplayError, match="harden"):
            run(bench, "shard", jobs=2, harden=HardenConfig(degrade=True))

    def test_non_artc_modes_refused_at_jobs_above_one(self):
        bench = parallel_bench()
        for mode in (ReplayMode.SINGLE, ReplayMode.UNCONSTRAINED):
            with pytest.raises(ReplayError, match="jobs 1"):
                run(bench, "shard", jobs=2, mode=mode)
            # ...but jobs=1 runs them through the scoreboard fallback.
            report, _ = run(bench, "shard", jobs=1, mode=mode)
            assert report.n_actions == 16

    def test_fault_injection_refused_at_jobs_above_one(self):
        bench = parallel_bench()
        fs = make_fs(seed=7)
        plan = FaultPlan([FaultRule("eio", at=0.5)])
        fs.stack.attach_faults(FaultInjector(plan))
        initialize(fs, bench.snapshot)
        with pytest.raises(ReplayError, match="fault"):
            replay(bench, fs, ReplayConfig(core="shard", jobs=2))

    def test_jobs_validation(self):
        with pytest.raises(ReplayError, match="positive"):
            ReplayConfig(core="shard", jobs=0)
        with pytest.raises(ReplayError, match="shard"):
            ReplayConfig(core="jit", jobs=2)
        with pytest.raises(ReplayError, match="positive"):
            ReplayConfig(core="shard", jobs="2")
