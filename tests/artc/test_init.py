"""Tests for target initialization (full, delta, overlay)."""

import pytest

from repro.artc.init import delta_init, initialize, overlay
from repro.tracing.snapshot import Snapshot
from tests.conftest import make_fs


@pytest.fixture
def snapshot():
    snap = Snapshot(label="init-test")
    snap.add("/data", "dir")
    snap.add("/data/sub", "dir")
    snap.add("/data/file", "reg", size=4096, xattrs=["user.tag"])
    snap.add("/data/big", "reg", size=1 << 20)
    snap.add("/data/link", "symlink", target="/data/file")
    return snap


class TestInitialize(object):
    def test_restores_everything(self, snapshot):
        fs = make_fs()
        stats = initialize(fs, snapshot)
        assert fs.lookup("/data/file").size == 4096
        assert fs.lookup("/data/big").size == 1 << 20
        assert fs.lookup("/data/link", follow=False).symlink_target == "/data/file"
        assert "user.tag" in fs.lookup("/data/file").xattrs
        assert stats.files_created == 2
        assert stats.dirs_created == 2
        assert stats.symlinks_created == 1

    def test_dev_random_symlinked_on_linux(self, snapshot):
        fs = make_fs(platform="linux")
        initialize(fs, snapshot)
        node = fs.lookup("/dev/random", follow=False)
        assert node.is_symlink
        assert node.symlink_target == "/dev/urandom"

    def test_dev_random_left_alone_on_darwin(self, snapshot):
        fs = make_fs(platform="darwin")
        initialize(fs, snapshot)
        assert not fs.lookup("/dev/random", follow=False).is_symlink

    def test_dev_random_opt_out(self, snapshot):
        fs = make_fs(platform="linux")
        initialize(fs, snapshot, dev_random_to_urandom=False)
        assert not fs.lookup("/dev/random", follow=False).is_symlink

    def test_prefix_relocates_tree(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot, prefix="/run1")
        assert fs.exists("/run1/data/file")
        assert not fs.exists("/data/file")

    def test_metadata_cache_warm_after_init(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        ino = fs.lookup("/data/file").ino
        assert fs.stack.cache.contains(("ino", ino))


class TestDeltaInit(object):
    def test_noop_when_already_initialized(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        stats = delta_init(fs, snapshot)
        assert stats.files_created == 0
        assert stats.entries_removed == 0
        assert stats.files_resized == 0

    def test_removes_stray_files(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        fs.create_file_now("/data/stray", size=10)
        stats = delta_init(fs, snapshot)
        assert stats.entries_removed == 1
        assert not fs.exists("/data/stray")

    def test_restores_sizes(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        fs.lookup("/data/file").size = 99
        stats = delta_init(fs, snapshot)
        assert stats.files_resized == 1
        assert fs.lookup("/data/file").size == 4096

    def test_recreates_deleted_entries(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        fs.unlink_now("/data/file")
        stats = delta_init(fs, snapshot)
        assert stats.files_created == 1
        assert fs.lookup("/data/file").size == 4096

    def test_fixes_wrong_symlink_target(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        fs.unlink_now("/data/link")
        fs.symlink_now("/elsewhere", "/data/link")
        delta_init(fs, snapshot)
        assert fs.lookup("/data/link", follow=False).symlink_target == "/data/file"

    def test_delta_cheaper_than_full(self, snapshot):
        fs = make_fs()
        initialize(fs, snapshot)
        fs.create_file_now("/data/stray")
        stats = delta_init(fs, snapshot)
        total_changes = sum(stats.as_dict().values())
        assert total_changes == 1


class TestOverlay(object):
    def test_two_snapshots_coexist_under_prefixes(self, snapshot):
        other = Snapshot()
        other.add("/data", "dir")
        other.add("/data/other", "reg", size=7)
        fs = make_fs()
        overlay(fs, [snapshot, other], prefixes=["/iphoto", "/itunes"])
        assert fs.exists("/iphoto/data/file")
        assert fs.exists("/itunes/data/other")

    def test_prefix_count_mismatch_rejected(self, snapshot):
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            overlay(make_fs(), [snapshot], prefixes=["/a", "/b"])
