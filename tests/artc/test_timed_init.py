"""Tests for timed (syscall-driven) initialization and aio_seq mode."""

import pytest

from repro.artc.init import initialize, timed_initialize
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


@pytest.fixture
def snapshot():
    snap = Snapshot()
    snap.add("/data", "dir")
    snap.add("/data/small", "reg", size=4096)
    snap.add("/data/big", "reg", size=4 << 20)
    snap.add("/data/link", "symlink", target="/data/small")
    return snap


class TestTimedInit(object):
    def test_restores_tree_through_syscalls(self, snapshot):
        fs = make_fs()
        osapi = TracedOS(fs)
        stats = fs.engine.run_process(timed_initialize(osapi, snapshot))
        assert fs.lookup("/data/big").size == 4 << 20
        assert fs.lookup("/data/link", follow=False).symlink_target == "/data/small"
        assert stats.files_created == 2
        assert fs.stack.cache.dirty_count == 0  # final sync flushed

    def test_costs_real_time(self, snapshot):
        fs = make_fs()
        osapi = TracedOS(fs)
        fs.engine.run_process(timed_initialize(osapi, snapshot))
        # Writing 4 MB to disk takes real simulated time.
        assert fs.engine.now > 0.01

    def test_instant_init_matches_timed_init_state(self, snapshot):
        fs_timed = make_fs()
        osapi = TracedOS(fs_timed)
        fs_timed.engine.run_process(timed_initialize(osapi, snapshot))
        fs_instant = make_fs()
        initialize(fs_instant, snapshot, dev_random_to_urandom=False)
        for entry in snapshot:
            timed_node = fs_timed.lookup(entry.path, follow=False)
            instant_node = fs_instant.lookup(entry.path, follow=False)
            assert timed_node.ftype == instant_node.ftype
            if timed_node.is_reg:
                assert timed_node.size == instant_node.size

    def test_calls_appear_in_trace_when_traced(self, snapshot):
        fs = make_fs()
        osapi = TracedOS(fs)
        trace = osapi.start_tracing(label="init")
        fs.engine.run_process(timed_initialize(osapi, snapshot))
        names = {r.name for r in trace}
        assert {"mkdir", "open", "pwrite", "close", "symlink", "sync"} <= names


class TestAioSeqMode(object):
    def test_aio_seq_chains_generations(self):
        from repro.core.deps import build_dependencies
        from repro.core.model import TraceModel
        from repro.core.modes import RuleSet
        from repro.tracing.trace import Trace, TraceRecord

        def rec(idx, tid, name, args, ret=0):
            return TraceRecord(idx, tid, name, args, ret, None, idx, idx + 0.1)

        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 1 << 20}, ret=1 << 20),
            rec(2, "T1", "aio_read", {"aiocb": "cb", "fd": 3, "nbytes": 100, "offset": 0}),
            rec(3, "T2", "aio_error", {"aiocb": "cb"}),
            rec(4, "T2", "aio_return", {"aiocb": "cb"}, ret=100),
        ]
        model = TraceModel(Trace(records), Snapshot())
        stage = build_dependencies(model.actions, RuleSet())
        seq = build_dependencies(model.actions, RuleSet(aio_seq=True))
        # Sequential chains error -> return even across threads;
        # stage orders submit < {error, return} but not error < return.
        assert ("aio_seq" in seq.edge_kinds.values()) or seq.n_edges >= stage.n_edges
        assert any(kind == "aio_seq" for kind in seq.edge_kinds.values())

    def test_default_keeps_aio_stage(self):
        from repro.core.modes import RuleSet

        rules = RuleSet.artc_default()
        assert rules.aio_stage and not rules.aio_seq
