"""Tests for the ASCII timeline rendering (Figure 9 output)."""

from repro.artc.report import ActionResult, ReplayReport


def make_report():
    report = ReplayReport("artc")
    report.started = 0.0
    report.add(ActionResult(0, 1, "read", 0.0, 0.5, 0, None, True))
    report.add(ActionResult(1, 2, "read", 0.25, 0.75, 0, None, True))
    report.add(ActionResult(2, 1, "read", 0.6, 1.0, 0, None, True))
    report.finished = 1.0
    return report


def test_rows_per_thread():
    text = make_report().render_timeline(width=40)
    lines = text.splitlines()
    assert len(lines) == 3  # header + two threads
    assert lines[1].startswith("T1")
    assert lines[2].startswith("T2")


def test_busy_and_idle_cells():
    text = make_report().render_timeline(width=40)
    t1_row = text.splitlines()[1]
    cells = t1_row[t1_row.index("|") + 1 : t1_row.rindex("|")]
    assert "#" in cells
    assert "." in cells  # T1 idles between its two calls


def test_window_restriction():
    report = make_report()
    text = report.render_timeline(width=40, span=(0.0, 0.5))
    t2_row = text.splitlines()[2]
    cells = t2_row[t2_row.index("|") + 1 : t2_row.rindex("|")]
    # T2's call starts halfway through this window.
    assert cells[:10].count("#") == 0


def test_empty_report():
    assert "empty" in ReplayReport("artc").render_timeline()
