"""Batched release == serial release, on adversarial graphs.

The JIT core broadcasts a completion with :func:`planir.release_batched`
(one decrement pass per same-thread run, one waiting-table probe per
run); the scoreboard core uses the one-at-a-time reference semantics
(:func:`planir.release_serial`).  These tests drive both over the same
state and demand identical counters, identical waiting tables, and
identical wake sequences.
"""

from repro.artc import planir


class FakeGate(object):
    def __init__(self):
        self.opens = 0

    def open(self):
        self.opens += 1


def run_both(pending, waiting, succ_list, tid_of):
    """Run serial and batched release over copies of one state; return
    both (pending, waiting, gate-open counts, woken) tuples."""
    tids = set(tid_of.values()) | set(waiting)
    out = []
    for release in ("serial", "batched"):
        p = dict(pending)
        w = dict(waiting)
        gates = {tid: FakeGate() for tid in tids}
        if release == "serial":
            woken = planir.release_serial(p, w, gates, succ_list, tid_of)
        else:
            runs = planir.release_runs(succ_list, tid_of)
            woken = planir.release_batched(p, w, gates, runs)
        out.append((p, w, {t: g.opens for t, g in gates.items()}, woken))
    return out


def assert_equivalent(pending, waiting, succ_list, tid_of):
    serial, batched = run_both(pending, waiting, succ_list, tid_of)
    assert serial == batched
    return serial


class TestAdversarialGraphs(object):
    def test_fan_in_single_run(self):
        # One thread owns every successor (a primary delete releasing a
        # fan-in of renames): one maximal run, one probe.
        tid_of = {i: "a" for i in range(6)}
        pending = {i: 1 for i in range(6)}
        waiting = {"a": 3}
        p, w, opens, woken = assert_equivalent(
            pending, waiting, list(range(6)), tid_of
        )
        assert woken == ["a"]
        assert w == {}
        assert all(v == 0 for v in p.values())

    def test_cross_thread_chain_alternating(self):
        # a,b,a,b,... -- worst case for batching: every run has length 1.
        tid_of = {i: ("a" if i % 2 == 0 else "b") for i in range(8)}
        pending = {i: 1 for i in range(8)}
        waiting = {"a": 0, "b": 5}
        p, w, opens, woken = assert_equivalent(
            pending, waiting, list(range(8)), tid_of
        )
        assert woken == ["a", "b"]
        assert opens == {"a": 1, "b": 1}

    def test_parked_action_still_pending_after_batch(self):
        # The parked action is in the run but other predecessors remain:
        # no wake from either implementation.
        tid_of = {0: "a", 1: "a"}
        pending = {0: 2, 1: 1}
        waiting = {"a": 0}
        p, w, opens, woken = assert_equivalent(pending, waiting, [0, 1], tid_of)
        assert woken == []
        assert w == {"a": 0}
        assert p == {0: 1, 1: 0}

    def test_parked_on_action_outside_release(self):
        # Thread parked on an action this release never touches.
        tid_of = {0: "a", 9: "a"}
        pending = {0: 1, 9: 1}
        waiting = {"a": 9}
        p, w, opens, woken = assert_equivalent(pending, waiting, [0], tid_of)
        assert woken == []
        assert w == {"a": 9}

    def test_mid_run_zero_probed_after_run(self):
        # The parked action hits zero in the middle of a long run; the
        # batched probe happens after the run, the serial wake inside
        # it -- the observable state must still agree.
        tid_of = {i: "a" for i in range(5)}
        pending = {i: 1 for i in range(5)}
        waiting = {"a": 2}
        p, w, opens, woken = assert_equivalent(
            pending, waiting, list(range(5)), tid_of
        )
        assert woken == ["a"]
        assert opens["a"] == 1

    def test_interleaved_runs_wake_in_list_order(self):
        # Two threads each parked; their runs appear in list order, so
        # wake order must follow the successor list, not tid order.
        tid_of = {0: "b", 1: "b", 2: "a", 3: "a", 4: "b"}
        pending = {i: 1 for i in range(5)}
        waiting = {"a": 2, "b": 4}
        p, w, opens, woken = assert_equivalent(
            pending, waiting, [0, 1, 2, 3, 4], tid_of
        )
        assert woken == ["a", "b"]

    def test_empty_release(self):
        assert_equivalent({}, {"a": 0}, [], {})

    def test_empty_waiting_table(self):
        tid_of = {i: "a" for i in range(4)}
        pending = {i: 2 for i in range(4)}
        p, w, opens, woken = assert_equivalent(
            pending, {}, list(range(4)), tid_of
        )
        assert woken == []
        assert all(v == 1 for v in p.values())

    def test_three_thread_shuffle(self):
        order = [0, 3, 1, 4, 2, 5, 6, 7]
        tid_of = {0: "a", 1: "b", 2: "c", 3: "a", 4: "b", 5: "c",
                  6: "a", 7: "a"}
        pending = {0: 1, 1: 2, 2: 1, 3: 1, 4: 1, 5: 2, 6: 1, 7: 3}
        waiting = {"a": 6, "b": 4, "c": 2}
        assert_equivalent(pending, waiting, order, tid_of)
