"""Tests for the trace-specializing JIT core (:mod:`repro.artc.codegen`)."""

import json

import pytest

from repro.artc import artifact, codegen, planir
from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.core.modes import ReplayMode
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


def build_benchmark(seed=7):
    fs = make_fs(seed=seed)
    fs.makedirs_now("/w")
    fs.create_file_now("/w/a", size=32768)
    snapshot = Snapshot.capture(fs, roots=("/w",), label="codegen-test")
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="codegen-test", platform="linux")

    def body(tid):
        fd, err = yield from osapi.call(tid, "open", path="/w/a", flags="O_RDWR")
        yield from osapi.call(tid, "read", fd=fd, nbytes=4096)
        yield from osapi.call(tid, "write", fd=fd, nbytes=2048)
        yield from osapi.call(tid, "stat", path="/w/a")
        yield from osapi.call(
            tid, "open", path="/w/t%s" % tid, flags="O_CREAT|O_WRONLY"
        )
        yield from osapi.call(tid, "fsync", fd=fd)
        yield from osapi.call(tid, "close", fd=fd)

    for tid in (1, 2, 3):
        fs.engine.spawn(body(tid))
    fs.engine.run()
    return compile_trace(trace, snapshot)


@pytest.fixture(scope="module")
def bench():
    return build_benchmark()


def fingerprint(bench, mode, core, seed=0):
    fs = make_fs(seed=seed)
    initialize(fs, bench.snapshot)
    fs.stack.drop_caches()
    report = replay(bench, fs, ReplayConfig(mode=mode, core=core))
    payload = json.dumps(
        [
            report.summary(),
            [
                (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err,
                 r.matched, r.skipped)
                for r in report.results
            ],
        ],
        sort_keys=True,
    )
    final = Snapshot.capture(fs, roots=("/",), label="final")
    return payload + final.dumps()


class TestIdentity(object):
    """Cheap per-mode spot checks; the hypothesis suite in
    tests/property/test_scoreboard_property.py is the real oracle."""

    @pytest.mark.parametrize(
        "mode",
        [ReplayMode.ARTC, ReplayMode.UNCONSTRAINED, ReplayMode.SINGLE],
    )
    def test_jit_matches_event_core(self, bench, mode):
        assert fingerprint(bench, mode, "jit") == fingerprint(
            bench, mode, "events"
        )


class TestProgramShape(object):
    def test_artc_variant_has_one_function_per_thread(self, bench):
        plan = planir.default_plan(bench)
        program = codegen.program_for(bench, plan, "artc")
        assert sorted(program.threads) == sorted(bench.threads)
        assert program.main is None
        assert program.n_functions == len(bench.threads)
        for source in program.sources.values():
            assert source.startswith("def _t")

    def test_seq_variant_is_one_function(self, bench):
        plan = planir.default_plan(bench)
        program = codegen.program_for(bench, plan, "seq")
        assert program.threads is None
        assert program.main is not None
        assert program.n_functions == 1

    def test_unknown_variant_rejected(self, bench):
        plan = planir.default_plan(bench)
        with pytest.raises(ValueError, match="variant"):
            codegen.program_for(bench, plan, "vectorized")


class TestCaches(object):
    def test_benchmark_cache_hit(self, bench):
        plan = planir.default_plan(bench)
        before = codegen.COUNTERS["cache_hits_benchmark"]
        first = codegen.program_for(bench, plan, "artc")
        second = codegen.program_for(bench, plan, "artc")
        assert first is second
        assert codegen.COUNTERS["cache_hits_benchmark"] > before

    def test_variants_cached_separately(self, bench):
        plan = planir.default_plan(bench)
        artc = codegen.program_for(bench, plan, "artc")
        free = codegen.program_for(bench, plan, "free")
        assert artc is not free

    def test_content_cache_shares_across_reloads(self, bench):
        data = artifact.pack_bytes(bench)
        one = artifact.unpack_bytes(data)
        two = artifact.unpack_bytes(data)
        assert one is not two
        assert one.content_key == two.content_key is not None
        before = codegen.COUNTERS["cache_hits_content"]
        p1 = codegen.program_for(one, planir.default_plan(one), "artc")
        p2 = codegen.program_for(two, planir.default_plan(two), "artc")
        assert p1 is p2
        assert codegen.COUNTERS["cache_hits_content"] > before

    def test_content_cache_bounded(self):
        assert len(codegen._CONTENT_CACHE) <= codegen._CONTENT_CACHE_MAX


class TestObservability(object):
    def test_jit_replay_exports_gauges(self, bench):
        from repro.obs import Observability

        # Ensure at least one program has been compiled process-wide.
        fingerprint(bench, ReplayMode.ARTC, "jit")
        obs = Observability()
        fs = make_fs(seed=0, obs=obs)
        initialize(fs, bench.snapshot)
        replay(bench, fs, ReplayConfig(mode=ReplayMode.ARTC, core="jit"))
        assert obs.metrics.value("replay.jit.codegen_modules") >= 1
        assert obs.metrics.value("replay.jit.codegen_functions") >= 1
        assert obs.metrics.value("replay.jit.source_bytes") > 0
        assert obs.metrics.value("replay.jit.compile_seconds") > 0
