"""Tests for replay reports."""

import pytest

from repro.artc.report import ActionResult, ReplayReport, timing_error


def result(idx, tid, name, issue, done, matched=True, err=None):
    return ActionResult(idx, tid, name, issue, done, 0, err, matched)


@pytest.fixture
def report():
    r = ReplayReport("artc", label="demo")
    r.started = 0.0
    r.add(result(0, 1, "open", 0.0, 0.1))
    r.add(result(1, 1, "read", 0.1, 0.5))
    r.add(result(2, 2, "write", 0.0, 0.3))
    r.add(result(3, 2, "fsync", 0.3, 1.0))
    r.add(result(4, 1, "getxattr", 0.6, 0.7, matched=False, err="ENODATA"))
    r.finished = 1.0
    return r


class TestAccounting(object):
    def test_elapsed(self, report):
        assert report.elapsed == 1.0

    def test_failures(self, report):
        assert report.failures == 1
        assert report.failures_by_errno() == {"ENODATA": 1}

    def test_thread_time_sums_latencies(self, report):
        assert report.thread_time() == pytest.approx(0.1 + 0.4 + 0.3 + 0.7 + 0.1)

    def test_per_thread_time(self, report):
        per = report.per_thread_time()
        assert per[1] == pytest.approx(0.6)
        assert per[2] == pytest.approx(1.0)

    def test_category_breakdown(self, report):
        by_cat = report.thread_time_by_category()
        assert by_cat["open"] == pytest.approx(0.1)
        assert by_cat["read"] == pytest.approx(0.4)
        assert by_cat["write"] == pytest.approx(0.3)
        assert by_cat["fsync"] == pytest.approx(0.7)
        assert by_cat["meta"] == pytest.approx(0.1)  # getxattr

    def test_mean_outstanding(self, report):
        assert report.mean_outstanding() == pytest.approx(1.6)

    def test_timeline_spans(self, report):
        spans = report.timeline()
        assert (1, 0.0, 0.1) in spans
        assert len(spans) == 5

    def test_stall_time(self, report):
        # Thread 1 idles 0.5..0.6; thread 2 never idles.
        assert report.stall_time() == pytest.approx(0.1)

    def test_latencies_by_call(self, report):
        latencies = report.latencies_by_call()
        assert latencies["read"] == [pytest.approx(0.4)]

    def test_summary_fields(self, report):
        summary = report.summary()
        assert summary["mode"] == "artc"
        assert summary["actions"] == 5
        assert summary["failures"] == 1


class TestTimingError(object):
    def test_overestimate(self):
        assert timing_error(13.0, 10.0) == pytest.approx(0.3)

    def test_underestimate_is_positive(self):
        assert timing_error(7.0, 10.0) == pytest.approx(0.3)

    def test_zero_original(self):
        assert timing_error(5.0, 0.0) == 0.0
