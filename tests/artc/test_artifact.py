"""Tests for the ``.artcb`` persistent artifact format."""

import hashlib
import struct

import pytest

from repro.artc import artifact
from repro.artc.benchmark import CompiledBenchmark
from repro.artc.compiler import compile_trace
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


@pytest.fixture(scope="module")
def bench():
    fs = make_fs(seed=3)
    fs.makedirs_now("/w")
    fs.create_file_now("/w/a", size=8192)
    snapshot = Snapshot.capture(fs, roots=("/w",), label="artifact-test")
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="artifact-test", platform="linux")

    def body(tid):
        fd, err = yield from osapi.call(tid, "open", path="/w/a", flags="O_RDWR")
        yield from osapi.call(tid, "read", fd=fd, nbytes=4096)
        yield from osapi.call(tid, "write", fd=fd, nbytes=1024)
        yield from osapi.call(tid, "fsync", fd=fd)
        yield from osapi.call(tid, "close", fd=fd)

    for tid in (1, 2):
        fs.engine.spawn(body(tid))
    fs.engine.run()
    return compile_trace(trace, snapshot)


class TestRoundTrip(object):
    def test_pack_unpack_equal_benchmark(self, bench):
        data = artifact.pack_bytes(bench)
        loaded = artifact.unpack_bytes(data)
        # dumps() covers actions, graph, ruleset, snapshot, stats --
        # equality of the canonical serialization is equality of the
        # benchmark.
        assert loaded.dumps() == bench.dumps()

    def test_save_load_file(self, bench, tmp_path):
        path = str(tmp_path / "b.artcb")
        artifact.save(bench, path)
        assert artifact.load(path).dumps() == bench.dumps()

    def test_benchmark_save_dispatches_on_extension(self, bench, tmp_path):
        binary = str(tmp_path / "b.artcb")
        plain = str(tmp_path / "b.json")
        bench.save(binary)
        bench.save(plain)
        with open(binary, "rb") as handle:
            assert handle.read(len(artifact.MAGIC)) == artifact.MAGIC
        with open(plain) as handle:
            assert handle.read(1) == "{"
        assert CompiledBenchmark.load(binary).dumps() == bench.dumps()
        assert CompiledBenchmark.load(plain).dumps() == bench.dumps()

    def test_content_hash_matches_payload(self, bench, tmp_path):
        path = str(tmp_path / "b.artcb")
        artifact.save(bench, path)
        with open(path, "rb") as handle:
            data = handle.read()
        payload = data[artifact._HEADER.size:]
        assert artifact.content_hash(path) == hashlib.sha256(payload).hexdigest()

    def test_save_is_atomic(self, bench, tmp_path):
        path = str(tmp_path / "b.artcb")
        artifact.save(bench, path)
        artifact.save(bench, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["b.artcb"]


class TestRejection(object):
    def test_rejects_wrong_format_version(self, bench):
        data = bytearray(artifact.pack_bytes(bench))
        struct.pack_into(">I", data, len(artifact.MAGIC), artifact.FORMAT_VERSION + 1)
        with pytest.raises(artifact.ArtifactError, match="format version"):
            artifact.unpack_bytes(bytes(data))

    def test_rejects_corrupted_payload(self, bench):
        data = bytearray(artifact.pack_bytes(bench))
        data[-1] ^= 0xFF
        with pytest.raises(artifact.ArtifactError, match="hash mismatch"):
            artifact.unpack_bytes(bytes(data))

    def test_rejects_corrupted_header_hash(self, bench):
        data = bytearray(artifact.pack_bytes(bench))
        data[len(artifact.MAGIC) + 4] ^= 0xFF  # first digest byte
        with pytest.raises(artifact.ArtifactError, match="hash mismatch"):
            artifact.unpack_bytes(bytes(data))

    def test_rejects_truncated_header(self, bench):
        data = artifact.pack_bytes(bench)
        with pytest.raises(artifact.ArtifactError, match="truncated"):
            artifact.unpack_bytes(data[: artifact._HEADER.size - 1])

    def test_rejects_truncated_payload(self, bench):
        data = artifact.pack_bytes(bench)
        with pytest.raises(artifact.ArtifactError, match="truncated"):
            artifact.unpack_bytes(data[:-1])

    def test_rejects_bad_magic(self, bench):
        data = bytearray(artifact.pack_bytes(bench))
        data[0] = 0x58
        with pytest.raises(artifact.ArtifactError, match="magic"):
            artifact.unpack_bytes(bytes(data))

    def test_rejects_non_artifact_file(self, tmp_path):
        path = str(tmp_path / "b.artcb")
        with open(path, "w") as handle:
            handle.write('{"format": "artc-benchmark-v1"}')
        with pytest.raises(artifact.ArtifactError):
            artifact.load(path)


class TestV2Plans(object):
    """Format v2 embeds the execution-plan IR next to the benchmark."""

    def _v2_bytes(self, wrapper):
        import hashlib as _hashlib
        import json as _json
        import zlib as _zlib

        payload = _zlib.compress(_json.dumps(wrapper).encode("utf-8"), 6)
        digest = _hashlib.sha256(payload).digest()
        return (
            artifact._HEADER.pack(
                artifact.MAGIC, artifact.FORMAT_VERSION, digest, len(payload)
            )
            + payload
        )

    def test_pack_embeds_default_plan(self, bench):
        from repro.artc import planir

        loaded = artifact.unpack_bytes(artifact.pack_bytes(bench))
        plans = planir.cached_plans(loaded)
        assert plans, "unpack must pre-install the packed plans"
        default = planir.default_plan(bench)
        keys = [plan.key for plan in plans]
        assert default.key in keys
        for plan in plans:
            assert len(plan.entries) == len(loaded.actions)

    def test_loaded_plans_skip_extraction(self, bench, monkeypatch):
        from repro.artc import planir

        loaded = artifact.unpack_bytes(artifact.pack_bytes(bench))

        def boom(cls, benchmark, key):
            raise AssertionError("plan cache miss after artifact load")

        monkeypatch.setattr(
            planir.ExecutionPlan, "compile", classmethod(boom)
        )
        assert planir.default_plan(loaded) is not None

    def test_content_key_stamped(self, bench, tmp_path):
        path = str(tmp_path / "b.artcb")
        artifact.save(bench, path)
        loaded = artifact.load(path)
        assert loaded.content_key == artifact.content_hash(path)
        # Packing stamps the source benchmark too, so an in-process
        # pack-then-replay already shares the JIT program cache.
        assert bench.content_key == loaded.content_key

    def test_rejects_version1(self, bench):
        """A literal v1 artifact (bare benchmark JSON payload) is
        rejected loudly, pointing at a re-pack."""
        import hashlib as _hashlib
        import zlib as _zlib

        payload = _zlib.compress(bench.dumps().encode("utf-8"), 6)
        digest = _hashlib.sha256(payload).digest()
        data = (
            artifact._HEADER.pack(artifact.MAGIC, 1, digest, len(payload))
            + payload
        )
        with pytest.raises(artifact.ArtifactError, match="format version"):
            artifact.unpack_bytes(data)
        with pytest.raises(artifact.ArtifactError, match="re-pack"):
            artifact.unpack_bytes(data)

    def test_rejects_wrong_wrapper_format(self, bench):
        wrapper = {"format": "artcb-v3-from-the-future", "benchmark": None}
        with pytest.raises(artifact.ArtifactError, match="artcb-v2"):
            artifact.unpack_bytes(self._v2_bytes(wrapper))

    def test_rejects_unbindable_plan(self, bench):
        from repro.artc import planir

        wrapper = {
            "format": "artcb-v2",
            "benchmark": bench.to_payload(),
            "plans": [
                {
                    "format": planir.IR_FORMAT,
                    "key": {
                        "source": "linux",
                        "target": "linux",
                        "o_excl_fix": True,
                        "fsync_mode": "durable",
                        "ignore_unsupported_hints": True,
                    },
                    "entries": [
                        {"k": planir.STATIC, "call": "frobnicate", "args": {}}
                    ],
                }
            ],
        }
        with pytest.raises(artifact.ArtifactError, match="cannot run"):
            artifact.unpack_bytes(self._v2_bytes(wrapper))

    def test_rejects_plan_length_mismatch(self, bench):
        from repro.artc import planir

        plan = planir.default_plan(bench)
        payload = plan.to_payload()
        payload["entries"] = payload["entries"][:-1]
        wrapper = {
            "format": "artcb-v2",
            "benchmark": bench.to_payload(),
            "plans": [payload],
        }
        with pytest.raises(artifact.ArtifactError, match="covers"):
            artifact.unpack_bytes(self._v2_bytes(wrapper))
