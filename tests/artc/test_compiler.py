"""Tests for the ARTC compiler and benchmark serialization."""

import pytest

from repro.artc.benchmark import CompiledBenchmark
from repro.artc.compiler import compile_trace
from repro.core.modes import RuleSet
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.5)


@pytest.fixture
def trace():
    return Trace(
        [
            rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 128}, ret=128),
            # fd 3 is shared, so T2's read starts at offset 128 of the
            # 128-byte file... via pread the trace stays consistent.
            rec(2, "T2", "pread", {"fd": 3, "nbytes": 64, "offset": 0}, ret=64),
            rec(3, "T2", "close", {"fd": 3}),
            rec(4, "T1", "unlink", {"path": "/d/f"}),
        ],
        platform="linux",
        label="mini",
    )


@pytest.fixture
def snapshot():
    snap = Snapshot(label="mini")
    snap.add("/d", "dir")
    return snap


class TestCompile(object):
    def test_produces_actions_and_graph(self, trace, snapshot):
        bench = compile_trace(trace, snapshot)
        assert len(bench) == 5
        assert bench.graph.n_edges > 0
        assert bench.stats["n_threads"] == 2
        assert bench.stats["model_misses"] == 0

    def test_label_defaults_to_trace_label(self, trace, snapshot):
        assert compile_trace(trace, snapshot).label == "mini"
        assert compile_trace(trace, snapshot, label="x").label == "x"

    def test_default_ruleset_is_artc(self, trace, snapshot):
        bench = compile_trace(trace, snapshot)
        assert bench.ruleset.file_seq
        assert not bench.ruleset.program_seq

    def test_custom_ruleset_respected(self, trace, snapshot):
        bench = compile_trace(trace, snapshot, ruleset=RuleSet.unconstrained())
        assert bench.graph.n_edges == 0

    def test_predelay_computed_per_thread(self, trace, snapshot):
        bench = compile_trace(trace, snapshot)
        # T1 actions at t=0,1,4 with 0.5s calls: gaps 0.5 and 2.5.
        t1_actions = [a for a in bench.actions if a.record.tid == "T1"]
        assert t1_actions[1].predelay == pytest.approx(0.5)
        assert t1_actions[2].predelay == pytest.approx(2.5)

    def test_annotations_carry_fd_generations(self, trace, snapshot):
        bench = compile_trace(trace, snapshot)
        assert bench.actions[0].ann["ret_fd"] == 0
        assert bench.actions[2].ann["fd"] == 0


class TestSerialization(object):
    def test_round_trip_preserves_everything(self, trace, snapshot):
        bench = compile_trace(trace, snapshot)
        clone = CompiledBenchmark.loads(bench.dumps())
        assert len(clone) == len(bench)
        assert clone.label == bench.label
        assert clone.platform == bench.platform
        assert sorted(clone.graph.edge_kinds.items()) == sorted(
            bench.graph.edge_kinds.items()
        )
        for a, b in zip(clone.actions, bench.actions):
            assert a.ann == b.ann
            assert a.predelay == b.predelay
            assert a.record.args == b.record.args
        assert clone.snapshot.paths() == snapshot.paths()

    def test_round_tripped_benchmark_replays(self, trace, snapshot, tmp_path):
        from repro.artc import replay, ReplayConfig
        from repro.artc.init import initialize
        from tests.conftest import make_fs

        bench = compile_trace(trace, snapshot)
        path = str(tmp_path / "bench.json")
        bench.save(path)
        clone = CompiledBenchmark.load(path)
        fs = make_fs()
        initialize(fs, clone.snapshot)
        report = replay(clone, fs, ReplayConfig())
        assert report.failures == 0

    def test_loads_rejects_garbage(self):
        with pytest.raises(ValueError):
            CompiledBenchmark.loads('{"format": "nope"}')

    def test_to_trace_recovers_records(self, trace, snapshot):
        bench = compile_trace(trace, snapshot)
        recovered = bench.to_trace()
        assert len(recovered) == len(trace)
        assert recovered[0].name == "open"
