"""Tests for the replayer: modes, remapping, timing, semantics."""

import pytest

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.core.modes import ReplayMode
from repro.errors import ReplayError
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from tests.conftest import make_fs


def rec(idx, tid, name, args, ret=0, err=None, t=None, dur=0.001):
    t = float(idx) / 10 if t is None else t
    return TraceRecord(idx, tid, name, args, ret, err, t, t + dur)


def compiled(records, snapshot_entries=(), ruleset=None, platform="linux"):
    snap = Snapshot()
    for entry in snapshot_entries:
        snap.add(*entry)
    trace = Trace(records, platform=platform)
    return compile_trace(trace, snap, ruleset=ruleset), snap


def run_replay(bench, snap, mode=ReplayMode.ARTC, **kwargs):
    fs = make_fs(seed=99)
    initialize(fs, snap)
    return replay(bench, fs, ReplayConfig(mode=mode, **kwargs))


HANDOFF = [
    rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
    rec(1, "T1", "write", {"fd": 3, "nbytes": 4096}, ret=4096),
    rec(2, "T2", "pread", {"fd": 3, "nbytes": 4096, "offset": 0}, ret=4096),
    rec(3, "T2", "close", {"fd": 3}),
]


class TestModes(object):
    @pytest.mark.parametrize("mode", ReplayMode.ALL)
    def test_every_mode_replays_cleanly_when_no_races(self, mode):
        bench, snap = compiled(HANDOFF)
        report = run_replay(bench, snap, mode)
        assert report.n_actions == 4
        if mode != ReplayMode.UNCONSTRAINED:
            assert report.failures == 0

    def test_bad_mode_rejected(self):
        with pytest.raises(ReplayError):
            ReplayConfig(mode="chaotic")

    def test_bad_timing_rejected(self):
        with pytest.raises(ReplayError):
            ReplayConfig(timing="sometimes")

    def test_artc_enforces_cross_thread_order(self):
        bench, snap = compiled(HANDOFF)
        report = run_replay(bench, snap, ReplayMode.ARTC)
        results = {r.idx: r for r in report.results}
        assert results[2].issue >= results[1].done  # read after write
        assert results[3].issue >= results[2].done or True  # same thread

    def test_single_threaded_is_fully_serial(self):
        bench, snap = compiled(HANDOFF)
        report = run_replay(bench, snap, ReplayMode.SINGLE)
        ordered = sorted(report.results, key=lambda r: r.idx)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.issue >= earlier.done

    def test_program_seq_ruleset_behaves_like_single(self):
        from repro.core.modes import RuleSet

        bench, snap = compiled(HANDOFF, ruleset=RuleSet(program_seq=True))
        report = run_replay(bench, snap, ReplayMode.ARTC)
        ordered = sorted(report.results, key=lambda r: r.idx)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.issue >= earlier.done

    def test_temporal_preserves_completion_before_issue(self):
        # T2's read was issued after T1's open completed in the trace;
        # temporal replay must keep that, even though they are in
        # different threads.
        bench, snap = compiled(HANDOFF)
        report = run_replay(bench, snap, ReplayMode.TEMPORAL)
        results = {r.idx: r for r in report.results}
        assert results[2].issue >= results[0].done
        assert report.failures == 0


class TestFdRemapping(object):
    def test_same_name_descriptors_coexist(self):
        # fd 3 has two generations whose lifetimes the replay may
        # overlap; remapping must keep them apart (section 4.2).
        records = [
            rec(0, "T1", "open", {"path": "/a", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
            rec(2, "T1", "close", {"fd": 3}),
            rec(3, "T2", "open", {"path": "/b", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(4, "T2", "write", {"fd": 3, "nbytes": 20}, ret=20),
            rec(5, "T2", "close", {"fd": 3}),
        ]
        bench, snap = compiled(records)
        report = run_replay(bench, snap)
        assert report.failures == 0

    def test_dup2_replayed_as_dup(self):
        records = [
            rec(0, "T1", "open", {"path": "/a", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "dup2", {"fd": 3, "newfd": 9}, ret=9),
            rec(2, "T1", "write", {"fd": 9, "nbytes": 10}, ret=10),
            rec(3, "T1", "close", {"fd": 9}),
            rec(4, "T1", "close", {"fd": 3}),
        ]
        bench, snap = compiled(records)
        report = run_replay(bench, snap)
        assert report.failures == 0

    def test_pipe_fds_remapped(self):
        records = [
            rec(0, "T1", "pipe", {}, ret=[3, 4]),
            rec(1, "T1", "write", {"fd": 4, "nbytes": 10}, ret=10),
            rec(2, "T1", "read", {"fd": 3, "nbytes": 10}, ret=10),
            rec(3, "T1", "close", {"fd": 3}),
            rec(4, "T1", "close", {"fd": 4}),
        ]
        bench, snap = compiled(records)
        report = run_replay(bench, snap)
        assert report.failures == 0

    def test_aio_control_blocks_remapped(self):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 8192}, ret=8192),
            rec(2, "T1", "aio_read", {"aiocb": "0x7f00", "fd": 3, "nbytes": 100, "offset": 0}),
            rec(3, "T1", "aio_suspend", {"aiocbs": ["0x7f00"]}),
            rec(4, "T1", "aio_return", {"aiocb": "0x7f00"}, ret=100),
            # The control block gets reused: a second generation.
            rec(5, "T1", "aio_read", {"aiocb": "0x7f00", "fd": 3, "nbytes": 100, "offset": 4096}),
            rec(6, "T1", "aio_suspend", {"aiocbs": ["0x7f00"]}),
            rec(7, "T1", "aio_return", {"aiocb": "0x7f00"}, ret=100),
            rec(8, "T1", "close", {"fd": 3}),
        ]
        bench, snap = compiled(records)
        report = run_replay(bench, snap)
        assert report.failures == 0


class TestSemantics(object):
    def test_expected_failures_count_as_matched(self):
        records = [
            rec(0, "T1", "stat", {"path": "/nope"}, ret=-1, err="ENOENT"),
            rec(1, "T1", "open", {"path": "/nope/x", "flags": "O_RDONLY"}, ret=-1, err="ENOENT"),
        ]
        bench, snap = compiled(records)
        report = run_replay(bench, snap)
        assert report.failures == 0

    def test_errno_spelling_equivalence(self):
        # A Darwin trace records ENOATTR; Linux raises ENODATA.
        records = [
            rec(0, "T1", "getxattr", {"path": "/f", "xname": "user.k"}, ret=-1, err="ENOATTR"),
        ]
        bench, snap = compiled(records, snapshot_entries=[("/f", "reg", 10)], platform="darwin")
        report = run_replay(bench, snap)
        assert report.failures == 0

    def test_unexpected_failure_counted(self):
        records = [rec(0, "T1", "unlink", {"path": "/ghost"}, ret=0)]
        bench, snap = compiled(records)
        report = run_replay(bench, snap)
        assert report.failures == 1

    def test_o_excl_fix_strips_flag(self):
        # Trace says this O_EXCL open succeeded even though the file
        # exists (the paper's iTunes trace anomaly); ARTC replays it
        # without O_EXCL.
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_CREAT|O_EXCL"}, ret=3),
            rec(1, "T1", "close", {"fd": 3}),
        ]
        bench, snap = compiled(records, snapshot_entries=[("/f", "reg", 10)])
        assert run_replay(bench, snap).failures == 0
        report = run_replay(bench, snap, o_excl_fix=False)
        # Without the fix the open fails with EEXIST and the dependent
        # close cascades to EBADF: two mismatches.
        assert report.failures == 2


class TestTiming(object):
    def _think_bench(self):
        records = [
            rec(0, "T1", "stat", {"path": "/"}, t=0.0, dur=0.001),
            rec(1, "T1", "stat", {"path": "/"}, t=1.0, dur=0.001),  # 1s think
            rec(2, "T1", "stat", {"path": "/"}, t=2.0, dur=0.001),
        ]
        return compiled(records)

    def test_afap_ignores_predelay(self):
        bench, snap = self._think_bench()
        report = run_replay(bench, snap, timing="afap")
        assert report.elapsed < 0.1

    def test_natural_reproduces_predelay(self):
        bench, snap = self._think_bench()
        report = run_replay(bench, snap, timing="natural")
        assert 1.8 < report.elapsed < 2.4

    def test_scaled_predelay(self):
        bench, snap = self._think_bench()
        report = run_replay(bench, snap, timing=0.5)
        assert 0.8 < report.elapsed < 1.3

    def test_jitter_adds_bounded_delay(self):
        bench, snap = self._think_bench()
        report = run_replay(bench, snap, timing="afap", jitter=0.01)
        assert 0.0 < report.elapsed < 0.1


class TestCrossPlatformReplay(object):
    def test_darwin_trace_on_linux_target(self):
        records = [
            rec(0, "T1", "getattrlist", {"path": "/f"}, ret=0),
            rec(1, "T1", "open_nocancel", {"path": "/f", "flags": "O_RDWR"}, ret=3),
            rec(2, "T1", "write_nocancel", {"fd": 3, "nbytes": 64}, ret=64),
            rec(3, "T1", "fcntl", {"fd": 3, "cmd": "F_FULLFSYNC"}, ret=0),
            rec(4, "T1", "close_nocancel", {"fd": 3}),
            rec(5, "T1", "exchangedata", {"path1": "/f", "path2": "/g"}, ret=0),
        ]
        bench, snap = compiled(
            records,
            snapshot_entries=[("/f", "reg", 100), ("/g", "reg", 200)],
            platform="darwin",
        )
        report = run_replay(bench, snap)
        assert report.failures == 0
