"""Tests for the shard-plan partitioner (repro.artc.shardplan)."""

from repro.artc import compile_trace
from repro.artc.shardplan import (
    ShardPlan,
    build_shard_plan,
    check_plan,
    plan_for,
)
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None, dur=0.001):
    t = float(idx) / 10
    return TraceRecord(idx, tid, name, args, ret, err, t, t + dur)


def file_series(records, tid, path, fd, nbytes=1024):
    """Append one thread's open/write/read/close series on ``path``."""
    base = len(records)
    records += [
        rec(base, tid, "open", {"path": path, "flags": "O_RDWR|O_CREAT"},
            ret=fd),
        rec(base + 1, tid, "write", {"fd": fd, "nbytes": nbytes}, ret=nbytes),
        rec(base + 2, tid, "pread",
            {"fd": fd, "nbytes": nbytes, "offset": 0}, ret=nbytes),
        rec(base + 3, tid, "close", {"fd": fd}),
    ]


def independent_bench(n_groups=4):
    """``n_groups`` threads, each on its own file: ``n_groups``
    resource components with no cross-thread sharing."""
    records = []
    for group in range(n_groups):
        file_series(records, "T%d" % group, "/data/f%d" % group, 3 + group)
    return compile_trace(Trace(records, platform="linux"), Snapshot())


def handoff_bench():
    """Two threads alternating between a private and a shared file:
    the shared series welds work from both threads into one component
    while each private file stays its own."""
    records = []
    file_series(records, "T1", "/data/private1", 3)
    file_series(records, "T2", "/data/private2", 4)
    base = len(records)
    records += [
        rec(base, "T1", "open", {"path": "/data/shared",
                                 "flags": "O_RDWR|O_CREAT"}, ret=5),
        rec(base + 1, "T1", "write", {"fd": 5, "nbytes": 512}, ret=512),
        rec(base + 2, "T2", "open", {"path": "/data/shared",
                                     "flags": "O_RDONLY"}, ret=6),
        rec(base + 3, "T2", "pread",
            {"fd": 6, "nbytes": 512, "offset": 0}, ret=512),
        rec(base + 4, "T2", "close", {"fd": 6}),
        rec(base + 5, "T1", "close", {"fd": 5}),
    ]
    return compile_trace(Trace(records, platform="linux"), Snapshot())


class TestBuildPlan(object):
    def test_exact_partition_preserving_order(self):
        bench = independent_bench()
        plan = build_shard_plan(bench, 2)
        assert check_plan(bench, plan) == []
        placed = sorted(idx for acts in plan.shard_actions for idx in acts)
        assert placed == list(range(len(bench.actions)))
        for acts in plan.shard_actions:
            assert acts == sorted(acts)

    def test_deterministic(self):
        bench = independent_bench()
        first = build_shard_plan(bench, 3)
        second = build_shard_plan(bench, 3)
        assert first.shard_actions == second.shard_actions
        assert first.cross_edges == second.cross_edges

    def test_components_never_split(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        assert check_plan(bench, plan) == []
        # All actions touching /data/shared -- from either thread --
        # must land in one shard (resource atomicity).
        shared = [
            a.idx for a in bench.actions
            if a.record.args.get("path") == "/data/shared"
            or a.record.args.get("fd") in (5, 6)
        ]
        assert len({plan.assign[idx] for idx in shared}) == 1

    def test_cross_edges_are_exactly_the_shard_transitions(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        expected = set()
        per_thread = {}
        for action in bench.actions:
            per_thread.setdefault(action.record.tid, []).append(action.idx)
        for acts in per_thread.values():
            for prev, idx in zip(acts, acts[1:]):
                if plan.assign[prev] != plan.assign[idx]:
                    expected.add((prev, idx))
        assert set(plan.cross_edges) == expected
        # single-writer property: one flag per consumer
        consumers = [edge[1] for edge in plan.cross_edges]
        assert len(consumers) == len(set(consumers))

    def test_independent_groups_spread_with_low_cut(self):
        bench = independent_bench(4)
        plan = build_shard_plan(bench, 4)
        assert plan.n_workers == 4
        # fully independent threads: a perfect partition has no cut
        assert plan.cross_edges == []
        assert plan.stats["cut_fraction"] == 0.0

    def test_jobs_one_is_single_shard(self):
        bench = independent_bench()
        plan = build_shard_plan(bench, 1)
        assert plan.n_workers == 1
        assert plan.cross_edges == []
        assert check_plan(bench, plan) == []

    def test_cwd_mutating_trace_clamps_to_one_shard(self):
        records = []
        file_series(records, "T1", "/data/a", 3)
        records.append(rec(len(records), "T1", "chdir", {"path": "/data"}))
        file_series(records, "T2", "/data/b", 4)
        bench = compile_trace(Trace(records, platform="linux"), Snapshot())
        plan = build_shard_plan(bench, 4)
        assert plan.n_workers == 1
        assert "cwd" in plan.stats["fallback"]
        assert check_plan(bench, plan) == []

    def test_plan_for_caches(self):
        bench = independent_bench()
        assert plan_for(bench, 2) is plan_for(bench, 2)
        assert plan_for(bench, 2) is not plan_for(bench, 3)

    def test_payload_round_trip(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        clone = ShardPlan.from_payload(plan.to_payload())
        assert clone.shard_actions == plan.shard_actions
        assert clone.cross_edges == plan.cross_edges
        assert clone.assign == plan.assign
        assert check_plan(bench, clone) == []


class TestCheckPlan(object):
    """Adversarial plans: every corruption class must be rejected."""

    def _good(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        assert plan.n_workers == 2
        assert check_plan(bench, plan) == []
        return bench, plan

    def test_dropped_flag_rejected(self):
        bench, plan = self._good()
        assert plan.cross_edges, "fixture must have a cross-shard edge"
        broken = ShardPlan(
            plan.n_shards, plan.shard_actions, plan.cross_edges[1:],
            plan.stats,
        )
        problems = check_plan(bench, broken)
        assert any("no completion flag" in p for p in problems)

    def test_duplicated_action_rejected(self):
        bench, plan = self._good()
        shards = [list(acts) for acts in plan.shard_actions]
        stolen = shards[0][0]
        shards[1] = sorted(shards[1] + [stolen])
        broken = ShardPlan(plan.n_shards, shards, plan.cross_edges,
                           plan.stats)
        problems = check_plan(bench, broken)
        assert any("duplicate" in p for p in problems)

    def test_dropped_action_rejected(self):
        bench, plan = self._good()
        shards = [list(acts) for acts in plan.shard_actions]
        shards[0] = shards[0][1:]
        broken = ShardPlan(plan.n_shards, shards, plan.cross_edges,
                           plan.stats)
        problems = check_plan(bench, broken)
        assert any("assigned to no shard" in p for p in problems)

    def test_misassigned_resource_rejected(self):
        """Moving one action of a shared-resource component to the
        other shard splits the component and must be rejected."""
        bench, plan = self._good()
        shared = [
            a.idx for a in bench.actions
            if a.record.args.get("path") == "/data/shared"
            or a.record.args.get("fd") in (5, 6)
        ]
        home = plan.assign[shared[0]]
        other = 1 - home
        moved = shared[0]
        shards = [list(acts) for acts in plan.shard_actions]
        shards[home].remove(moved)
        shards[other] = sorted(shards[other] + [moved])
        assign = list(plan.assign)
        assign[moved] = other
        per_thread = {}
        for action in bench.actions:
            per_thread.setdefault(action.record.tid, []).append(action.idx)
        edges = []
        for acts in per_thread.values():
            for prev, idx in zip(acts, acts[1:]):
                if assign[prev] != assign[idx]:
                    edges.append((prev, idx))
        edges.sort(key=lambda e: e[1])
        broken = ShardPlan(plan.n_shards, shards, edges, plan.stats)
        problems = check_plan(bench, broken)
        assert any("component split" in p for p in problems)

    def test_stale_flag_rejected(self):
        bench, plan = self._good()
        intra = None
        for shard_acts in plan.shard_actions:
            for prev, idx in zip(shard_acts, shard_acts[1:]):
                intra = (prev, idx)
                break
            if intra:
                break
        broken = ShardPlan(
            plan.n_shards, plan.shard_actions,
            list(plan.cross_edges) + [intra], plan.stats,
        )
        problems = check_plan(bench, broken)
        assert any("covers no cross-shard transition" in p for p in problems)
