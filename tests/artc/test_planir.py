"""Tests for the execution-plan IR (:mod:`repro.artc.planir`)."""

import json

import pytest

from repro.artc import planir
from repro.artc.compiler import compile_trace
from repro.syscalls.emulation import DEFAULT_OPTIONS
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


@pytest.fixture(scope="module")
def bench():
    fs = make_fs(seed=5)
    fs.makedirs_now("/w")
    fs.create_file_now("/w/a", size=16384)
    snapshot = Snapshot.capture(fs, roots=("/w",), label="planir-test")
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="planir-test", platform="linux")

    def body(tid):
        fd, err = yield from osapi.call(tid, "open", path="/w/a", flags="O_RDWR")
        yield from osapi.call(tid, "read", fd=fd, nbytes=4096)
        yield from osapi.call(tid, "write", fd=fd, nbytes=2048)
        yield from osapi.call(tid, "stat", path="/w/a")
        yield from osapi.call(tid, "fsync", fd=fd)
        yield from osapi.call(tid, "close", fd=fd)

    for tid in (1, 2):
        fs.engine.spawn(body(tid))
    fs.engine.run()
    return compile_trace(trace, snapshot)


@pytest.fixture(scope="module")
def plan(bench):
    return planir.default_plan(bench)


class TestCompile(object):
    def test_one_entry_per_action(self, bench, plan):
        assert len(plan) == len(bench.actions)

    def test_kind_counts_sum(self, bench, plan):
        counts = plan.kind_counts()
        assert sum(counts) == len(bench.actions)
        # This trace is fully static/fd-remapped on its own platform.
        assert counts[planir.STATIC] > 0
        assert counts[planir.FDREMAP] > 0
        assert counts[planir.DYNAMIC] == 0

    def test_thread_kind_counts_partition(self, bench, plan):
        per_thread = plan.thread_kind_counts(bench)
        assert sorted(per_thread) == sorted(bench.threads)
        totals = [0] * len(planir.KIND_NAMES)
        for counts in per_thread.values():
            totals = [a + b for a, b in zip(totals, counts)]
        assert totals == plan.kind_counts()

    def test_entries_are_runtime_tuples(self, plan):
        for entry in plan.entries:
            kind, payload, is_read, upd = entry
            assert 0 <= kind < len(planir.KIND_NAMES)
            assert isinstance(is_read, bool)
            if kind == planir.STATIC:
                handler, args, step_name, step_kind = payload
                assert callable(handler)
                assert isinstance(args, dict)

    def test_cache_compiles_once(self, bench):
        first = planir.plans_for(
            bench, bench.platform, bench.platform, True, DEFAULT_OPTIONS
        )
        second = planir.plans_for(
            bench, bench.platform, bench.platform, True, DEFAULT_OPTIONS
        )
        assert first is second


class TestRender(object):
    def test_summary_lines(self, bench, plan):
        text = plan.render(bench)
        assert "execution-plan IR" in text
        assert "kinds:" in text
        for tid in bench.threads:
            assert "T%s:" % tid in text

    def test_verbose_lists_every_action(self, bench, plan):
        text = plan.render(bench, verbose=True)
        for action in bench.actions:
            assert "#%-5d" % action.idx in text


class TestSerialization(object):
    def test_round_trip_through_json(self, bench, plan):
        payload = json.loads(json.dumps(plan.to_payload()))
        loaded = planir.ExecutionPlan.from_payload(payload)
        assert loaded.key == plan.key
        assert len(loaded.entries) == len(plan.entries)
        for orig, back in zip(plan.entries, loaded.entries):
            assert orig[0] == back[0]  # kind
            assert orig[2] == back[2]  # is_read
            assert orig[3] == back[3]  # upd
            if orig[0] == planir.STATIC:
                assert orig[1][0] is back[1][0]  # same registry handler
                assert orig[1][1] == back[1][1]  # args
                assert orig[1][2:] == back[1][2:]
            elif orig[0] == planir.FDREMAP:
                assert orig[1][0] is back[1][0]
                assert orig[1][1] == back[1][1]
                assert tuple(orig[1][2]) == tuple(back[1][2])

    def test_from_payload_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="not a serialized"):
            planir.ExecutionPlan.from_payload({"format": "nope"})

    def test_from_payload_rejects_unknown_call(self, plan):
        payload = plan.to_payload()
        payload["entries"] = [
            {"k": planir.STATIC, "call": "frobnicate", "args": {}}
        ]
        with pytest.raises(ValueError, match="unknown call"):
            planir.ExecutionPlan.from_payload(payload)

    def test_install_rejects_length_mismatch(self, bench, plan):
        payload = plan.to_payload()
        payload["entries"] = payload["entries"][:-1]
        fresh = compile_trace(bench.to_trace(), bench.snapshot)
        with pytest.raises(ValueError, match="covers"):
            planir.install(fresh, [payload])


class TestReleaseRuns(object):
    def test_groups_consecutive_same_thread(self):
        tid_of = {0: "a", 1: "a", 2: "b", 3: "a", 4: "a"}
        runs = planir.release_runs([0, 1, 2, 3, 4], tid_of)
        assert runs == [("a", (0, 1)), ("b", (2,)), ("a", (3, 4))]

    def test_empty(self):
        assert planir.release_runs([], {}) == []

    def test_preserves_order(self):
        tid_of = {7: 1, 3: 2, 9: 1}
        runs = planir.release_runs([7, 3, 9], tid_of)
        assert [succ for _tid, members in runs for succ in members] == [7, 3, 9]
