"""Tests for replay warnings (paper section 5.1)."""

import pytest

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.artc.report import ReplayWarning
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from tests.conftest import make_fs


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.1)


def run(records, entries=(), **config):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    bench = compile_trace(Trace(records), snap)
    fs = make_fs(seed=1)
    initialize(fs, snap)
    return replay(bench, fs, ReplayConfig(**config))


class TestWarningKinds(object):
    def test_clean_replay_warns_nothing(self):
        report = run([rec(0, 1, "stat", {"path": "/f"}, ret=0)], [("/f", "reg", 1)])
        assert report.warnings == []

    def test_unexpected_failure(self):
        report = run([rec(0, 1, "unlink", {"path": "/ghost"}, ret=0)])
        kinds = report.warnings_by_kind()
        assert len(kinds[ReplayWarning.UNEXPECTED_FAILURE]) == 1
        assert "ENOENT" in kinds[ReplayWarning.UNEXPECTED_FAILURE][0].message

    def test_unexpected_success(self):
        report = run(
            [rec(0, 1, "stat", {"path": "/f"}, ret=-1, err="ENOENT")],
            [("/f", "reg", 1)],
        )
        assert ReplayWarning.UNEXPECTED_SUCCESS in report.warnings_by_kind()

    def test_wrong_errno(self):
        # Trace says EACCES; replay gets ENOENT.
        report = run([rec(0, 1, "stat", {"path": "/nope"}, ret=-1, err="EACCES")])
        assert ReplayWarning.WRONG_ERRNO in report.warnings_by_kind()

    def test_short_read_warning(self):
        records = [
            rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            # Trace claims 4096 bytes, but the file only has 100.
            rec(1, 1, "pread", {"fd": 3, "nbytes": 4096, "offset": 0}, ret=4096),
        ]
        report = run(records, [("/f", "reg", 100)])
        warning = report.warnings_by_kind()[ReplayWarning.SHORT_READ][0]
        assert warning.idx == 1

    def test_warning_count_tracks_failures(self):
        report = run([rec(0, 1, "unlink", {"path": "/ghost"}, ret=0)])
        assert len(report.warnings) == report.failures


class TestSuppression(object):
    def test_suppressed_kinds_dropped(self):
        report = run(
            [rec(0, 1, "unlink", {"path": "/ghost"}, ret=0)],
            suppress_warnings=(ReplayWarning.UNEXPECTED_FAILURE,),
        )
        assert report.warnings == []
        assert report.failures == 1  # accuracy accounting unaffected

    def test_other_kinds_survive_suppression(self):
        records = [
            rec(0, 1, "unlink", {"path": "/ghost"}, ret=0),
            rec(1, 1, "stat", {"path": "/f"}, ret=-1, err="ENOENT"),
        ]
        report = run(
            records,
            [("/f", "reg", 1)],
            suppress_warnings=(ReplayWarning.UNEXPECTED_FAILURE,),
        )
        kinds = report.warnings_by_kind()
        assert ReplayWarning.UNEXPECTED_FAILURE not in kinds
        assert ReplayWarning.UNEXPECTED_SUCCESS in kinds


class TestDeduplication(object):
    def test_repeats_collapse_onto_first_emission(self):
        records = [
            rec(0, 1, "unlink", {"path": "/ghost1"}, ret=0),
            rec(1, 1, "unlink", {"path": "/ghost2"}, ret=0),
            rec(2, 1, "unlink", {"path": "/ghost3"}, ret=0),
        ]
        report = run(records)
        assert len(report.warnings) == 1
        warning = report.warnings[0]
        assert warning.kind == ReplayWarning.UNEXPECTED_FAILURE
        assert warning.idx == 0  # first occurrence wins
        assert warning.count == 3
        assert warning.message.endswith("[x3]")
        assert report.warning_emissions() == 3

    def test_single_warning_keeps_plain_message(self):
        report = run([rec(0, 1, "unlink", {"path": "/ghost"}, ret=0)])
        assert report.warnings[0].count == 1
        assert "[x" not in report.warnings[0].message

    def test_distinct_calls_not_merged(self):
        # Same kind, different syscall names: two entries.
        records = [
            rec(0, 1, "unlink", {"path": "/ghost"}, ret=0),
            rec(1, 1, "rmdir", {"path": "/ghostdir"}, ret=0),
        ]
        report = run(records)
        assert len(report.warnings) == 2
        assert report.warning_emissions() == 2

    def test_distinct_kinds_not_merged(self):
        records = [
            rec(0, 1, "stat", {"path": "/missing"}, ret=0),
            rec(1, 1, "stat", {"path": "/f"}, ret=-1, err="ENOENT"),
        ]
        report = run(records, [("/f", "reg", 1)])
        kinds = {w.kind for w in report.warnings}
        assert ReplayWarning.UNEXPECTED_FAILURE in kinds
        assert ReplayWarning.UNEXPECTED_SUCCESS in kinds

    def test_failure_accounting_not_deduplicated(self):
        records = [
            rec(idx, 1, "unlink", {"path": "/ghost%d" % idx}, ret=0)
            for idx in range(4)
        ]
        report = run(records)
        assert report.failures == 4  # accuracy metric unaffected
        assert len(report.warnings) == 1


class TestLatencyComparison(object):
    def test_compare_latencies_rows(self):
        records = [
            rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            rec(1, 1, "pread", {"fd": 3, "nbytes": 100, "offset": 0}, ret=100),
            rec(2, 1, "close", {"fd": 3}),
        ]
        snap = Snapshot()
        snap.add("/f", "reg", 4096)
        trace = Trace(records)
        bench = compile_trace(trace, snap)
        fs = make_fs(seed=1)
        initialize(fs, snap)
        report = replay(bench, fs, ReplayConfig())
        rows = {row["call"]: row for row in report.compare_latencies(trace)}
        assert rows["pread"]["count"] == 1
        assert rows["pread"]["orig_mean"] == pytest.approx(0.1)
        assert rows["pread"]["replay_mean"] >= 0
