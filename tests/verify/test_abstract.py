"""Abstract replay: exact predictions on real traces, sound widening
on synthetic ones, and a cross-checker that catches fabricated
predictions (so the never-contradict property is itself tested)."""

import pytest

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.core.modes import ReplayMode
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from repro.verify import (
    UNKNOWN,
    cross_check,
    fs_digest,
    predict,
    verify_benchmark,
)

_benchmarks = {}


def benchmark_for(sample):
    if sample not in _benchmarks:
        from repro.workloads.magritte import build_suite

        app = build_suite([sample])[sample]
        traced = trace_application(app, PLATFORMS["mac-hdd"], seed=0)
        _benchmarks[sample] = compile_trace(traced.trace, traced.snapshot)
    return _benchmarks[sample]


def rec(idx, tid, name, args, ret=0, err=None):
    t = float(idx) / 10
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.001)


def synthetic(records, dirs=("/d",)):
    snap = Snapshot()
    for path in dirs:
        snap.add(path, "dir")
    return compile_trace(Trace(records, platform="linux"), snap)


class TestExactPredictions(object):
    @pytest.mark.parametrize("mode", [ReplayMode.ARTC, ReplayMode.SINGLE])
    def test_prediction_matches_dynamic_replay(self, mode):
        bench = benchmark_for("pages_pdf15")
        platform = PLATFORMS["ssd"]
        fs = platform.make_fs(seed=3)
        initialize(fs, bench.snapshot)
        report = replay(bench, fs, ReplayConfig(mode=mode))
        pred = predict(bench, mode, target=fs.platform)
        assert pred.status == "exact"
        assert pred.widened_at is None
        for result in report.results:
            if result.skipped:
                continue
            assert pred.outcomes[result.idx] == result.err, (
                "action #%d (%s): predicted %r, dynamic %r"
                % (result.idx, result.name,
                   pred.outcomes[result.idx], result.err)
            )
        assert pred.digest == fs_digest(fs)

    def test_racy_modes_widen_to_unknown(self):
        bench = benchmark_for("pages_pdf15")
        for mode in (ReplayMode.TEMPORAL, ReplayMode.UNCONSTRAINED):
            pred = predict(bench, mode)
            assert pred.status == "unknown"
            assert pred.digest is None
            assert set(pred.outcomes) == {UNKNOWN}
            assert pred.reason.startswith("unordered-races")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            predict(benchmark_for("pages_pdf15"), "chaotic")

    def test_to_dict_shape(self):
        pred = predict(benchmark_for("pages_pdf15"), ReplayMode.SINGLE)
        payload = pred.to_dict()
        assert payload["format"] == "artc-abstract-v1"
        assert payload["status"] == "exact"
        assert payload["actions"] == len(payload["outcomes"])
        assert payload["unknown"] == 0
        assert payload["digest"]


class TestWidening(object):
    def test_shared_cwd_widens_concurrent_modes(self):
        bench = synthetic([
            rec(0, "T1", "chdir", {"path": "/d"}),
            rec(1, "T2", "mkdir", {"path": "/e/x", "mode": 0o755}),
        ], dirs=("/d", "/e"))
        for mode in (ReplayMode.ARTC, ReplayMode.UNCONSTRAINED):
            pred = predict(bench, mode)
            assert pred.status == "unknown"
            assert pred.reason == "shared-cwd"
            assert set(pred.outcomes) == {UNKNOWN}
        # Sequential replay pins the interleaving: cwd is fine.
        assert predict(bench, ReplayMode.SINGLE).status == "exact"

    def test_raw_fd_aliasing_widens_globally(self):
        bench = synthetic([
            rec(0, "T1", "open",
                {"path": "/d/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "close", {"fd": 3}),
            rec(2, "T2", "fsync", {"fd": 9}, ret=-1, err="EBADF"),
        ])
        pred = predict(bench, ReplayMode.UNCONSTRAINED)
        assert pred.status == "unknown"
        assert pred.reason == "raw-fd-aliasing"
        assert pred.widened_at == 2
        # Global scope: even actions before the widening point are
        # suspect (aliasing side effects reach backwards).
        assert pred.outcomes == [UNKNOWN, UNKNOWN, UNKNOWN]

    def test_raw_fd_exact_when_sequential(self):
        bench = synthetic([
            rec(0, "T1", "open",
                {"path": "/d/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "close", {"fd": 3}),
            rec(2, "T2", "fsync", {"fd": 9}, ret=-1, err="EBADF"),
        ])
        pred = predict(bench, ReplayMode.SINGLE)
        assert pred.status == "exact"
        assert pred.outcomes == [None, None, "EBADF"]

    def test_inflight_aio_write_widens_suffix(self):
        bench = synthetic([
            rec(0, "T1", "open",
                {"path": "/d/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            rec(1, "T1", "aio_write",
                {"aiocb": "cb1", "fd": 3, "nbytes": 100, "offset": 0}),
            rec(2, "T1", "truncate", {"path": "/d/f", "length": 0}),
            rec(3, "T1", "stat", {"path": "/d/f"}),
        ])
        pred = predict(bench, ReplayMode.SINGLE)
        assert pred.status == "unknown"
        assert pred.reason == "aio-write-in-flight"
        assert pred.widened_at == 2
        # Suffix scope: the prefix stays bound, the rest is UNKNOWN.
        assert pred.outcomes == [None, None, UNKNOWN, UNKNOWN]


class TestCrossCheck(object):
    def test_verify_benchmark_dynamic_clean(self):
        bench = benchmark_for("itunes_startsmall1")
        result = verify_benchmark(
            bench, cores=("scoreboard",), dynamic=True,
            platform=PLATFORMS["ssd"], seed=1,
        )
        assert result.ok
        abstract = [p for p in result.report.passes
                    if p.name == "abstract"][0]
        assert abstract.stats["cross_checked"] == 1
        assert abstract.stats["exact"] >= 2  # artc + single-threaded

    def test_dynamic_requires_platform(self):
        with pytest.raises(ValueError):
            verify_benchmark(benchmark_for("itunes_startsmall1"),
                             dynamic=True)

    def test_fabricated_digest_contradicted(self):
        bench = benchmark_for("itunes_startsmall1")
        platform = PLATFORMS["ssd"]
        target = platform.make_fs(seed=0).platform
        pred = predict(bench, ReplayMode.SINGLE, target=target)
        assert pred.status == "exact"
        pred.digest = "0" * 64
        findings = cross_check(bench, pred, platform, seed=0)
        assert "abstract-digest-contradiction" in [
            f.check for f in findings
        ]

    def test_fabricated_errno_contradicted(self):
        bench = benchmark_for("itunes_startsmall1")
        platform = PLATFORMS["ssd"]
        target = platform.make_fs(seed=0).platform
        pred = predict(bench, ReplayMode.SINGLE, target=target)
        assert pred.status == "exact"
        lie_at = pred.outcomes.index(None)
        pred.outcomes[lie_at] = "EIO"
        findings = cross_check(bench, pred, platform, seed=0)
        hits = [f for f in findings
                if f.check == "abstract-errno-contradiction"]
        assert hits and lie_at in hits[0].actions
