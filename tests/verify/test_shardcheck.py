"""Shard-plan certification (repro.verify.shardcheck): a clean plan
certifies, every corruption class is an error finding, and a clamped
plan is advisory only."""

from repro.artc import compile_trace
from repro.artc.shardplan import ShardPlan, build_shard_plan
from repro.lint.report import ERROR, INFO
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from repro.verify import verify_benchmark
from repro.verify.shardcheck import shard_pass
from repro.vfs.nodes import FileType


def rec(idx, tid, name, args, ret=0, err=None):
    t = float(idx) / 10
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.001)


def file_series(records, tid, path, fd, nbytes=1024):
    base = len(records)
    records += [
        rec(base, tid, "open", {"path": path, "flags": "O_RDWR|O_CREAT"},
            ret=fd),
        rec(base + 1, tid, "write", {"fd": fd, "nbytes": nbytes}, ret=nbytes),
        rec(base + 2, tid, "pread",
            {"fd": fd, "nbytes": nbytes, "offset": 0}, ret=nbytes),
        rec(base + 3, tid, "close", {"fd": fd}),
    ]


def bench_of(records):
    snap = Snapshot()
    for parent in sorted({
        record.args["path"].rsplit("/", 1)[0]
        for record in records if "path" in record.args
    }):
        if parent:
            snap.add(parent, FileType.DIR)
    return compile_trace(Trace(records, platform="linux"), snap)


def handoff_bench():
    """Two threads with private files plus one shared file: the shared
    series welds both threads into one component, so a two-way split
    needs cross-shard completion flags."""
    records = []
    file_series(records, "T1", "/p1/f", 3)
    file_series(records, "T2", "/p2/f", 4)
    base = len(records)
    records += [
        rec(base, "T1", "open", {"path": "/shared/f",
                                 "flags": "O_RDWR|O_CREAT"}, ret=5),
        rec(base + 1, "T1", "write", {"fd": 5, "nbytes": 512}, ret=512),
        rec(base + 2, "T2", "open", {"path": "/shared/f",
                                     "flags": "O_RDONLY"}, ret=6),
        rec(base + 3, "T2", "pread",
            {"fd": 6, "nbytes": 512, "offset": 0}, ret=512),
        rec(base + 4, "T2", "close", {"fd": 6}),
        rec(base + 5, "T1", "close", {"fd": 5}),
    ]
    return bench_of(records)


class TestShardPass(object):
    def test_clean_plan_certifies(self):
        bench = handoff_bench()
        result = shard_pass(bench, 2)
        assert result.name == "shardplan:jobs=2"
        assert not any(f.severity == ERROR for f in result.findings)
        assert result.stats["certified"] == 1
        assert result.stats["jobs"] == 2
        assert result.stats["shards"] == 2

    def test_dropped_flag_is_error(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        assert plan.cross_edges, "fixture must have a cross-shard edge"
        broken = ShardPlan(
            plan.n_shards, plan.shard_actions, plan.cross_edges[1:],
            plan.stats,
        )
        result = shard_pass(bench, 2, plan=broken)
        errors = [f for f in result.findings if f.severity == ERROR]
        assert errors and all(f.check == "shard-plan-invalid" for f in errors)
        assert any("no completion flag" in f.message for f in errors)
        assert result.stats["certified"] == 0

    def test_duplicated_action_is_error(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        shards = [list(acts) for acts in plan.shard_actions]
        shards[1] = sorted(shards[1] + [shards[0][0]])
        broken = ShardPlan(plan.n_shards, shards, plan.cross_edges,
                           plan.stats)
        result = shard_pass(bench, 2, plan=broken)
        assert any(
            f.severity == ERROR and "duplicate" in f.message
            for f in result.findings
        )
        assert result.stats["certified"] == 0

    def test_moved_component_member_is_error(self):
        bench = handoff_bench()
        plan = build_shard_plan(bench, 2)
        shared = [
            a.idx for a in bench.actions
            if a.record.args.get("path") == "/shared/f"
            or a.record.args.get("fd") in (5, 6)
        ]
        moved = shared[0]
        home = plan.assign[moved]
        shards = [list(acts) for acts in plan.shard_actions]
        shards[home].remove(moved)
        shards[1 - home] = sorted(shards[1 - home] + [moved])
        broken = ShardPlan(plan.n_shards, shards, plan.cross_edges,
                           plan.stats)
        result = shard_pass(bench, 2, plan=broken)
        errors = [f for f in result.findings if f.severity == ERROR]
        assert errors
        assert result.stats["certified"] == 0

    def test_fallback_plan_is_advisory(self):
        records = []
        file_series(records, "T1", "/d1/f", 3)
        records.append(rec(len(records), "T1", "chdir", {"path": "/d1"}))
        file_series(records, "T2", "/d2/f", 4)
        bench = bench_of(records)
        result = shard_pass(bench, 4)
        infos = [f for f in result.findings if f.check == "shard-plan-fallback"]
        assert infos and infos[0].severity == INFO
        assert "cwd" in infos[0].message
        # A clamped plan is still sound: no errors, still certified.
        assert not any(f.severity == ERROR for f in result.findings)
        assert result.stats["certified"] == 1


class TestVerifyIntegration(object):
    def test_verify_benchmark_includes_shard_pass_when_jobs_set(self):
        bench = handoff_bench()
        result = verify_benchmark(bench, jobs=2)
        names = [p.name for p in result.report.passes]
        assert "shardplan:jobs=2" in names
        shard = next(
            p for p in result.report.passes if p.name == "shardplan:jobs=2"
        )
        assert shard.stats["certified"] == 1
        assert result.ok

    def test_verify_benchmark_omits_shard_pass_by_default(self):
        bench = handoff_bench()
        result = verify_benchmark(bench)
        assert not any(
            p.name.startswith("shardplan") for p in result.report.passes
        )
