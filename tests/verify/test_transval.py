"""Translation validation: clean Magritte compiles certify on every
core, and hand-corrupted program claims are each rejected with an
actionable finding (the adversarial fixtures from ISSUE 7)."""

from repro.artc import codegen, planir
from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.verify.transval import CORES, Certificate, certify

SAMPLES = ("itunes_startsmall1", "pages_pdf15")

_traced = {}


def traced_for(sample):
    if sample not in _traced:
        from repro.workloads.magritte import build_suite

        app = build_suite([sample])[sample]
        _traced[sample] = trace_application(app, PLATFORMS["mac-hdd"], seed=0)
    return _traced[sample]


def fresh_benchmark(sample="itunes_startsmall1"):
    """A private compile: corruption tests mutate cached programs."""
    traced = traced_for(sample)
    return compile_trace(traced.trace, traced.snapshot)


def checks_of(cert):
    return sorted(finding.check for finding in cert.findings)


class TestCleanCertification(object):
    def test_every_magritte_sample_certifies_on_every_core(self):
        for sample in SAMPLES:
            bench = fresh_benchmark(sample)
            for core in CORES:
                cert = certify(bench, core)
                assert cert.ok, (sample, core, cert.findings[:3])
                assert cert.findings == []
                assert cert.n_obligations > 0

    def test_jit_certificate_covers_program_obligations(self):
        cert = certify(fresh_benchmark(), "jit")
        for category in ("plan_entries", "graph_nodes", "gates",
                         "releases", "bindings", "conformance"):
            assert cert.obligations.get(category, 0) > 0, category

    def test_certificate_roundtrip(self):
        cert = certify(fresh_benchmark(), "jit")
        clone = Certificate.from_dict(cert.to_dict())
        assert clone.core == cert.core
        assert clone.ok == cert.ok
        assert clone.obligations == cert.obligations
        assert clone.key == cert.key


class TestAdversarialPrograms(object):
    """Each fixture corrupts the (artc, reduced) program's claims table
    the way a buggy emitter would, then asserts certification rejects
    it with the specific actionable finding."""

    def _certify_corrupted(self, mutate):
        bench = fresh_benchmark()
        plan = planir.default_plan(bench)
        program = codegen.program_for(bench, plan, "artc", True)
        mutate(program.facts)
        return certify(bench, "jit")

    def test_wrongly_elided_gate_rejected(self):
        def mutate(facts):
            for fact in facts.values():
                if fact["gate"]:
                    fact["gate"] = False
                    return
            raise AssertionError("sample has no gated action")

        cert = self._certify_corrupted(mutate)
        assert not cert.ok
        assert "elided-gate" in checks_of(cert)
        finding = [f for f in cert.findings if f.check == "elided-gate"][0]
        assert finding.actions, "finding must name the unguarded action"
        assert "predecessor" in finding.message

    def test_stale_expected_ret_rejected(self):
        def mutate(facts):
            for fact in facts.values():
                if fact["conformance"] == "ok_ret":
                    fact["expected_ret"] = (fact["expected_ret"] or 0) + 17
                    return
            raise AssertionError("sample has no ok_ret conformance check")

        cert = self._certify_corrupted(mutate)
        assert not cert.ok
        assert "stale-expected-ret" in checks_of(cert)

    def test_missing_conformance_check_rejected(self):
        def mutate(facts):
            for fact in facts.values():
                if fact["conformance"] is not None:
                    fact["conformance"] = None
                    return
            raise AssertionError("no conformance check to drop")

        cert = self._certify_corrupted(mutate)
        assert not cert.ok
        assert "missing-conformance-check" in checks_of(cert)

    def test_dropped_release_run_rejected(self):
        def mutate(facts):
            for fact in facts.values():
                if fact["releases"]:
                    fact["releases"] = []
                    return
            raise AssertionError("no release batch to drop")

        cert = self._certify_corrupted(mutate)
        assert not cert.ok
        assert "release-mismatch" in checks_of(cert)

    def test_stale_bound_constant_rejected(self):
        def mutate(facts):
            for fact in facts.values():
                if fact["args"]:
                    corrupted = [dict(args) for args in fact["args"]]
                    corrupted[0]["__stale__"] = 1
                    fact["args"] = tuple(corrupted)
                    return
            raise AssertionError("no bound argument constants")

        cert = self._certify_corrupted(mutate)
        assert not cert.ok
        assert "stale-binding" in checks_of(cert)


class TestStalePlan(object):
    def test_corrupted_plan_entry_rejected_on_every_core(self):
        bench = fresh_benchmark()
        plan = planir.default_plan(bench)
        for entry in plan.entries:
            if entry[0] == planir.STATIC:
                entry[1][1]["path"] = "/corrupted-by-test"
                break
        else:
            raise AssertionError("sample has no STATIC plan entry")
        for core in CORES:
            cert = certify(bench, core, plan=plan)
            assert not cert.ok, core
            assert "stale-plan-entry" in checks_of(cert)
