"""The ``artc verify`` command end to end: clean artifacts certify
with exit 0, corrupted plans are rejected, ``--embed`` persists the
certificates, and ``artc lint`` gains the ir pass on artifacts."""

import json

import pytest

from repro.artc import artifact, planir
from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.cli import main
from repro.core.modes import ReplayMode

SAMPLE = "itunes_startsmall1"

_traced = []


def run_cli(*argv):
    return main(list(argv))


def fresh_benchmark():
    if not _traced:
        from repro.workloads.magritte import build_suite

        app = build_suite([SAMPLE])[SAMPLE]
        _traced.append(trace_application(app, PLATFORMS["mac-hdd"], seed=0))
    traced = _traced[0]
    return compile_trace(traced.trace, traced.snapshot)


@pytest.fixture()
def clean_artcb(tmp_path):
    path = str(tmp_path / "clean.artcb")
    artifact.save(fresh_benchmark(), path)
    return path


@pytest.fixture()
def corrupt_artcb(tmp_path):
    """An artifact whose embedded plan no longer matches its trace --
    the stale-bound-constant hazard ``artc verify`` exists to catch."""
    bench = fresh_benchmark()
    plan = planir.default_plan(bench)
    for entry in plan.entries:
        if entry[0] == planir.STATIC:
            entry[1][1]["path"] = "/corrupted-by-test"
            break
    else:
        raise AssertionError("sample has no STATIC plan entry")
    path = str(tmp_path / "corrupt.artcb")
    artifact.save(bench, path)
    return path


def payload_of(capsys):
    out, _ = capsys.readouterr()
    return json.loads(out[out.index("{"):])


def finding_checks(payload):
    return [
        finding["check"]
        for pass_dict in payload["passes"]
        for finding in pass_dict["findings"]
    ]


class TestVerifyCommand(object):
    def test_clean_artifact_verifies(self, clean_artcb, capsys):
        rc = run_cli("verify", clean_artcb, "--json")
        payload = payload_of(capsys)
        assert rc == 0
        assert payload["clean"] is True
        certs = payload["certificates"]
        assert sorted(c["core"] for c in certs) == ["events", "jit",
                                                    "scoreboard"]
        assert all(c["ok"] for c in certs)
        assert all(c["violations"] == [] for c in certs)
        preds = payload["predictions"]
        assert set(p["mode"] for p in preds) == set(ReplayMode.ALL)
        for pred in preds:
            if pred["status"] == "exact":
                assert pred["digest"] and pred["unknown"] == 0
            else:
                assert pred["digest"] is None

    def test_human_output_lists_certificates_and_predictions(
            self, clean_artcb, capsys):
        rc = run_cli("verify", clean_artcb)
        out, _ = capsys.readouterr()
        assert rc == 0
        assert "certificate events" in out
        assert "certificate jit" in out
        assert "prediction" in out

    def test_corrupted_plan_rejected(self, corrupt_artcb, capsys):
        rc = run_cli("verify", corrupt_artcb, "--json")
        payload = payload_of(capsys)
        assert rc == 1
        assert payload["clean"] is False
        assert "stale-plan-entry" in finding_checks(payload)

    def test_embed_persists_certificates(self, clean_artcb, capsys):
        rc = run_cli("verify", clean_artcb, "--embed")
        capsys.readouterr()
        assert rc == 0
        loaded = artifact.load(clean_artcb)
        certs = getattr(loaded, "certificates", None)
        assert certs and len(certs) == 3
        assert all(cert.ok for cert in certs)

    def test_dynamic_cross_check_passes(self, clean_artcb, capsys):
        rc = run_cli("verify", clean_artcb, "--dynamic", "-p", "ssd",
                     "--modes", "artc", "--core", "scoreboard", "--json")
        payload = payload_of(capsys)
        assert rc == 0
        abstract = [p for p in payload["passes"]
                    if p["pass"] == "abstract"][0]
        assert abstract["stats"]["cross_checked"] == 1
        assert "abstract-errno-contradiction" not in finding_checks(payload)
        assert "abstract-digest-contradiction" not in finding_checks(payload)


class TestLintArtifact(object):
    def test_lint_runs_ir_pass_on_artifact(self, clean_artcb, capsys):
        run_cli("lint", clean_artcb, "--json", "--no-modes")
        payload = payload_of(capsys)
        ir = [p for p in payload["passes"] if p["pass"] == "ir"]
        assert ir, "linting an .artcb must include the ir pass"
        assert ir[0]["clean"] and ir[0]["findings"] == []
        assert ir[0]["stats"]["entries"] > 0

    def test_lint_flags_corrupted_embedded_plan(self, corrupt_artcb, capsys):
        rc = run_cli("lint", corrupt_artcb, "--json", "--no-modes")
        payload = payload_of(capsys)
        assert rc == 1
        ir = [p for p in payload["passes"] if p["pass"] == "ir"][0]
        assert "stale-plan-entry" in [f["check"] for f in ir["findings"]]
