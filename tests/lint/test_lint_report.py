"""Report aggregation: severities, exit codes, rendering, JSON shape."""

import pytest

from repro.core.modes import RuleSet
from repro.lint.report import (
    ERROR,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    INFO,
    WARNING,
    Finding,
    LintReport,
    PassResult,
)


def report_with(findings):
    report = LintReport(label="t", ruleset=RuleSet.artc_default())
    report.add(PassResult("races", findings, {"races": len(findings)}))
    return report


class TestSeverities(object):
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("x", "fatal", "nope")

    def test_info_does_not_dirty_report(self):
        report = report_with([Finding("rename-shadow", INFO, "advisory")])
        assert report.clean
        assert report.exit_code == EXIT_CLEAN

    def test_warning_and_error_dirty_report(self):
        for severity in (WARNING, ERROR):
            report = report_with([Finding("x", severity, "m")])
            assert not report.clean
            assert report.exit_code == EXIT_FINDINGS

    def test_counts_by_severity(self):
        report = report_with([
            Finding("a", INFO, "m"),
            Finding("b", WARNING, "m"),
            Finding("c", ERROR, "m"),
            Finding("d", ERROR, "m"),
        ])
        assert report.counts_by_severity() == {INFO: 1, WARNING: 1, ERROR: 2}


class TestRendering(object):
    def test_render_caps_findings_per_pass(self):
        findings = [Finding("x", ERROR, "finding %d" % i) for i in range(10)]
        rendered = report_with(findings).render(max_findings=3)
        assert "finding 2" in rendered
        assert "finding 3" not in rendered
        assert "7 more findings" in rendered

    def test_render_includes_rule_hint(self):
        rendered = report_with([
            Finding("unordered-conflict", ERROR, "m", actions=(1, 4),
                    rule="file_seq"),
        ]).render()
        assert "[order with: file_seq]" in rendered
        assert "@#1,#4" in rendered

    def test_to_dict_roundtrips_counts(self):
        report = report_with([Finding("x", ERROR, "m", resource=("fd", 3, 0))])
        payload = report.to_dict()
        assert payload["exit_code"] == EXIT_FINDINGS
        assert payload["counts"][ERROR] == 1
        assert payload["passes"][0]["findings"][0]["resource"] == ["fd", 3, 0]
        assert payload["ruleset"]
