"""Graph sanity pass: clean compiles certify, corrupted graphs are
caught (the regression gate for the edge-reduction pass)."""

from repro.core.deps import DependencyGraph, build_dependencies
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.core.reduce import reduce_graph
from repro.lint.graphcheck import check_graph
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.2)


# The paper's introductory hazard: open/write/close handed across three
# threads, every edge cross-thread (so none is implied by sequencing).
HANDOFF = [
    rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
    rec(1, "T2", "write", {"fd": 3, "nbytes": 4096}, ret=4096),
    rec(2, "T3", "close", {"fd": 3}),
    rec(3, "T2", "stat", {"path": "/d/f"}),
]


def compiled(records=HANDOFF, reduce=True):
    snap = Snapshot()
    snap.add("/d", "dir")
    model = TraceModel(Trace(records), snap)
    graph = build_dependencies(model.actions, RuleSet.artc_default())
    if reduce:
        reduce_graph(graph, [a.record.tid for a in model.actions])
    return model.actions, graph


def checks_of(findings):
    return sorted(finding.check for finding in findings)


class TestCleanGraph(object):
    def test_compiled_graph_certifies(self):
        actions, graph = compiled()
        findings, stats = check_graph(graph, actions)
        assert findings == []
        assert stats["acyclic"]
        assert stats["reduction_checked"]
        assert stats["edges"] == graph.n_edges

    def test_unreduced_graph_skips_reduction_check(self):
        actions, graph = compiled(reduce=False)
        findings, stats = check_graph(graph, actions)
        assert findings == []
        assert not stats["reduction_checked"]


class TestCorruptedReduction(object):
    def _drop_cross_thread_wait(self, actions, graph):
        tid_of = [a.record.tid for a in actions]
        for dst, wait in enumerate(graph.reduced_preds):
            for src in wait:
                if tid_of[src] != tid_of[dst]:
                    wait.remove(src)
                    return src, dst
        raise AssertionError("no cross-thread reduced edge to drop")

    def test_dropped_wait_is_caught(self):
        actions, graph = compiled()
        src, dst = self._drop_cross_thread_wait(actions, graph)
        findings, stats = check_graph(graph, actions)
        assert "closure-mismatch" in checks_of(findings)
        witness = [f for f in findings if f.check == "closure-mismatch"][0]
        assert witness.detail["lost"]

    def test_foreign_wait_is_caught(self):
        actions, graph = compiled()
        # A wait on an action that is not a materialized edge.
        graph.reduced_preds[3].append(1)
        findings, _stats = check_graph(graph, actions)
        assert "reduced-not-subset" in checks_of(findings)

    def test_intact_reduction_stays_clean(self):
        actions, graph = compiled()
        findings, stats = check_graph(graph, actions)
        assert findings == [] and stats["reduction_checked"]


class TestStructure(object):
    def test_cycle_reported_with_members(self):
        actions, _ = compiled()
        graph = DependencyGraph(len(actions))
        graph.add_edge(1, 2, "fake")
        # add_edge refuses backward edges' bookkeeping errors, so forge
        # the corrupt state the way a buggy builder would.
        graph.edge_kinds[(2, 1)] = "fake"
        graph.preds[1].append(2)
        findings, stats = check_graph(graph, actions)
        assert not stats["acyclic"]
        cycle = [f for f in findings if f.check == "cycle"][0]
        assert set(cycle.detail["members"]) == {1, 2}
        assert "->" in cycle.message

    def test_self_edge_reported(self):
        actions, _ = compiled()
        graph = DependencyGraph(len(actions))
        graph.edge_kinds[(2, 2)] = "fake"
        graph.preds[2].append(2)
        findings, _stats = check_graph(graph, actions)
        assert "self-edge" in checks_of(findings)

    def test_orphaned_and_unattributed_edges_reported(self):
        actions, _ = compiled()
        graph = DependencyGraph(len(actions))
        graph.edge_kinds[(0, 2)] = "fake"  # attributed but not in preds
        graph.preds[3].append(1)           # in preds but unattributed
        findings, _stats = check_graph(graph, actions)
        checks = checks_of(findings)
        assert "orphaned-edge" in checks
        assert "unattributed-edge" in checks

    def test_out_of_range_edge_reported(self):
        actions, _ = compiled()
        graph = DependencyGraph(len(actions))
        graph.edge_kinds[(0, 99)] = "fake"
        findings, _stats = check_graph(graph, actions)
        assert "edge-out-of-range" in checks_of(findings)

    def test_duplicate_pred_reported(self):
        actions, _ = compiled()
        graph = DependencyGraph(len(actions))
        graph.add_edge(0, 2, "fake")
        graph.preds[2].append(0)
        findings, _stats = check_graph(graph, actions)
        assert "duplicate-pred" in checks_of(findings)


class TestReleasePartition(object):
    """The batched-release grouping must partition each successor list
    exactly; the pass resolves :func:`repro.artc.planir.release_runs`
    at call time, so corrupting it simulates a buggy batching change."""

    def test_clean_partition_counted(self):
        actions, graph = compiled()
        findings, stats = check_graph(graph, actions)
        assert findings == []
        assert stats["release_runs"] > 0

    def test_dropped_successor_caught(self, monkeypatch):
        from repro.artc import planir

        real = planir.release_runs

        def dropping(serial, tid_of):
            runs = [(tid, list(members))
                    for tid, members in real(serial, tid_of)]
            if runs:
                runs[-1][1].pop()
                if not runs[-1][1]:
                    runs.pop()
            return runs

        monkeypatch.setattr(planir, "release_runs", dropping)
        actions, graph = compiled()
        findings, _stats = check_graph(graph, actions)
        assert "release-partition" in checks_of(findings)
        witness = [f for f in findings
                   if f.check == "release-partition"][0]
        assert witness.detail["claimed"] != witness.detail["serial"]

    def test_foreign_owner_caught(self, monkeypatch):
        from repro.artc import planir

        def misowned(serial, tid_of):
            return [("T-bogus", list(serial))] if serial else []

        monkeypatch.setattr(planir, "release_runs", misowned)
        actions, graph = compiled()
        findings, _stats = check_graph(graph, actions)
        assert "release-partition" in checks_of(findings)
