"""Static race detection: one known unordered conflicting pair per
resource kind, caught under a weakened rule set and ordered away by
the ARTC defaults."""

import pytest

from repro.core.deps import build_dependencies
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.core.resources import Role
from repro.lint.conflicts import (
    find_races,
    touch_mutates,
    touch_table,
    weakest_ordering_rule,
)
from repro.syscalls.registry import spec_for
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.2)


def compile_actions(records, entries=()):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    return TraceModel(Trace(records), snap).actions


def races_of_kind(actions, ruleset, kind):
    graph = build_dependencies(actions, ruleset)
    scan = find_races(actions, graph)
    return [race for race in scan.races if race["resource"][0] == kind]


class TestKnownRacePerKind(object):
    # FILE: two cross-thread writes to the same file through private
    # descriptors -- only file_seq (or file_size) orders them.
    FILE_RACE = [
        rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=3),
        rec(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
        rec(2, "T1", "close", {"fd": 3}),
        rec(3, "T2", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=4),
        rec(4, "T2", "write", {"fd": 4, "nbytes": 10}, ret=10),
        rec(5, "T2", "close", {"fd": 4}),
    ]
    FILE_ENTRIES = [("/d", "dir"), ("/d/f", "reg", 100)]

    def test_file_pair_detected_without_file_rules(self):
        actions = compile_actions(self.FILE_RACE, self.FILE_ENTRIES)
        races = races_of_kind(actions, RuleSet.unconstrained(), "file")
        assert races
        pair = {(race["a"], race["b"]) for race in races}
        assert (1, 4) in pair
        by_pair = {(race["a"], race["b"]): race for race in races}
        assert by_pair[(1, 4)]["rule"] == "file_seq"
        assert by_pair[(1, 4)]["a_tid"] != by_pair[(1, 4)]["b_tid"]

    def test_file_pair_ordered_by_default(self):
        actions = compile_actions(self.FILE_RACE, self.FILE_ENTRIES)
        assert races_of_kind(actions, RuleSet.artc_default(), "file") == []

    # PATH: a create racing a stat of the same name -- path_stage+.
    PATH_RACE = [
        rec(0, "T1", "open", {"path": "/d/new", "flags": "O_WRONLY|O_CREAT"},
            ret=3),
        rec(1, "T1", "close", {"fd": 3}),
        rec(2, "T2", "stat", {"path": "/d/new"}),
    ]
    PATH_ENTRIES = [("/d", "dir")]

    def test_path_pair_detected_without_path_rules(self):
        actions = compile_actions(self.PATH_RACE, self.PATH_ENTRIES)
        races = races_of_kind(actions, RuleSet.unconstrained(), "path")
        assert [(race["a"], race["b"]) for race in races] == [(0, 2)]
        assert races[0]["rule"] == "path_stage+"

    def test_path_pair_ordered_by_default(self):
        actions = compile_actions(self.PATH_RACE, self.PATH_ENTRIES)
        assert races_of_kind(actions, RuleSet.artc_default(), "path") == []

    # FD: a descriptor handed across threads; the read both depends on
    # the open and races the close -- fd_stage orders those, fd_seq the
    # cursor among readers.
    FD_RACE = [
        rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDONLY"}, ret=3),
        rec(1, "T2", "read", {"fd": 3, "nbytes": 100}, ret=100),
        rec(2, "T1", "close", {"fd": 3}),
    ]
    FD_ENTRIES = [("/d", "dir"), ("/d/f", "reg", 4096)]

    def test_fd_pairs_detected_without_fd_rules(self):
        actions = compile_actions(self.FD_RACE, self.FD_ENTRIES)
        races = races_of_kind(actions, RuleSet.unconstrained(), "fd")
        pairs = {(race["a"], race["b"]): race for race in races}
        assert (0, 1) in pairs and (1, 2) in pairs
        assert pairs[(0, 1)]["rule"] == "fd_stage"
        assert pairs[(1, 2)]["rule"] == "fd_stage"

    def test_fd_pairs_ordered_by_default(self):
        actions = compile_actions(self.FD_RACE, self.FD_ENTRIES)
        assert races_of_kind(actions, RuleSet.artc_default(), "fd") == []

    # AIOCB: submission in one thread, reaping in another -- aio_stage.
    AIO_RACE = [
        rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=3),
        rec(1, "T1", "aio_read",
            {"aiocb": 7, "fd": 3, "nbytes": 512, "offset": 0}, ret=0),
        rec(2, "T2", "aio_return", {"aiocb": 7}, ret=512),
        rec(3, "T1", "close", {"fd": 3}),
    ]
    AIO_ENTRIES = [("/d", "dir"), ("/d/f", "reg", 4096)]

    def test_aiocb_pair_detected_without_aio_rules(self):
        actions = compile_actions(self.AIO_RACE, self.AIO_ENTRIES)
        races = races_of_kind(actions, RuleSet.unconstrained(), "aiocb")
        assert [(race["a"], race["b"]) for race in races] == [(1, 2)]
        assert races[0]["rule"] == "aio_stage"

    def test_aiocb_pair_ordered_by_default(self):
        actions = compile_actions(self.AIO_RACE, self.AIO_ENTRIES)
        assert races_of_kind(actions, RuleSet.artc_default(), "aiocb") == []


class TestMutationClassification(object):
    def test_open_trunc_mutates_file(self):
        spec = spec_for("open")
        plain = rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3)
        trunc = rec(0, "T1", "open",
                    {"path": "/f", "flags": "O_WRONLY|O_TRUNC"}, ret=3)
        assert not touch_mutates("file", Role.USE, spec, plain)
        assert touch_mutates("file", Role.USE, spec, trunc)

    def test_read_mutates_fd_but_not_file(self):
        spec = spec_for("read")
        record = rec(0, "T1", "read", {"fd": 3, "nbytes": 10}, ret=10)
        assert touch_mutates("fd", Role.USE, spec, record)
        assert not touch_mutates("file", Role.USE, spec, record)

    def test_create_and_delete_always_mutate(self):
        spec = spec_for("stat")
        record = rec(0, "T1", "stat", {"path": "/f"})
        assert touch_mutates("path", Role.CREATE, spec, record)
        assert touch_mutates("path", Role.DELETE, spec, record)


class TestWeakestRule(object):
    def test_stage_when_lifecycle_involved(self):
        assert weakest_ordering_rule("file", Role.CREATE, Role.USE) == "file_stage"
        assert weakest_ordering_rule("fd", Role.USE, Role.DELETE) == "fd_stage"
        assert weakest_ordering_rule("aiocb", Role.CREATE, Role.DELETE) == "aio_stage"

    def test_sequential_between_uses(self):
        assert weakest_ordering_rule("file", Role.USE, Role.USE) == "file_seq"
        assert weakest_ordering_rule("fd", Role.USE, Role.USE) == "fd_seq"
        assert weakest_ordering_rule("aiocb", Role.USE, Role.USE) == "aio_seq"

    def test_file_size_when_linked(self):
        assert weakest_ordering_rule(
            "file", Role.USE, Role.USE, size_linked=True
        ) == "file_size"

    def test_path_always_joint_stage(self):
        assert weakest_ordering_rule("path", Role.CREATE, Role.USE) == "path_stage+"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            weakest_ordering_rule("prog", Role.USE, Role.USE)


class TestScanBudgets(object):
    def test_max_findings_caps_records_not_counts(self):
        actions = compile_actions(
            TestKnownRacePerKind.FD_RACE, TestKnownRacePerKind.FD_ENTRIES
        )
        graph = build_dependencies(actions, RuleSet.unconstrained())
        scan = find_races(actions, graph, max_findings=0)
        assert scan.races == []
        assert scan.n_races > 0
        assert not scan.truncated

    def test_max_races_truncates(self):
        actions = compile_actions(
            TestKnownRacePerKind.FD_RACE, TestKnownRacePerKind.FD_ENTRIES
        )
        graph = build_dependencies(actions, RuleSet.unconstrained())
        scan = find_races(actions, graph, max_races=1)
        assert scan.truncated
        assert scan.n_races == 1
        assert "truncated" in scan.stats()

    def test_touch_table_merges_per_action(self):
        actions = compile_actions(
            TestKnownRacePerKind.FILE_RACE, TestKnownRacePerKind.FILE_ENTRIES
        )
        table = touch_table(actions)
        for series in table.values():
            indices = [entry[0] for entry in series]
            assert indices == sorted(indices)
            assert len(indices) == len(set(indices))
