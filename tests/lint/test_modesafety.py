"""Mode-safety matrix: the static Table-3 prediction."""

from repro.core.model import TraceModel
from repro.core.modes import ReplayMode, named_rulesets
from repro.lint.modesafety import mode_safety_matrix, predicted_unsafe
from repro.lint.report import render_mode_matrix
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.2)


# Cross-thread writers to a shared file: safe with file_seq, racy
# without it.
RECORDS = [
    rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=3),
    rec(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
    rec(2, "T1", "close", {"fd": 3}),
    rec(3, "T2", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=4),
    rec(4, "T2", "write", {"fd": 4, "nbytes": 10}, ret=10),
    rec(5, "T2", "close", {"fd": 4}),
]


def actions():
    snap = Snapshot()
    snap.add("/d", "dir")
    snap.add("/d/f", "reg", 100)
    return TraceModel(Trace(RECORDS), snap).actions


class TestMatrix(object):
    def test_every_mode_has_a_row(self):
        rows = mode_safety_matrix(actions())
        modes = [row["mode"] for row in rows]
        assert modes[0] == ReplayMode.SINGLE
        assert modes[1] == ReplayMode.TEMPORAL
        for name in named_rulesets():
            assert name in modes

    def test_strategies_safe_by_construction(self):
        rows = mode_safety_matrix(actions())
        for row in rows[:2]:
            assert row["safe"] and row["races"] == 0
            assert "note" in row

    def test_default_safe_stage_only_unsafe(self):
        rows = {row["mode"]: row for row in mode_safety_matrix(actions())}
        assert rows["artc-default"]["safe"]
        assert not rows["stage-only"]["safe"]
        assert rows["stage-only"]["by_kind"].get("file", 0) > 0
        assert not rows["unconstrained"]["safe"]

    def test_predicted_unsafe_lists_racy_modes(self):
        rows = mode_safety_matrix(actions())
        unsafe = predicted_unsafe(rows)
        assert "unconstrained" in unsafe
        assert "artc-default" not in unsafe

    def test_truncation_marks_lower_bound(self):
        rows = {
            row["mode"]: row
            for row in mode_safety_matrix(actions(), max_races=1)
        }
        racy = rows["unconstrained"]
        assert racy["truncated"] and racy["races"] == 1

    def test_render_matrix_shape(self):
        rendered = render_mode_matrix(mode_safety_matrix(actions()))
        lines = rendered.splitlines()
        assert "mode-safety matrix" in lines[0]
        assert "UNSAFE" in rendered and "safe" in rendered
        # strategy rows have no graph, shown as '-'
        assert any(line.strip().startswith("single-threaded") for line in lines)

    def test_truncated_count_renders_as_lower_bound(self):
        rendered = render_mode_matrix(mode_safety_matrix(actions(), max_races=1))
        assert ">=1" in rendered
