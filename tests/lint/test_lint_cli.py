"""The `artc lint` command: inputs, outputs, and exit codes."""

import json

import pytest

from repro.cli import main
from repro.lint import EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.2)


def run_cli(*argv):
    return main(list(argv))


CLEAN_RECORDS = [
    rec(0, "T1", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=3),
    rec(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
    rec(2, "T1", "close", {"fd": 3}),
    rec(3, "T2", "open", {"path": "/d/f", "flags": "O_RDWR"}, ret=4),
    rec(4, "T2", "write", {"fd": 4, "nbytes": 10}, ret=10),
    rec(5, "T2", "close", {"fd": 4}),
]


@pytest.fixture
def trace_files(tmp_path):
    trace_path = str(tmp_path / "t.trace.json")
    snap_path = str(tmp_path / "t.snap.json")
    Trace(CLEAN_RECORDS, label="clitest").save(trace_path)
    snap = Snapshot()
    snap.add("/d", "dir")
    snap.add("/d/f", "reg", 100)
    snap.save(snap_path)
    return trace_path, snap_path


class TestExitCodes(object):
    def test_clean_trace_exits_zero(self, trace_files):
        trace_path, snap_path = trace_files
        assert run_cli("lint", trace_path, "-s", snap_path) == EXIT_CLEAN

    def test_weak_ruleset_exits_one(self, trace_files, capsys):
        trace_path, snap_path = trace_files
        code = run_cli(
            "lint", trace_path, "-s", snap_path,
            "--mode-flags", "no-file-seq,file-stage", "--no-modes",
        )
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "unordered-conflict" in out
        assert "[order with: file_seq]" in out

    def test_missing_input_exits_two(self, tmp_path, capsys):
        code = run_cli("lint", str(tmp_path / "nope.trace.json"))
        assert code == EXIT_INTERNAL
        assert "internal error" in capsys.readouterr().err


class TestJsonOutput(object):
    def test_json_payload_shape(self, trace_files, capsys):
        trace_path, snap_path = trace_files
        assert run_cli("lint", trace_path, "-s", snap_path, "--json") == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["clean"] is True
        assert payload["exit_code"] == 0
        assert {p["pass"] for p in payload["passes"]} == {
            "races", "graph", "fsmodel"
        }
        modes = {row["mode"] for row in payload["mode_safety"]}
        assert "artc-default" in modes and "unconstrained" in modes

    def test_findings_serialized_with_rule(self, trace_files, capsys):
        trace_path, snap_path = trace_files
        code = run_cli(
            "lint", trace_path, "-s", snap_path,
            "--mode-flags", "no-file-seq,file-stage", "--no-modes", "--json",
        )
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        races = [p for p in payload["passes"] if p["pass"] == "races"][0]
        assert races["findings"]
        assert races["findings"][0]["rule"] == "file_seq"


class TestBenchmarkInput(object):
    def test_lint_compiled_benchmark(self, trace_files, tmp_path, capsys):
        trace_path, snap_path = trace_files
        bench_path = str(tmp_path / "b.bench.json")
        assert run_cli(
            "compile", trace_path, "-s", snap_path, "-o", bench_path
        ) == 0
        capsys.readouterr()
        assert run_cli("lint", bench_path, "--no-modes") == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "pass races" in out

    def test_mode_flags_recompile_benchmark_input(self, trace_files,
                                                  tmp_path, capsys):
        trace_path, snap_path = trace_files
        bench_path = str(tmp_path / "b.bench.json")
        run_cli("compile", trace_path, "-s", snap_path, "-o", bench_path)
        capsys.readouterr()
        code = run_cli(
            "lint", bench_path, "--mode-flags", "no-file-seq,file-stage", "--no-modes"
        )
        assert code == EXIT_FINDINGS
