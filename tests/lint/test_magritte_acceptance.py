"""Acceptance: `artc lint` on Magritte traces.

The default ARTC compile lints clean, and the static mode-safety
matrix over-approximates dynamic replay errors: every mode that fails
beyond the ARTC baseline (the planted missing-xattr residuals Table 3
attributes to incomplete initialization info, not ordering) is marked
statically UNSAFE.
"""

import pytest

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.bench.harness import trace_application
from repro.bench.platforms import PLATFORMS
from repro.core.modes import ReplayMode, named_rulesets
from repro.lint import lint_trace, predicted_unsafe
from repro.workloads.magritte import build_suite


def magritte(app):
    suite = build_suite([app])
    result = trace_application(
        suite[app], PLATFORMS["mac-ssd"], seed=0, warm_cache=True
    )
    return result.trace, result.snapshot


@pytest.fixture(scope="module")
def pages():
    return magritte("pages_create15")


@pytest.fixture(scope="module")
def pages_report(pages):
    trace, snapshot = pages
    return lint_trace(trace, snapshot)


class TestDefaultCompileLintsClean(object):
    def test_exit_zero(self, pages_report):
        assert pages_report.exit_code == 0

    def test_no_warnings_or_errors(self, pages_report):
        counts = pages_report.counts_by_severity()
        assert counts["error"] == 0 and counts["warning"] == 0

    def test_matrix_verdicts(self, pages_report):
        rows = {row["mode"]: row for row in pages_report.mode_matrix}
        assert rows["artc-default"]["safe"]
        assert not rows["unconstrained"]["safe"]
        assert rows["unconstrained"]["races"] > 100

    def test_numbers_start5_also_clean(self):
        trace, snapshot = magritte("numbers_start5")
        report = lint_trace(trace, snapshot, modes=False)
        assert report.exit_code == 0


@pytest.mark.tier2
class TestStaticPredictionCoversDynamicErrors(object):
    def _worst_failures(self, trace, snapshot, ruleset, seeds=3):
        bench = compile_trace(trace, snapshot, ruleset=ruleset)
        worst = 0
        for seed in range(seeds):
            fs = PLATFORMS["mac-ssd"].make_fs(seed=seed)
            initialize(fs, snapshot)
            report = replay(
                bench, fs, ReplayConfig(mode=ReplayMode.ARTC, jitter=5e-4)
            )
            worst = max(worst, report.failures)
        return worst

    def test_unsafe_modes_superset_of_erroring_modes(self, pages,
                                                     pages_report):
        trace, snapshot = pages
        statically_unsafe = set(predicted_unsafe(pages_report.mode_matrix))
        rulesets = named_rulesets()
        baseline = self._worst_failures(
            trace, snapshot, rulesets["artc-default"]
        )
        erroring = set()
        for name, ruleset in rulesets.items():
            if name == "artc-default":
                continue
            if self._worst_failures(trace, snapshot, ruleset) > baseline:
                erroring.add(name)
        assert erroring, "expected some mode to error dynamically"
        assert erroring <= statically_unsafe, (
            "dynamically erroring modes %s not statically predicted (%s)"
            % (sorted(erroring), sorted(statically_unsafe))
        )

    def test_artc_default_residuals_are_not_ordering_failures(self, pages):
        trace, snapshot = pages
        rulesets = named_rulesets()
        baseline = self._worst_failures(
            trace, snapshot, rulesets["artc-default"], seeds=5
        )
        single = compile_trace(trace, snapshot,
                               ruleset=rulesets["artc-default"])
        fs = PLATFORMS["mac-ssd"].make_fs(seed=0)
        initialize(fs, snapshot)
        report = replay(single, fs, ReplayConfig(mode=ReplayMode.SINGLE))
        # the same residuals appear under a total order: they are data
        # (snapshot) artifacts, not divergences lint should flag
        assert report.failures == baseline
