"""FS-model consistency pass: lifecycle anomalies and rename shadows."""

from repro.core.model import TraceModel
from repro.core.resources import Role
from repro.lint.fscheck import (
    _lifecycle_findings,
    _stale_generation_findings,
    check_fs_model,
)
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.2)


def model_of(records, entries=()):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    return TraceModel(Trace(records), snap), snap


def run_check(records, entries=()):
    model, snap = model_of(records, entries)
    return check_fs_model(model.actions, snap)


def by_check(findings):
    out = {}
    for finding in findings:
        out.setdefault(finding.check, []).append(finding)
    return out


class TestDescriptorLifecycle(object):
    def test_double_close(self):
        findings, _ = run_check([
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR"}, ret=3),
            rec(1, "T1", "close", {"fd": 3}),
            rec(2, "T2", "close", {"fd": 3}),
        ], [("/f", "reg", 100)])
        found = by_check(findings)["double-close"]
        assert found[0].severity == "warning"
        assert found[0].actions == (1, 2)

    def test_write_after_close(self):
        findings, _ = run_check([
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR"}, ret=3),
            rec(1, "T1", "close", {"fd": 3}),
            rec(2, "T2", "fsync", {"fd": 3}),
        ], [("/f", "reg", 100)])
        found = by_check(findings)["write-after-close"]
        assert found[0].actions == (1, 2)
        assert found[0].resource[0] == "fd"

    def test_clean_open_use_close_has_no_findings(self):
        findings, stats = run_check([
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 8}, ret=8),
            rec(2, "T1", "close", {"fd": 3}),
        ], [("/f", "reg", 100)])
        assert findings == []
        assert stats["model_misses"] == 0


class TestRenameShadow(object):
    RECORDS = [
        rec(0, "T1", "rename", {"old": "/a", "new": "/b"}),
    ]
    ENTRIES = [("/a", "reg", 10), ("/b", "reg", 10)]

    def test_plain_shadow_is_advisory(self):
        findings, _ = run_check(self.RECORDS, self.ENTRIES)
        found = by_check(findings)["rename-shadow"]
        assert found[0].severity == "info"
        assert found[0].detail["open_fds"] == []

    def test_shadow_with_open_descriptor_warns(self):
        findings, _ = run_check([
            rec(0, "T1", "open", {"path": "/b", "flags": "O_RDONLY"}, ret=3),
            rec(1, "T2", "rename", {"old": "/a", "new": "/b"}),
            rec(2, "T1", "close", {"fd": 3}),
        ], self.ENTRIES)
        found = by_check(findings)["rename-shadow"]
        assert found[0].severity == "warning"
        assert found[0].detail["open_fds"] == [3]

    def test_rename_to_fresh_name_is_clean(self):
        findings, _ = run_check([
            rec(0, "T1", "rename", {"old": "/a", "new": "/c"}),
        ], self.ENTRIES)
        assert "rename-shadow" not in by_check(findings)


class TestCraftedLifecycleTables(object):
    """The model cannot itself produce these malformed series -- they
    arise from inconsistent traces -- so the checks are driven with
    crafted touch tables over real actions."""

    RECORDS = [
        rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR"}, ret=3),
        rec(1, "T1", "write", {"fd": 3, "nbytes": 8}, ret=8),
        rec(2, "T2", "open", {"path": "/g", "flags": "O_RDWR"}, ret=4),
        rec(3, "T1", "read", {"fd": 3, "nbytes": 8}, ret=8),
        rec(4, "T1", "close", {"fd": 3}),
    ]
    ENTRIES = [("/f", "reg", 100), ("/g", "reg", 100)]

    def _actions(self):
        model, _ = model_of(self.RECORDS, self.ENTRIES)
        return model.actions

    def test_use_before_create(self):
        actions = self._actions()
        table = {("fd", 3, 0): [(1, Role.USE), (2, Role.CREATE)]}
        findings = _lifecycle_findings(actions, table)
        assert [f.check for f in findings] == ["use-before-create"]
        assert findings[0].actions == (1, 2)

    def test_double_create(self):
        actions = self._actions()
        table = {("fd", 3, 0): [(0, Role.CREATE), (2, Role.CREATE)]}
        findings = _lifecycle_findings(actions, table)
        assert [f.check for f in findings] == ["double-create"]

    def test_stale_generation_reuse(self):
        actions = self._actions()
        table = {
            ("fd", 3, 0): [(0, Role.CREATE), (3, Role.USE)],
            ("fd", 3, 1): [(2, Role.CREATE)],
        }
        findings = _stale_generation_findings(actions, table)
        assert [f.check for f in findings] == ["stale-generation-reuse"]
        assert findings[0].actions == (2, 3)
        assert findings[0].resource == ("fd", 3, 0)

    def test_generations_in_sequence_are_clean(self):
        actions = self._actions()
        table = {
            ("fd", 3, 0): [(0, Role.CREATE), (1, Role.DELETE)],
            ("fd", 3, 1): [(2, Role.CREATE), (4, Role.DELETE)],
        }
        assert _stale_generation_findings(actions, table) == []


class TestOrderingAndStats(object):
    def test_findings_sorted_by_first_action(self):
        findings, _ = run_check([
            rec(0, "T1", "open", {"path": "/b", "flags": "O_RDONLY"}, ret=3),
            rec(1, "T2", "rename", {"old": "/a", "new": "/b"}),
            rec(2, "T1", "close", {"fd": 3}),
            rec(3, "T1", "close", {"fd": 3}),
        ], [("/a", "reg", 10), ("/b", "reg", 10)])
        firsts = [f.actions[0] for f in findings if f.actions]
        assert firsts == sorted(firsts)

    def test_resource_count_reported(self):
        _, stats = run_check([
            rec(0, "T1", "stat", {"path": "/a"}),
        ], [("/a", "reg", 10)])
        assert stats["resources"] >= 1
