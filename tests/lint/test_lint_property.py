"""Property: under the ARTC default rules, compiled traces are
race-free -- the dependency builder orders every conflicting pair the
lint's detector can enumerate.  This is the static companion to the
replay-reproduces-everything property in tests/property."""

from hypothesis import given, settings, strategies as st

from repro.artc import compile_trace
from repro.lint import check_graph, find_races, lint_compiled
from tests.property.test_deps_property import generate_trace, thread_scripts


class TestDefaultRulesAreRaceFree(object):
    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_zero_races_under_artc_defaults(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        if not bench.actions:
            return
        scan = find_races(bench.actions, bench.graph)
        assert scan.n_races == 0, scan.races

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_compiled_graph_passes_sanity(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        findings, stats = check_graph(bench.graph, bench.actions)
        assert findings == []
        assert stats["acyclic"]

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_full_lint_races_and_graph_clean(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        report = lint_compiled(
            bench.actions, bench.graph, bench.ruleset,
            snapshot=snapshot, modes=False,
        )
        by_name = {p.name: p for p in report.passes}
        assert by_name["races"].clean, by_name["races"].findings
        assert by_name["graph"].clean, by_name["graph"].findings
