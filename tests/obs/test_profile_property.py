"""Property: the critical-path bound never exceeds the measured makespan.

For every Magritte sample trace and every replay mode, the longest
weighted chain over the constraints that mode enforced — weighted by
the latencies that run measured — must be <= the measured elapsed
time.  This is the soundness property that makes ``artc profile``'s
"path covers N%" line meaningful.
"""

import pytest

from repro.artc.compiler import compile_trace
from repro.bench.harness import profile_benchmark, trace_application
from repro.bench.platforms import PLATFORMS
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite

SAMPLE_APPS = ("numbers_start5", "pages_create15")


@pytest.fixture(scope="module", params=SAMPLE_APPS)
def bench(request):
    suite = build_suite([request.param])
    traced = trace_application(
        suite[request.param], PLATFORMS["mac-ssd"], seed=0, warm_cache=True
    )
    return compile_trace(traced.trace, traced.snapshot)


@pytest.mark.parametrize("mode", sorted(ReplayMode.ALL))
def test_bound_le_makespan(bench, mode):
    report, _obs, critpath = profile_benchmark(
        bench, PLATFORMS["hdd-ext4"], mode=mode, seed=3,
    )
    assert critpath.length <= report.elapsed + 1e-9
    assert critpath.n_actions == report.n_actions
    # The serial bound dominates every chain.
    assert critpath.length <= critpath.total_weight + 1e-9


def test_single_mode_bound_is_tight(bench):
    # One replay thread: the chain is the whole program, so the bound
    # equals the makespan exactly (every action is on the path).
    report, _obs, critpath = profile_benchmark(
        bench, PLATFORMS["hdd-ext4"], mode=ReplayMode.SINGLE, seed=3,
    )
    assert critpath.length == pytest.approx(report.elapsed)
    assert len(critpath.path) == report.n_actions


def test_full_edge_set_bound_still_sound(bench):
    report, _obs, critpath = profile_benchmark(
        bench, PLATFORMS["hdd-ext4"], mode=ReplayMode.ARTC, seed=3,
        reduced_deps=False,
    )
    assert critpath.length <= report.elapsed + 1e-9
