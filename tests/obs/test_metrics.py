"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    COUNT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDS,
    Metrics,
    NULL_METRICS,
    NullMetrics,
)


class TestInstruments(object):
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.add(0.5)
        assert gauge.value == 4.0

    def test_histogram_tracks_count_sum_max_mean(self):
        hist = Histogram("h")
        for value in (1e-6, 2e-3, 0.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(1e-6 + 2e-3 + 0.5)
        assert hist.max == 0.5
        assert hist.mean == pytest.approx(hist.sum / 3)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_bucket_placement_is_log_scale(self):
        hist = Histogram("h")
        # One observation per bound, exactly on the inclusive upper edge.
        for bound in LATENCY_BOUNDS:
            hist.observe(bound)
        assert hist.buckets == [1] * len(LATENCY_BOUNDS) + [0]

    def test_overflow_bucket_catches_the_tail(self):
        hist = Histogram("h")
        hist.observe(LATENCY_BOUNDS[-1] * 10)
        assert hist.buckets[-1] == 1

    def test_bucket_totals_match_count(self):
        hist = Histogram("h", bounds=COUNT_BOUNDS)
        for value in (1, 2, 3, 5, 8, 1000, 99999):
            hist.observe(value)
        assert sum(hist.buckets) == hist.count == 7


class TestRegistry(object):
    def test_create_then_return_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("b") is metrics.gauge("b")
        assert metrics.histogram("c") is metrics.histogram("c")

    def test_type_mismatch_raises(self):
        metrics = Metrics()
        metrics.counter("x")
        with pytest.raises(TypeError):
            metrics.gauge("x")

    def test_iteration_sorted_by_name(self):
        metrics = Metrics()
        metrics.counter("z")
        metrics.gauge("a")
        assert [i.name for i in metrics] == ["a", "z"]

    def test_value_lookup(self):
        metrics = Metrics()
        metrics.counter("c").inc(7)
        metrics.gauge("g").set(1.5)
        metrics.histogram("h").observe(2.0)
        assert metrics.value("c") == 7
        assert metrics.value("g") == 1.5
        assert metrics.value("h") == 2.0  # histogram sum
        assert metrics.value("missing", default=-1) == -1

    def test_to_dict_is_json_serializable(self):
        metrics = Metrics()
        metrics.counter("c").inc()
        metrics.gauge("g").set(2.0)
        metrics.histogram("h").observe(1e-4)
        payload = json.loads(json.dumps(metrics.to_dict()))
        assert payload["c"] == {"type": "counter", "value": 1}
        assert payload["g"] == {"type": "gauge", "value": 2.0}
        assert payload["h"]["type"] == "histogram"
        assert payload["h"]["count"] == 1
        assert sum(payload["h"]["buckets"]) == 1

    def test_render_lists_and_filters(self):
        metrics = Metrics()
        metrics.counter("replay.actions").inc(3)
        metrics.counter("storage.reads").inc()
        text = metrics.render()
        assert "replay.actions" in text and "storage.reads" in text
        assert "storage.reads" not in metrics.render(prefix="replay.")


class TestNullRegistry(object):
    def test_instruments_are_inert(self):
        null = NullMetrics()
        null.counter("c").inc(5)
        null.gauge("g").set(9)
        null.histogram("h").observe(1.0)
        assert len(null) == 0
        assert list(null) == []
        assert null.to_dict() == {}

    def test_shared_instance_disabled(self):
        assert NULL_METRICS.enabled is False
        assert Metrics.enabled is True
