"""Tests for the span recorder and its exports (repro.obs.spans)."""

import json

import pytest

from repro.obs.spans import NULL_SPANS, NullSpanRecorder, SpanRecorder


def small_recording():
    rec = SpanRecorder()
    rec.record("pread", "syscall", "T1", 0.0, 0.002, args={"idx": 0})
    rec.record("R", "io", "hdd/s0", 0.001, 0.0035, args={"lba": 64})
    rec.record("pwrite", "syscall", "T2", 0.002, 0.004)
    rec.instant("short-read", "warning", "T1", 0.003, args={"idx": 7})
    return rec


class TestRecording(object):
    def test_span_duration(self):
        rec = SpanRecorder()
        span = rec.record("x", "c", "t", 1.0, 1.25)
        assert span.duration == pytest.approx(0.25)

    def test_len_counts_spans_and_instants(self):
        assert len(small_recording()) == 4

    def test_tracks_in_first_appearance_order(self):
        assert small_recording().tracks() == ["T1", "hdd/s0", "T2"]

    def test_by_category_and_total_time(self):
        rec = small_recording()
        cats = rec.by_category()
        assert len(cats["syscall"]) == 2
        assert rec.total_time("io") == pytest.approx(0.0025)
        assert rec.total_time() == pytest.approx(0.002 + 0.0025 + 0.002)


class TestChromeExport(object):
    def test_round_trips_through_json_loads(self):
        data = json.loads(small_recording().to_chrome_json())
        assert isinstance(data["traceEvents"], list)
        assert data["displayTimeUnit"] == "ms"

    def test_thread_name_metadata_per_track(self):
        data = small_recording().to_chrome()
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == ["T1", "hdd/s0", "T2"]
        # Distinct synthetic tids per track.
        assert len({e["tid"] for e in meta}) == 3

    def test_complete_events_in_microseconds(self):
        data = small_recording().to_chrome()
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 3
        first = spans[0]
        assert first["name"] == "pread"
        assert first["cat"] == "syscall"
        assert first["ts"] == pytest.approx(0.0)
        assert first["dur"] == pytest.approx(2000.0)  # 2 ms in us
        assert first["args"] == {"idx": 0}

    def test_instants_are_thread_scoped(self):
        data = small_recording().to_chrome()
        marks = [e for e in data["traceEvents"] if e["ph"] == "i"]
        assert len(marks) == 1
        assert marks[0]["s"] == "t"
        assert marks[0]["name"] == "short-read"

    def test_empty_recorder_exports_valid_json(self):
        data = json.loads(SpanRecorder().to_chrome_json())
        assert data["traceEvents"] == []

    def test_save_chrome(self, tmp_path):
        path = str(tmp_path / "trace.json")
        small_recording().save_chrome(path)
        with open(path) as handle:
            assert len(json.load(handle)["traceEvents"]) == 3 + 1 + 3


class TestJsonlExport(object):
    def test_each_line_parses(self):
        text = small_recording().to_jsonl()
        lines = text.strip().split("\n")
        assert len(lines) == 4
        entries = [json.loads(line) for line in lines]
        assert entries[0]["name"] == "pread"
        assert entries[0]["start"] == 0.0
        assert entries[-1]["ts"] == 0.003  # instant uses ts, not start/end

    def test_empty_recorder_exports_empty_string(self):
        assert SpanRecorder().to_jsonl() == ""

    def test_save_jsonl(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        small_recording().save_jsonl(path)
        with open(path) as handle:
            assert sum(1 for _ in handle) == 4


class TestNullRecorder(object):
    def test_drops_everything(self):
        null = NullSpanRecorder()
        assert null.record("x", "c", "t", 0.0, 1.0) is None
        null.instant("y", "c", "t", 0.5)
        assert len(null) == 0
        assert json.loads(null.to_chrome_json())["traceEvents"] == []

    def test_shared_instance_disabled(self):
        assert NULL_SPANS.enabled is False
        assert SpanRecorder.enabled is True
