"""Instrumentation must not change replay behaviour.

The acceptance bar for repro.obs: an instrumented replay produces the
same results, timings, and warnings as an uninstrumented one (the
disabled path is genuinely zero-cost, the enabled path is read-only),
and the enabled path actually populates metrics and spans.
"""

import pytest

from repro.bench.harness import (
    profile_benchmark,
    replay_benchmark,
    trace_application,
)
from repro.bench.platforms import PLATFORMS
from repro.artc.compiler import compile_trace
from repro.core.modes import ReplayMode
from repro.workloads import ParallelRandomReaders


@pytest.fixture(scope="module")
def bench():
    app = ParallelRandomReaders(nthreads=3)
    traced = trace_application(app, PLATFORMS["ssd"], seed=5)
    return compile_trace(traced.trace, traced.snapshot)


def report_fingerprint(report):
    return (
        report.elapsed,
        [(r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err, r.matched)
         for r in report.results],
        [(w.idx, w.kind, w.message, w.count) for w in report.warnings],
    )


class TestNoBehaviourChange(object):
    @pytest.mark.parametrize("mode", sorted(ReplayMode.ALL))
    def test_replay_identical_with_and_without_obs(self, bench, mode):
        plain = replay_benchmark(
            bench, PLATFORMS["hdd-ext4"], mode=mode, seed=7,
        )
        instrumented, obs, _critpath = profile_benchmark(
            bench, PLATFORMS["hdd-ext4"], mode=mode, seed=7,
        )
        assert report_fingerprint(plain) == report_fingerprint(instrumented)
        assert len(obs.metrics) > 0


class TestEnabledPathPopulates(object):
    def test_replay_metrics(self, bench):
        report, obs, _critpath = profile_benchmark(
            bench, PLATFORMS["hdd-ext4"], seed=7,
        )
        metrics = obs.metrics
        assert metrics.value("replay.actions") == report.n_actions
        assert metrics.value("replay.elapsed_seconds") == report.elapsed
        latency = metrics.get("replay.action_latency_seconds")
        assert latency.count == report.n_actions
        assert latency.sum == pytest.approx(report.thread_time())

    def test_storage_metrics(self, bench):
        _report, obs, _critpath = profile_benchmark(
            bench, PLATFORMS["hdd-ext4"], seed=7,
        )
        metrics = obs.metrics
        # Cold caches: the reads must have reached the device.
        assert metrics.value("storage.hdd.s0.dispatches") > 0
        assert metrics.get("storage.hdd.s0.seek_seconds").count > 0
        assert metrics.get("storage.queue_depth_at_submit").count > 0
        assert metrics.value("storage.cache.hits") >= 0

    def test_spans_cover_actions_and_io(self, bench):
        report, obs, _critpath = profile_benchmark(
            bench, PLATFORMS["hdd-ext4"], seed=7,
        )
        cats = obs.spans.by_category()
        assert len(cats["syscall"]) == report.n_actions
        assert len(cats["io"]) > 0
        # Every replay thread appears as a track.
        tracks = set(obs.spans.tracks())
        for tid in {r.tid for r in report.results}:
            assert ("T%s" % tid) in tracks

    def test_critical_path_bounds_this_run(self, bench):
        report, _obs, critpath = profile_benchmark(
            bench, PLATFORMS["hdd-ext4"], seed=7,
        )
        assert critpath.length <= report.elapsed + 1e-9
        assert critpath.length > 0
