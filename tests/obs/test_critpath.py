"""Tests for the critical-path profiler (repro.obs.critpath)."""

import json

import pytest

from repro.obs.critpath import START, longest_chain


def label(edges):
    """kind_of callback from an explicit {(src, dst): kind} table."""
    return lambda src, dst: edges.get((src, dst), "thread")


class TestLongestChain(object):
    def test_diamond_picks_the_heavier_arm(self):
        #   0 -> 1 -> 3       weights: 1, 2, 3, 1
        #   0 -> 2 -> 3       chain: 0, 2, 3 with length 5
        preds = [[], [0], [0], [1, 2]]
        weights = [1.0, 2.0, 3.0, 1.0]
        result = longest_chain(
            4, preds, weights,
            label({(0, 2): "file_seq", (2, 3): "name"}),
        )
        assert result.length == pytest.approx(5.0)
        assert result.path == [0, 2, 3]

    def test_attribution_per_edge_kind(self):
        preds = [[], [0], [0], [1, 2]]
        weights = [1.0, 2.0, 3.0, 1.0]
        result = longest_chain(
            4, preds, weights,
            label({(0, 2): "file_seq", (2, 3): "name"}),
        )
        # Head weight goes to START; each later node's weight goes to
        # the kind of its critical in-edge.
        assert result.time_by_kind == {START: 1.0, "file_seq": 3.0, "name": 1.0}
        assert result.edges_by_kind == {"file_seq": 1, "name": 1}

    def test_disconnected_nodes_still_counted(self):
        result = longest_chain(
            3, [[], [], []], [1.0, 5.0, 2.0], label({}),
        )
        assert result.length == pytest.approx(5.0)
        assert result.path == [1]
        assert result.total_weight == pytest.approx(8.0)

    def test_empty_graph(self):
        result = longest_chain(0, [], [], label({}))
        assert result.length == 0.0
        assert result.path == []

    def test_backward_edge_raises(self):
        with pytest.raises(ValueError):
            longest_chain(2, [[1], []], [1.0, 1.0], label({}))

    def test_parallelism_and_slack(self):
        preds = [[], [], [0, 1]]
        weights = [2.0, 1.0, 1.0]
        result = longest_chain(3, preds, weights, label({}))
        assert result.length == pytest.approx(3.0)
        assert result.parallelism == pytest.approx(4.0 / 3.0)
        assert result.slack(3.5) == pytest.approx(0.5)

    def test_to_dict_is_json_serializable(self):
        result = longest_chain(2, [[], [0]], [1.0, 1.0], label({}))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["length"] == 2.0
        assert payload["path"] == [0, 1]
        assert payload["weights"] == "trace"

    def test_render_mentions_kinds_and_makespan(self):
        result = longest_chain(
            2, [[], [0]], [1.0, 1.0], label({(0, 1): "file_seq"}),
        )
        text = result.render(makespan=2.5)
        assert "critical path:" in text
        assert "file_seq" in text
        assert "slack" in text


class TestTraceCriticalPath(object):
    def make_benchmark(self):
        from repro.artc.compiler import compile_trace
        from repro.tracing.snapshot import Snapshot
        from repro.tracing.trace import Trace, TraceRecord

        records = [
            TraceRecord(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"},
                        3, None, 0.0, 0.1),
            TraceRecord(1, 2, "open", {"path": "/g", "flags": "O_RDONLY"},
                        4, None, 0.0, 0.2),
            TraceRecord(2, 1, "pread", {"fd": 3, "nbytes": 10, "offset": 0},
                        10, None, 0.1, 0.4),
            TraceRecord(3, 2, "close", {"fd": 4}, 0, None, 0.2, 0.3),
            TraceRecord(4, 1, "close", {"fd": 3}, 0, None, 0.4, 0.5),
        ]
        snap = Snapshot()
        snap.add("/f", "reg", 4096)
        snap.add("/g", "reg", 4096)
        return compile_trace(Trace(records), snap)

    def test_bounded_by_serial_time_and_longest_call(self):
        from repro.obs import trace_critical_path

        bench = self.make_benchmark()
        result = trace_critical_path(bench)
        durations = [
            a.record.t_return - a.record.t_enter for a in bench.actions
        ]
        assert result.length <= sum(durations) + 1e-12
        assert result.length >= max(durations)
        assert result.n_actions == 5

    def test_full_graph_bound_at_least_reduced(self):
        from repro.obs import trace_critical_path

        bench = self.make_benchmark()
        reduced = trace_critical_path(bench, reduced=True)
        full = trace_critical_path(bench, reduced=False)
        # Reduction removes no constraints, so the chains agree.
        assert full.length == pytest.approx(reduced.length)
