"""I/O-space enumeration tests (the paper's section 2 formalism).

For small traces, enumerating every admissible ordering lets us check
the rule-strength claims *exhaustively*: stronger rules admit strict
subsets of orderings, program_seq admits exactly one, and the
unconstrained space is every thread-order interleaving.
"""

import math

import pytest

from repro.core.analysis import enumerate_io_space
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    return TraceRecord(idx, tid, name, args, ret, err, float(idx), idx + 0.4)


def model_of(records, entries=()):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    return TraceModel(Trace(records), snap)


def interleavings(counts):
    """Number of interleavings of threads with the given action counts."""
    total = math.factorial(sum(counts))
    for count in counts:
        total //= math.factorial(count)
    return total


@pytest.fixture(scope="module")
def handoff():
    """T1 creates and writes; T2 reads its own file then closes T1's fd."""
    records = [
        rec(0, "T1", "open", {"path": "/d/f", "flags": "O_WRONLY|O_CREAT"}, ret=3),
        rec(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
        rec(2, "T2", "stat", {"path": "/d/other"}, ret=0),
        rec(3, "T2", "close", {"fd": 3}),
    ]
    return model_of(records, [("/d", "dir"), ("/d/other", "reg", 5)]).actions


class TestSpaces(object):
    def test_unconstrained_admits_every_interleaving(self, handoff):
        space = enumerate_io_space(handoff, RuleSet.unconstrained())
        assert len(space) == interleavings([2, 2])  # 6

    def test_program_seq_admits_exactly_the_trace_order(self, handoff):
        space = enumerate_io_space(handoff, RuleSet(program_seq=True))
        assert space == [(0, 1, 2, 3)]

    def test_artc_space_in_between(self, handoff):
        space = enumerate_io_space(handoff, RuleSet.artc_default())
        assert 1 < len(space) < 6
        # The close must come after both fd-3 actions; the unrelated
        # stat floats freely.
        for order in space:
            assert order.index(3) > order.index(1) > order.index(0)

    def test_subsumption_chain(self, handoff):
        unconstrained = set(enumerate_io_space(handoff, RuleSet.unconstrained()))
        default = set(enumerate_io_space(handoff, RuleSet.artc_default()))
        total = set(enumerate_io_space(handoff, RuleSet(program_seq=True)))
        assert total <= default <= unconstrained
        assert total < default < unconstrained

    def test_trace_order_always_admissible(self, handoff):
        for ruleset in (
            RuleSet.unconstrained(),
            RuleSet.artc_default(),
            RuleSet(program_seq=True),
            RuleSet.with_file_size(),
        ):
            space = enumerate_io_space(handoff, ruleset)
            assert (0, 1, 2, 3) in space


class TestRuleStrengthExhaustively(object):
    def _two_readers(self):
        """Two threads each reading the same pre-existing file."""
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            rec(1, "T1", "pread", {"fd": 3, "nbytes": 10, "offset": 0}, ret=10),
            rec(2, "T2", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=4),
            rec(3, "T2", "pread", {"fd": 4, "nbytes": 10, "offset": 50}, ret=10),
        ]
        return model_of(records, [("/f", "reg", 100)]).actions

    def test_file_seq_overconstrains_reader_pairs(self):
        """The paper's own overconstraint example: two reads of one file
        could safely reorder, but file_seq forbids it."""
        actions = self._two_readers()
        seq_space = set(enumerate_io_space(actions, RuleSet()))
        stage_space = set(
            enumerate_io_space(
                actions, RuleSet(file_seq=False, file_stage=True)
            )
        )
        assert seq_space < stage_space

    def test_file_size_matches_stage_when_no_writes(self):
        actions = self._two_readers()
        size_space = set(enumerate_io_space(actions, RuleSet.with_file_size()))
        stage_space = set(
            enumerate_io_space(actions, RuleSet(file_seq=False, file_stage=True))
        )
        assert size_space == stage_space

    def test_limit_guard(self, handoff):
        with pytest.raises(ValueError):
            enumerate_io_space(handoff, RuleSet.unconstrained(), limit=2)
