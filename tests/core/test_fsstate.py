"""Direct unit tests for the symbolic file-system model."""

import pytest

from repro.core.fsstate import FsState
from repro.core.resources import FD, FILE, PATH, Role
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.1)


def snapshot(*entries):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    return snap


def touches_of(state, record):
    touches, _ann = state.apply(record)
    return touches


def keys(touches, kind=None, role=None):
    return [
        t.key
        for t in touches
        if (kind is None or t.kind == kind) and (role is None or t.role == role)
    ]


class TestResolution(object):
    def test_snapshot_tree_loaded(self):
        state = FsState(snapshot(("/a", "dir"), ("/a/f", "reg", 10)))
        res = state.resolve("/a/f")
        assert res is not None and res[2] is not None
        assert res[2].ftype == "reg"

    def test_symlink_following(self):
        state = FsState(
            snapshot(("/a", "dir"), ("/a/f", "reg", 10), ("/l", "symlink", 0, "/a/f"))
        )
        res = state.resolve("/l", follow_last=True)
        assert res[2].ftype == "reg"
        assert len(res[3]) == 1  # the symlink's own uid recorded

    def test_nofollow_returns_the_link(self):
        state = FsState(snapshot(("/l", "symlink", 0, "/target")))
        res = state.resolve("/l", follow_last=False)
        assert res[2].ftype == "symlink"

    def test_relative_symlink(self):
        state = FsState(
            snapshot(("/a", "dir"), ("/a/f", "reg", 1), ("/a/l", "symlink", 0, "f"))
        )
        res = state.resolve("/a/l")
        assert res[2].ftype == "reg"

    def test_symlink_loop_gives_none(self):
        state = FsState(
            snapshot(("/x", "symlink", 0, "/y"), ("/y", "symlink", 0, "/x"))
        )
        assert state.resolve("/x") is None

    def test_base_tree_has_devfs(self):
        state = FsState()
        assert state.resolve("/dev/random")[2] is not None
        assert state.resolve("/tmp")[2] is not None

    def test_cwd_relative_paths(self):
        state = FsState(snapshot(("/a", "dir"), ("/a/f", "reg", 1)))
        state.cwd = "/a"
        assert state._norm("f") == "/a/f"


class TestPathGenerations(object):
    def test_create_bumps_generation(self):
        state = FsState(snapshot(("/d", "dir")))
        touches = touches_of(
            state, rec(0, 1, "open", {"path": "/d/x", "flags": "O_CREAT|O_WRONLY"}, ret=3)
        )
        created = keys(touches, PATH, Role.CREATE)
        assert (PATH, "/d/x", 1) in created

    def test_failed_access_uses_absence_generation(self):
        state = FsState(snapshot(("/d", "dir")))
        touches = touches_of(state, rec(0, 1, "stat", {"path": "/d/x"}, ret=-1, err="ENOENT"))
        assert (PATH, "/d/x", 0) in keys(touches, PATH, Role.USE)

    def test_unlink_creates_absence_generation(self):
        state = FsState(snapshot(("/d", "dir"), ("/d/x", "reg", 1)))
        touches = touches_of(state, rec(0, 1, "unlink", {"path": "/d/x"}))
        assert (PATH, "/d/x", 0) in keys(touches, PATH, Role.DELETE)
        assert (PATH, "/d/x", 1) in keys(touches, PATH, Role.CREATE)
        # A later failed stat lands in the new absence generation.
        touches = touches_of(state, rec(1, 2, "stat", {"path": "/d/x"}, ret=-1, err="ENOENT"))
        assert (PATH, "/d/x", 1) in keys(touches, PATH, Role.USE)

    def test_recreate_continues_the_chain(self):
        state = FsState(snapshot(("/d", "dir"), ("/d/x", "reg", 1)))
        touches_of(state, rec(0, 1, "unlink", {"path": "/d/x"}))
        touches = touches_of(
            state, rec(1, 1, "open", {"path": "/d/x", "flags": "O_CREAT|O_WRONLY"}, ret=3)
        )
        assert (PATH, "/d/x", 2) in keys(touches, PATH, Role.CREATE)


class TestDirectoryRename(object):
    @pytest.fixture
    def state(self):
        return FsState(
            snapshot(
                ("/d", "dir"),
                ("/d/sub", "dir"),
                ("/d/sub/f1", "reg", 1),
                ("/d/sub/f2", "reg", 1),
            )
        )

    def test_descendant_files_touched(self, state):
        uid_f1 = state.resolve("/d/sub/f1")[2].uid
        uid_f2 = state.resolve("/d/sub/f2")[2].uid
        touches = touches_of(state, rec(0, 1, "rename", {"old": "/d/sub", "new": "/d/moved"}))
        file_keys = keys(touches, FILE)
        assert (FILE, uid_f1) in file_keys
        assert (FILE, uid_f2) in file_keys

    def test_old_and_new_descendant_paths_transition(self, state):
        touches = touches_of(state, rec(0, 1, "rename", {"old": "/d/sub", "new": "/d/moved"}))
        names = {key[1] for key in keys(touches, PATH)}
        assert {"/d/sub", "/d/moved", "/d/sub/f1", "/d/moved/f1",
                "/d/sub/f2", "/d/moved/f2"} <= names

    def test_tree_actually_moves(self, state):
        touches_of(state, rec(0, 1, "rename", {"old": "/d/sub", "new": "/d/moved"}))
        assert state.resolve("/d/moved/f1")[2] is not None
        assert state.resolve("/d/sub") [2] is None


class TestFdBookkeeping(object):
    def test_reuse_gets_new_generation(self):
        state = FsState(snapshot(("/f", "reg", 1), ("/g", "reg", 1)))
        _t, ann = state.apply(rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3))
        assert ann["ret_fd"] == 0
        state.apply(rec(1, 1, "close", {"fd": 3}))
        _t, ann = state.apply(rec(2, 1, "open", {"path": "/g", "flags": "O_RDONLY"}, ret=3))
        assert ann["ret_fd"] == 1

    def test_use_binds_to_current_generation(self):
        state = FsState(snapshot(("/f", "reg", 1)))
        state.apply(rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3))
        touches, ann = state.apply(rec(1, 2, "read", {"fd": 3, "nbytes": 10}, ret=10))
        assert ann["fd"] == 0
        assert (FD, 3, 0) in [t.key for t in touches]

    def test_fd_use_touches_underlying_file(self):
        state = FsState(snapshot(("/f", "reg", 1)))
        uid = state.resolve("/f")[2].uid
        state.apply(rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3))
        touches, _ann = state.apply(rec(1, 1, "read", {"fd": 3, "nbytes": 10}, ret=10))
        assert (FILE, uid) in keys(touches, FILE)

    def test_untracked_fd_gets_implicit_binding(self):
        state = FsState()
        touches, ann = state.apply(rec(0, 1, "write", {"fd": 1, "nbytes": 5}, ret=5))
        assert ann["fd"] == 0  # stdout opened before the trace began

    def test_dup_creates_generation_for_new_number(self):
        state = FsState(snapshot(("/f", "reg", 1)))
        state.apply(rec(0, 1, "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3))
        touches, ann = state.apply(rec(1, 1, "dup", {"fd": 3}, ret=4))
        assert ann["ret_fd"] == 0
        assert (FD, 4, 0) in keys(touches, FD, Role.CREATE)

    def test_pipe_creates_two(self):
        state = FsState()
        touches, ann = state.apply(rec(0, 1, "pipe", {}, ret=[3, 4]))
        assert ann["ret_fds"] == [0, 0]
        assert len(keys(touches, FD, Role.CREATE)) == 2


class TestHardLinksAndIdentity(object):
    def test_two_paths_one_file(self):
        state = FsState(snapshot(("/f", "reg", 1)))
        uid = state.resolve("/f")[2].uid
        state.apply(rec(0, 1, "link", {"target": "/f", "path": "/g"}))
        assert state.resolve("/g")[2].uid == uid

    def test_unlink_of_one_link_is_use_not_delete(self):
        state = FsState(snapshot(("/f", "reg", 1)))
        uid = state.resolve("/f")[2].uid
        state.apply(rec(0, 1, "link", {"target": "/f", "path": "/g"}))
        touches = touches_of(state, rec(1, 1, "unlink", {"path": "/f"}))
        roles = {t.role for t in touches if t.key == (FILE, uid)}
        assert roles == {Role.USE}

    def test_final_unlink_is_delete(self):
        state = FsState(snapshot(("/f", "reg", 1)))
        uid = state.resolve("/f")[2].uid
        touches = touches_of(state, rec(0, 1, "unlink", {"path": "/f"}))
        assert (FILE, uid) in keys(touches, FILE, Role.DELETE)

    def test_access_via_symlink_shares_file_uid(self):
        state = FsState(snapshot(("/f", "reg", 1), ("/l", "symlink", 0, "/f")))
        uid = state.resolve("/f")[2].uid
        touches, _ = state.apply(rec(0, 1, "stat", {"path": "/l"}))
        assert (FILE, uid) in keys(touches, FILE)


class TestRobustness(object):
    def test_contradictory_record_counts_model_miss(self):
        state = FsState()
        # Trace claims this open of a nonexistent deep path succeeded.
        state.apply(rec(0, 1, "open", {"path": "/no/such/dir/f", "flags": "O_RDONLY"}, ret=3))
        assert state.model_misses == 1

    def test_unmodeled_call_touches_thread_only(self):
        state = FsState()
        touches, ann = state.apply(rec(0, 1, "getcwd", {}, ret="/"))
        assert keys(touches, "thread") == [("thread", 1)]
        assert len(touches) == 1

    def test_failed_ops_do_not_mutate(self):
        state = FsState(snapshot(("/d", "dir")))
        state.apply(rec(0, 1, "mkdir", {"path": "/d/x"}, ret=-1, err="EEXIST"))
        assert state.resolve("/d/x")[2] is None

    def test_chdir_changes_relative_base(self):
        state = FsState(snapshot(("/d", "dir"), ("/d/f", "reg", 1)))
        state.apply(rec(0, 1, "chdir", {"path": "/d"}))
        touches, _ = state.apply(rec(1, 1, "stat", {"path": "f"}))
        assert any(key[1] == "/d/f" for key in keys(touches, PATH))
