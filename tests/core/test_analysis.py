"""Tests for trace/graph analysis helpers."""

import pytest

from repro.core.analysis import (
    action_series,
    edge_stats,
    generations_by_name,
    series_roles,
    topological_order,
    validate_order,
)
from repro.core.deps import DependencyGraph, build_dependencies, temporal_graph
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.errors import CycleError
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def rec(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.5)


@pytest.fixture(scope="module")
def model():
    records = [
        rec(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
        rec(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
        rec(2, "T2", "stat", {"path": "/f"}),
        rec(3, "T1", "close", {"fd": 3}),
        rec(4, "T2", "unlink", {"path": "/f"}),
    ]
    return TraceModel(Trace(records), Snapshot())


class TestSeries(object):
    def test_action_series_orders_by_trace(self, model):
        series = action_series(model.actions)
        fd_key = ("fd", 3, 0)
        assert series[fd_key] == [0, 1, 3]

    def test_series_roles(self, model):
        roles = series_roles(model.actions)
        assert roles[("fd", 3, 0)] == (True, True)  # created by open, deleted by close

    def test_generations_by_name(self, model):
        gens = generations_by_name(model.actions)
        assert ("fd", 3) in gens


class TestValidateOrder(object):
    def test_trace_order_is_always_admissible(self, model):
        order = [a.idx for a in model.actions]
        assert validate_order(model.actions, RuleSet.artc_default(), order) == []

    def test_reversed_order_violates(self, model):
        order = [a.idx for a in reversed(model.actions)]
        violations = validate_order(model.actions, RuleSet.artc_default(), order)
        assert violations
        assert any("thread_seq" in v for v in violations)

    def test_program_seq_validation(self, model):
        ruleset = RuleSet(program_seq=True)
        good = [a.idx for a in model.actions]
        assert validate_order(model.actions, ruleset, good) == []
        swapped = [1, 0, 2, 3, 4]
        assert validate_order(model.actions, ruleset, swapped)


class TestGraphHelpers(object):
    def test_edge_stats(self, model):
        graph = build_dependencies(model.actions, RuleSet.artc_default())
        stats = edge_stats(graph, model.actions)
        assert stats["edges"] == graph.n_edges
        assert stats["mean_length"] >= 0

    def test_topological_order_detects_cycles(self, model):
        graph = DependencyGraph(len(model.actions))
        graph.add_edge(3, 2, "fake")  # with thread order 2<3 this is a cycle?
        # 2 is T2 and 3 is T1, so no thread edge joins them; build a real cycle:
        graph.add_edge(2, 3, "fake2")
        # Both directions between 2 and 3.
        with pytest.raises(CycleError) as excinfo:
            topological_order(graph, model.actions)
        assert sorted(excinfo.value.members) == [2, 3]
        assert "2" in str(excinfo.value) and "3" in str(excinfo.value)

    def test_temporal_graph_edge_count(self, model):
        graph = temporal_graph(model.actions)
        # Chain 0-1-2-3-4 minus same-thread links (0-1 both T1).
        assert graph.n_edges == 3
