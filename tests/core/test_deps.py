"""Tests for dependency-graph construction."""

import pytest

from repro.core.analysis import topological_order, validate_order
from repro.core.deps import build_dependencies, temporal_graph
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def _record(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.5)


def make_model(records, snapshot_entries=()):
    snapshot = Snapshot()
    for entry in snapshot_entries:
        snapshot.add(*entry)
    return TraceModel(Trace(records), snapshot)


def _reaches(actions, graph, src, dst):
    """Is ``src`` ordered before ``dst`` by graph edges + thread order?"""
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    preds = [list(p) for p in graph.preds]
    for acts in per_thread.values():
        for earlier, later in zip(acts, acts[1:]):
            preds[later].append(earlier)
    frontier = [dst]
    seen = set()
    while frontier:
        node = frontier.pop()
        if node == src:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(preds[node])
    return False


@pytest.fixture
def handoff_model():
    """T1 opens and writes; T2 reads via the same descriptor and closes."""
    records = [
        _record(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
        _record(1, "T1", "write", {"fd": 3, "nbytes": 100}, ret=100),
        _record(2, "T2", "read", {"fd": 3, "nbytes": 100}, ret=100),
        _record(3, "T2", "close", {"fd": 3}),
    ]
    return make_model(records)


class TestBasicEdges(object):
    def test_cross_thread_fd_dependency(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.artc_default())
        # T2's read must wait for T1's open (directly or transitively
        # through T1's thread order).
        assert _reaches(handoff_model.actions, graph, 0, 2)
        # T2's close must wait for T1's write.
        assert _reaches(handoff_model.actions, graph, 1, 3)

    def test_same_thread_edges_elided(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.artc_default())
        assert 0 not in graph.preds[1]  # same thread: implied
        assert 2 not in graph.preds[3]

    def test_unconstrained_has_no_edges(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.unconstrained())
        assert graph.n_edges == 0

    def test_edges_deduplicated(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.artc_default())
        for preds in graph.preds:
            assert len(preds) == len(set(preds))

    def test_edge_kinds_recorded(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.artc_default())
        kinds = set(graph.edge_kinds.values())
        assert kinds <= {"file_seq", "fd_seq", "fd_stage", "path_stage", "name"}
        assert kinds


class TestRuleSelection(object):
    def test_fd_stage_weaker_than_fd_seq(self):
        # Two reads on the same fd from different threads: fd_seq chains
        # them, fd_stage does not.
        records = [
            _record(0, "T1", "open", {"path": "/f", "flags": "O_RDWR|O_CREAT"}, ret=3),
            _record(1, "T1", "pread", {"fd": 3, "nbytes": 10, "offset": 0}, ret=10),
            _record(2, "T2", "pread", {"fd": 3, "nbytes": 10, "offset": 50}, ret=10),
        ]
        model = make_model(records)
        seq_rules = RuleSet(fd_seq=True, file_seq=False)
        stage_rules = RuleSet(fd_seq=False, fd_stage=True, file_seq=False)
        graph_seq = build_dependencies(model.actions, seq_rules)
        graph_stage = build_dependencies(model.actions, stage_rules)
        assert 1 in graph_seq.preds[2]  # chained
        assert 1 not in graph_stage.preds[2]  # only create -> use
        assert 0 in graph_stage.preds[2]

    def test_file_seq_orders_accesses_via_different_paths(self):
        # Symlink awareness: /link and /f are the same file, so file_seq
        # must chain accesses through both names (section 4.3.1).
        records = [
            _record(0, "T1", "open", {"path": "/f", "flags": "O_RDWR"}, ret=3),
            _record(1, "T1", "write", {"fd": 3, "nbytes": 10}, ret=10),
            _record(2, "T2", "open", {"path": "/link", "flags": "O_RDONLY"}, ret=4),
            _record(3, "T2", "read", {"fd": 4, "nbytes": 10}, ret=10),
        ]
        model = make_model(
            records,
            snapshot_entries=[
                ("/f", "reg", 100),
                ("/link", "symlink", 0, "/f"),
            ],
        )
        graph = build_dependencies(model.actions, RuleSet.artc_default())
        assert 1 in graph.preds[3] or 1 in graph.preds[2]

    def test_path_name_rule_orders_reuse(self):
        # Same path name used for two different files: generations must
        # not be reordered.
        records = [
            _record(0, "T1", "open", {"path": "/tmp/x", "flags": "O_WRONLY|O_CREAT"}, ret=3),
            _record(1, "T1", "close", {"fd": 3}),
            _record(2, "T1", "unlink", {"path": "/tmp/x"}),
            _record(3, "T2", "open", {"path": "/tmp/x", "flags": "O_WRONLY|O_CREAT"}, ret=3),
        ]
        model = make_model(records)
        graph = build_dependencies(model.actions, RuleSet.artc_default())
        assert 2 in graph.preds[3]

    def test_failed_stat_ordered_into_absence_generation(self):
        # A stat that failed in the trace must replay after the unlink
        # that emptied the name and before the recreation.
        records = [
            _record(0, "T1", "open", {"path": "/d/f", "flags": "O_WRONLY|O_CREAT"}, ret=3),
            _record(1, "T1", "close", {"fd": 3}),
            _record(2, "T1", "unlink", {"path": "/d/f"}),
            _record(3, "T2", "stat", {"path": "/d/f"}, ret=-1, err="ENOENT"),
            _record(4, "T1", "open", {"path": "/d/f", "flags": "O_WRONLY|O_CREAT"}, ret=3),
        ]
        model = make_model(records, snapshot_entries=[("/d", "dir")])
        graph = build_dependencies(model.actions, RuleSet.artc_default())
        assert 2 in graph.preds[3]  # stat waits for unlink
        assert 3 in graph.preds[4]  # recreation waits for the failed stat

    def test_program_seq_flag_propagates(self, handoff_model):
        graph = build_dependencies(
            handoff_model.actions, RuleSet(program_seq=True)
        )
        assert graph.program_seq


class TestGraphShape(object):
    def test_all_edges_point_forward(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.artc_default())
        for src, dst in graph.edges():
            assert src < dst

    def test_acyclic_and_admissible(self, handoff_model):
        actions = handoff_model.actions
        rules = RuleSet.artc_default()
        graph = build_dependencies(actions, rules)
        order = topological_order(graph, actions)
        assert validate_order(actions, rules, order) == []

    def test_succs_inverse_of_preds(self, handoff_model):
        graph = build_dependencies(handoff_model.actions, RuleSet.artc_default())
        succs = graph.succs()
        for dst, sources in enumerate(graph.preds):
            for src in sources:
                assert dst in succs[src]


class TestTemporalGraph(object):
    def test_chain_skips_same_thread(self):
        records = [
            _record(0, "T1", "stat", {"path": "/"}, ret=0),
            _record(1, "T1", "stat", {"path": "/"}, ret=0),
            _record(2, "T2", "stat", {"path": "/"}, ret=0),
            _record(3, "T1", "stat", {"path": "/"}, ret=0),
        ]
        model = make_model(records)
        graph = temporal_graph(model.actions)
        assert graph.preds[1] == []  # same thread
        assert graph.preds[2] == [1]
        assert graph.preds[3] == [2]

    def test_temporal_usually_has_more_edges_than_artc(self):
        # Alternating threads reading their own files: ARTC sees no
        # cross-thread resources, temporal chains every alternation.
        records = []
        for index in range(20):
            tid = "T%d" % (index % 2)
            records.append(
                _record(
                    index,
                    tid,
                    "pread",
                    {"fd": 3 + (index % 2), "nbytes": 10, "offset": index},
                    ret=10,
                )
            )
        model = make_model(records)
        artc = build_dependencies(model.actions, RuleSet.artc_default())
        temporal = temporal_graph(model.actions)
        assert temporal.n_edges > artc.n_edges
