"""The paper's Figure 2 example, end to end through the trace model.

A snippet from a simple system-call trace for two threads; the trace
model must derive the action series of Figure 2(b).  Generation
numbers here count both existence and absence periods (the paper's
``@1``/``@2`` count only existence periods), so tests compare series
structure rather than literal generation values.
"""

import pytest

from repro.core.model import TraceModel
from repro.core.analysis import action_series, generations_by_name
from repro.core.resources import FILE, PATH, Role
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


def _record(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.5)


@pytest.fixture(scope="module")
def model():
    snapshot = Snapshot(label="fig2")
    snapshot.add("/a", "dir")
    snapshot.add("/x", "dir")
    snapshot.add("/x/y", "dir")
    snapshot.add("/x/y/z", "reg", size=100)
    records = [
        _record(0, "T1", "mkdir", {"path": "/a/b", "mode": 0o755}),
        _record(1, "T1", "open", {"path": "/a/b/c", "flags": "O_RDWR|O_CREAT"}, ret=3),
        _record(2, "T1", "write", {"fd": 3, "nbytes": 100}, ret=100),
        _record(3, "T1", "close", {"fd": 3}),
        _record(4, "T1", "rename", {"old": "/a/b", "new": "/a/old"}),
        _record(5, "T2", "open", {"path": "/x/y/z", "flags": "O_RDONLY"}, ret=3),
        _record(6, "T2", "open", {"path": "/a/b", "flags": "O_RDWR|O_CREAT"}, ret=4),
    ]
    return TraceModel(Trace(records, label="fig2"), snapshot)


@pytest.fixture(scope="module")
def series(model):
    return action_series(model.actions)


def _file_series(model, series, path_at_time=None, uid=None):
    return {key: acts for key, acts in series.items() if key[0] == FILE}


def _uid_of(model, path):
    res = model.state.resolve(path, follow_last=True)
    assert res is not None and res[2] is not None
    return res[2].uid


class TestThreadSeries(object):
    def test_t1(self, series):
        assert series[("thread", "T1")] == [0, 1, 2, 3, 4]

    def test_t2(self, series):
        assert series[("thread", "T2")] == [5, 6]


class TestFileSeries(object):
    def test_dir_a_touched_by_mkdir_rename_open(self, model, series):
        uid_a = _uid_of(model, "/a")
        assert series[(FILE, uid_a)] == [0, 4, 6]

    def test_dir_b_created_used_renamed(self, model, series):
        uid_b = _uid_of(model, "/a/old")  # dirB lives at /a/old after rename
        assert series[(FILE, uid_b)] == [0, 1, 4]

    def test_file1_series_includes_rename(self, model, series):
        uid_file1 = _uid_of(model, "/a/old/c")
        # Paper table lists 2,3,4 (1-based: open/write/close); the
        # rename of the parent directory also touches the file (its
        # pathname changes), as action 5's resource list shows.
        assert series[(FILE, uid_file1)] == [1, 2, 3, 4]

    def test_dir_y_only_touched_by_open(self, model, series):
        uid_y = _uid_of(model, "/x/y")
        assert series[(FILE, uid_y)] == [5]

    def test_file2_series(self, model, series):
        uid_z = _uid_of(model, "/x/y/z")
        assert series[(FILE, uid_z)] == [5]

    def test_file3_created_by_second_open(self, model, series):
        uid_file3 = _uid_of(model, "/a/b")
        assert series[(FILE, uid_file3)] == [6]


class TestPathGenerations(object):
    def test_a_b_has_two_existence_generations(self, model):
        gens = generations_by_name(model.actions)[(PATH, "/a/b")]
        # absence@0 -> exists(1,5) -> absence -> exists(7): the paper's
        # path(/a/b)@1 = [1,5] and path(/a/b)@2 = [7] (1-based).
        flattened = [acts for acts in gens if acts]
        assert [0, 4] in flattened  # mkdir creates, rename deletes
        assert flattened[-1] == [6]  # recreated by T2's open

    def test_a_b_c_generation(self, model):
        gens = generations_by_name(model.actions)[(PATH, "/a/b/c")]
        flattened = [acts for acts in gens if acts]
        assert [1, 4] in flattened  # open creates, dir rename deletes

    def test_new_paths_created_by_rename(self, model):
        by_name = generations_by_name(model.actions)
        assert [4] in by_name[(PATH, "/a/old")]
        assert [4] in by_name[(PATH, "/a/old/c")]

    def test_x_y_z_single_use(self, model):
        gens = generations_by_name(model.actions)[(PATH, "/x/y/z")]
        assert [acts for acts in gens if acts] == [[5]]


class TestFdGenerations(object):
    def test_fd3_two_generations(self, model):
        gens = generations_by_name(model.actions)[("fd", 3)]
        assert gens == [[1, 2, 3], [5]]

    def test_fd4_one_generation(self, model):
        gens = generations_by_name(model.actions)[("fd", 4)]
        assert gens == [[6]]


class TestRolesAndAnnotations(object):
    def test_mkdir_creates_dir_file_resource(self, model):
        touches = model.actions[0].touches
        uid_b = _uid_of(model, "/a/old")
        assert any(
            t.key == (FILE, uid_b) and t.role == Role.CREATE for t in touches
        )

    def test_open_annotation_carries_fd_generation(self, model):
        assert model.actions[1].ann["ret_fd"] == 0
        assert model.actions[5].ann["ret_fd"] == 1  # fd 3 reused
        assert model.actions[6].ann["ret_fd"] == 0  # fd 4 first use

    def test_write_close_annotations(self, model):
        assert model.actions[2].ann["fd"] == 0
        assert model.actions[3].ann["fd"] == 0

    def test_no_model_misses_on_clean_trace(self, model):
        assert model.model_misses == 0

    def test_rename_touches_four_paths(self, model):
        touches = model.actions[4].touches
        path_names = {t.key[1] for t in touches if t.key[0] == PATH}
        assert path_names == {"/a/b", "/a/b/c", "/a/old", "/a/old/c"}
