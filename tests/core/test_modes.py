"""Tests for the Table 2 replay-mode matrix."""

import pytest

from repro.core.modes import ReplayMode, RuleSet
from repro.errors import ReproError


class TestRuleSet(object):
    def test_artc_default_matches_paper(self):
        rules = RuleSet.artc_default()
        # "all supported constraints except program_seq are enforced by
        # default" (section 4.2)
        assert not rules.program_seq
        assert rules.thread_seq
        assert rules.file_seq
        assert rules.path_stage and rules.path_name
        assert rules.fd_stage and rules.fd_seq
        assert rules.aio_stage

    def test_thread_seq_is_required(self):
        with pytest.raises(ReproError):
            RuleSet(thread_seq=False)

    def test_path_rules_must_be_joint(self):
        with pytest.raises(ReproError):
            RuleSet(path_stage=True, path_name=False)
        with pytest.raises(ReproError):
            RuleSet(path_stage=False, path_name=True)

    def test_unconstrained_keeps_only_thread_seq(self):
        rules = RuleSet.unconstrained()
        assert rules.thread_seq
        for flag in (
            "program_seq",
            "file_seq",
            "file_stage",
            "path_stage",
            "path_name",
            "fd_stage",
            "fd_seq",
            "aio_stage",
        ):
            assert not getattr(rules, flag)

    def test_program_seq_selectable(self):
        assert RuleSet(program_seq=True).program_seq

    def test_describe_lists_enabled_flags(self):
        text = RuleSet.artc_default().describe()
        assert "file_seq" in text
        assert "program_seq" not in text


class TestReplayMode(object):
    def test_all_four_modes(self):
        assert len(ReplayMode.ALL) == 4
        assert ReplayMode.ARTC in ReplayMode.ALL
        assert ReplayMode.SINGLE in ReplayMode.ALL
        assert ReplayMode.TEMPORAL in ReplayMode.ALL
        assert ReplayMode.UNCONSTRAINED in ReplayMode.ALL
