"""Tests for the transitive reduction pass (repro.core.reduce)."""

from repro.core.deps import DependencyGraph, build_dependencies
from repro.core.modes import RuleSet
from repro.core.reduce import closure_matrix, reduce_graph, thread_prev_of
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from repro.core.model import TraceModel


def _record(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.5)


def make_model(records, snapshot_entries=()):
    snapshot = Snapshot()
    for entry in snapshot_entries:
        snapshot.add(*entry)
    return TraceModel(Trace(records), snapshot)


def _graph(n, edges, tids):
    graph = DependencyGraph(n)
    for src, dst in edges:
        graph.add_edge(src, dst, "test")
    removed = reduce_graph(graph, tids)
    return graph, removed


class TestThreadPrev(object):
    def test_interleaved_threads(self):
        assert thread_prev_of(["A", "B", "A", "B", "A"]) == [
            None, None, 0, 1, 2,
        ]

    def test_empty(self):
        assert thread_prev_of([]) == []


class TestReduceGraph(object):
    def test_explicit_transitive_edge_removed(self):
        # 0 -> 1 -> 2 plus the implied 0 -> 2 (three threads, so thread
        # order contributes nothing).
        graph, removed = _graph(
            3, [(0, 1), (1, 2), (0, 2)], ["A", "B", "C"]
        )
        assert removed == 1
        assert graph.reduced_preds == [[], [0], [1]]
        assert graph.n_reduced_edges == 2

    def test_thread_chain_implies_edge(self):
        # 0 -> 1, and thread B plays 1 then 2 in order, so 0 -> 2 is
        # implied by the thread chain even with no explicit 1 -> 2 edge.
        graph, removed = _graph(3, [(0, 1), (0, 2)], ["A", "B", "B"])
        assert removed == 1
        assert graph.reduced_preds == [[], [0], []]

    def test_independent_edges_kept(self):
        graph, removed = _graph(
            4, [(0, 3), (1, 3), (2, 3)], ["A", "B", "C", "D"]
        )
        assert removed == 0
        assert sorted(graph.reduced_preds[3]) == [0, 1, 2]

    def test_earlier_same_thread_pred_redundant(self):
        # Both actions 0 and 1 are thread A; an edge from each to 2
        # needs only the later one (0 is implied through A's order).
        graph, removed = _graph(3, [(0, 2), (1, 2)], ["A", "A", "B"])
        assert removed == 1
        assert graph.reduced_preds[2] == [1]

    def test_full_edge_set_untouched(self):
        graph, _ = _graph(3, [(0, 1), (1, 2), (0, 2)], ["A", "B", "C"])
        assert graph.n_edges == 3
        assert set(graph.edge_kinds) == {(0, 1), (1, 2), (0, 2)}
        assert graph.preds == [[], [0], [1, 0]]

    def test_reduced_is_subset_preserving_order(self):
        graph, _ = _graph(
            5,
            [(0, 4), (1, 4), (2, 4), (3, 4), (0, 3), (1, 2)],
            ["A", "B", "C", "D", "E"],
        )
        for full, reduced in zip(graph.preds, graph.reduced_preds):
            kept = set(reduced)
            assert kept <= set(full)
            assert reduced == [src for src in full if src in kept]

    def test_closure_preserved(self):
        edges = [(0, 2), (0, 4), (1, 4), (2, 5), (3, 5), (1, 5), (0, 5)]
        tids = ["A", "B", "A", "C", "B", "C"]
        graph, _ = _graph(6, edges, tids)
        assert closure_matrix(6, graph.preds, tids) == closure_matrix(
            6, graph.reduced_preds, tids
        )


class TestBuilderWatermarks(object):
    def _delete_fanin_model(self):
        """Three T1 reads then a T2 unlink: the unlink's fan-in to the
        first two reads is implied by T1's thread order."""
        records = [
            _record(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            _record(1, "T1", "read", {"fd": 3, "nbytes": 10}, ret=10),
            _record(2, "T1", "read", {"fd": 3, "nbytes": 10}, ret=10),
            _record(3, "T1", "close", {"fd": 3}),
            _record(4, "T2", "unlink", {"path": "/f"}),
        ]
        return make_model(records, snapshot_entries=[("/f", "reg", 100)])

    def test_delete_fanin_collapses_to_last_use(self):
        model = self._delete_fanin_model()
        graph = build_dependencies(model.actions, RuleSet.artc_default())
        tids = [a.record.tid for a in model.actions]
        reduce_graph(graph, tids)
        # Full graph still records the whole fan-in (Figure-8 parity)...
        full_delete_preds = set(graph.preds[4])
        assert {0, 3} <= full_delete_preds
        # ...but the replayer waits only on T1's last action before the
        # unlink.
        assert graph.reduced_preds[4] == [max(graph.preds[4])]

    def test_primary_closure_covers_full_closure(self):
        model = self._delete_fanin_model()
        graph = build_dependencies(model.actions, RuleSet.artc_default())
        tids = [a.record.tid for a in model.actions]
        n = len(model.actions)
        assert graph.primary_preds is not None
        assert closure_matrix(n, graph.primary_preds, tids) == closure_matrix(
            n, graph.preds, tids
        )


class TestSuccsCache(object):
    def test_succs_cached_and_invalidated_by_add_edge(self):
        graph = DependencyGraph(3)
        graph.add_edge(0, 1, "test")
        first = graph.succs()
        assert first[0] == [1]
        # Cached: same object until the graph changes.
        assert graph.succs() is first
        assert graph.add_edge(1, 2, "test")
        second = graph.succs()
        assert second is not first
        assert second[1] == [2]

    def test_duplicate_edge_keeps_cache(self):
        graph = DependencyGraph(2)
        graph.add_edge(0, 1, "test")
        cached = graph.succs()
        assert not graph.add_edge(0, 1, "other")  # duplicate: no-op
        assert graph.succs() is cached
