"""Tests for the Table 1 ordering rules and their checkers."""

from repro.core.rules import Rule, check_name, check_sequential, check_stage, subsumes


def positions(order):
    return {action: position for position, action in enumerate(order)}


class TestSubsumption(object):
    def test_sequential_subsumes_stage(self):
        assert subsumes(Rule.SEQUENTIAL, Rule.STAGE)

    def test_stage_does_not_subsume_sequential(self):
        assert not subsumes(Rule.STAGE, Rule.SEQUENTIAL)

    def test_name_incomparable(self):
        assert not subsumes(Rule.NAME, Rule.SEQUENTIAL)
        assert not subsumes(Rule.SEQUENTIAL, Rule.NAME)

    def test_self_subsumption(self):
        for rule in Rule.ALL:
            assert subsumes(rule, rule)


class TestSequential(object):
    def test_original_order_valid(self):
        assert check_sequential([1, 2, 3], positions([1, 2, 3])) == []

    def test_any_swap_invalid(self):
        assert check_sequential([1, 2, 3], positions([2, 1, 3])) == [(1, 2)]

    def test_unrelated_actions_interleave_freely(self):
        assert check_sequential([1, 3], positions([1, 2, 3])) == []
        assert check_sequential([1, 3], positions([2, 1, 3])) == []

    def test_empty_and_singleton(self):
        assert check_sequential([], {}) == []
        assert check_sequential([5], positions([5])) == []


class TestStage(object):
    def test_uses_may_reorder(self):
        # create=1, uses=2,3, delete=4: swapping 2 and 3 is fine.
        assert (
            check_stage([1, 2, 3, 4], positions([1, 3, 2, 4]), True, True) == []
        )

    def test_use_before_create_invalid(self):
        violations = check_stage([1, 2, 3], positions([2, 1, 3]), True, False)
        assert violations == [(1, 2)]

    def test_delete_before_use_invalid(self):
        violations = check_stage([1, 2, 3], positions([1, 3, 2]), False, True)
        assert violations == [(2, 3)]  # use 2 must precede delete 3

    def test_no_create_no_head_constraint(self):
        # First action is not a create: uses may replay before it.
        assert check_stage([1, 2, 3], positions([2, 1, 3]), False, False) == []

    def test_no_delete_no_tail_constraint(self):
        assert check_stage([1, 2, 3], positions([1, 3, 2]), True, False) == []


class TestName(object):
    def test_generations_in_order_valid(self):
        gens = [[1, 2], [3, 4]]
        assert check_name(gens, positions([1, 2, 3, 4])) == []

    def test_overlap_invalid(self):
        gens = [[1, 2], [3, 4]]
        assert check_name(gens, positions([1, 3, 2, 4])) != []

    def test_full_reorder_invalid(self):
        gens = [[1, 2], [3, 4]]
        assert check_name(gens, positions([3, 4, 1, 2])) != []

    def test_within_generation_reorder_allowed(self):
        gens = [[1, 2], [3, 4]]
        assert check_name(gens, positions([2, 1, 4, 3])) == []

    def test_transition_action_in_both_generations_exempt(self):
        # Action 2 deletes generation 0 and creates generation 1.
        gens = [[1, 2], [2, 3]]
        assert check_name(gens, positions([1, 2, 3])) == []


class TestFigure3(object):
    """The paper's Figure 3: two consecutive generations A (white) and
    B (grey) of one name.  A = [A1..A4] starting with create, ending
    with delete; same for B.  The replay shown reorders A's two middle
    actions, replays B's delete before its last use, and starts B
    before A finishes."""

    A = ["A1", "A2", "A3", "A4"]  # A1=create, A4=delete
    B = ["B1", "B2", "B3", "B4"]  # B1=create, B4=delete

    # Figure 3(b): A1 A3 A2 A4 overlapped with B1 B2 B4 B3
    REPLAY = ["A1", "A3", "A2", "B1", "A4", "B2", "B4", "B3"]

    def test_generation_a_satisfies_stage(self):
        pos = positions(self.REPLAY)
        assert check_stage(self.A, pos, True, True) == []

    def test_generation_a_violates_sequential(self):
        pos = positions(self.REPLAY)
        assert check_sequential(self.A, pos) == [("A2", "A3")]

    def test_generation_b_violates_stage(self):
        pos = positions(self.REPLAY)
        violations = check_stage(self.B, pos, True, True)
        assert ("B3", "B4") in violations

    def test_generation_b_violates_sequential_too(self):
        # Stage violations imply sequential violations (subsumption).
        pos = positions(self.REPLAY)
        assert check_sequential(self.B, pos) != []

    def test_name_ordering_violated_by_overlap(self):
        pos = positions(self.REPLAY)
        assert check_name([self.A, self.B], pos) != []

    def test_clean_replay_satisfies_everything(self):
        order = self.A + self.B
        pos = positions(order)
        assert check_stage(self.A, pos, True, True) == []
        assert check_sequential(self.A, pos) == []
        assert check_name([self.A, self.B], pos) == []
