"""Tests for the file-size dependency refinement (paper section 8).

"Analysis of dependencies on file size rather than mere existence would
allow a replay mode for file resources somewhere between stage and
sequential ordering in strength."  ``RuleSet.with_file_size()`` is that
mode: reads of bytes beyond a file's initial size wait for the write
that produced them, while reads of pre-existing data stay unordered.
"""

import pytest

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.core.deps import build_dependencies
from repro.core.model import TraceModel
from repro.core.modes import ReplayMode, RuleSet
from repro.errors import ReproError
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord
from tests.conftest import make_fs


def rec(idx, tid, name, args, ret=0, err=None):
    t = float(idx)
    return TraceRecord(idx, tid, name, args, ret, err, t, t + 0.5)


def model_of(records, entries=()):
    snap = Snapshot()
    for entry in entries:
        snap.add(*entry)
    return TraceModel(Trace(records), snap), snap


class TestRuleSetPlumbing(object):
    def test_with_file_size_implies_stage(self):
        rules = RuleSet.with_file_size()
        assert rules.file_size
        assert rules.file_stage
        assert not rules.file_seq

    def test_file_size_and_file_seq_conflict(self):
        with pytest.raises(ReproError):
            RuleSet(file_seq=True, file_size=True)

    def test_describe_mentions_mode(self):
        assert "file_size" in RuleSet.with_file_size().describe()


class TestSizeAnnotations(object):
    def test_read_beyond_initial_size_depends_on_extender(self):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_APPEND"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 4096}, ret=4096),
            rec(2, "T2", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=4),
            rec(3, "T2", "pread", {"fd": 4, "nbytes": 4096, "offset": 1000}, ret=4096),
        ]
        model, _snap = model_of(records, [("/f", "reg", 1000)])
        # The pread covers bytes [1000, 5096): exposed by action 1.
        assert model.actions[3].ann["size_dep"] == 1

    def test_read_within_initial_size_has_no_dep(self):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            rec(1, "T1", "pread", {"fd": 3, "nbytes": 100, "offset": 0}, ret=100),
        ]
        model, _snap = model_of(records, [("/f", "reg", 4096)])
        assert "size_dep" not in model.actions[1].ann

    def test_sequential_reads_track_fd_offset(self):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_CREAT"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 4096}, ret=4096),
            rec(2, "T2", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=4),
            rec(3, "T2", "read", {"fd": 4, "nbytes": 2048}, ret=2048),
            rec(4, "T2", "read", {"fd": 4, "nbytes": 2048}, ret=2048),
        ]
        model, _snap = model_of(records)
        # Both reads consume bytes written by action 1.
        assert model.actions[3].ann["size_dep"] == 1
        assert model.actions[4].ann["size_dep"] == 1

    def test_size_changers_chain(self):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_CREAT"}, ret=3),
            rec(1, "T1", "pwrite", {"fd": 3, "nbytes": 100, "offset": 0}, ret=100),
            rec(2, "T2", "open", {"path": "/f", "flags": "O_WRONLY"}, ret=4),
            rec(3, "T2", "pwrite", {"fd": 4, "nbytes": 100, "offset": 200}, ret=100),
        ]
        model, _snap = model_of(records)
        assert model.actions[3].ann["size_chain"] == 1

    def test_truncate_records_size_event(self):
        records = [
            rec(0, "T1", "truncate", {"path": "/f", "length": 0}, ret=0),
            rec(1, "T2", "open", {"path": "/f", "flags": "O_WRONLY"}, ret=3),
            rec(2, "T2", "pwrite", {"fd": 3, "nbytes": 500, "offset": 0}, ret=500),
            rec(3, "T1", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=4),
            rec(4, "T1", "pread", {"fd": 4, "nbytes": 500, "offset": 0}, ret=500),
        ]
        model, _snap = model_of(records, [("/f", "reg", 1000)])
        # After truncate-to-0, the pread's bytes come from action 2.
        assert model.actions[4].ann["size_dep"] == 2
        assert model.actions[2].ann["size_chain"] == 0

    def test_o_trunc_open_is_a_size_event(self):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_TRUNC"}, ret=3),
            rec(1, "T2", "open", {"path": "/f", "flags": "O_WRONLY"}, ret=4),
            rec(2, "T2", "pwrite", {"fd": 4, "nbytes": 64, "offset": 0}, ret=64),
        ]
        model, _snap = model_of(records, [("/f", "reg", 1 << 20)])
        assert model.actions[2].ann["size_chain"] == 0


class TestGraphStrength(object):
    def _reads_model(self):
        """One writer extends; two readers read old data; one reader
        reads the new data."""
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_APPEND"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 4096}, ret=4096),
            rec(2, "T2", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=4),
            rec(3, "T2", "pread", {"fd": 4, "nbytes": 100, "offset": 0}, ret=100),
            rec(4, "T3", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=5),
            rec(5, "T3", "pread", {"fd": 5, "nbytes": 100, "offset": 0}, ret=100),
            rec(6, "T3", "pread", {"fd": 5, "nbytes": 100, "offset": 8192}, ret=100),
        ]
        return model_of(records, [("/f", "reg", 8192)])[0]

    def test_old_data_reads_unordered_new_data_read_ordered(self):
        model = self._reads_model()
        rules = RuleSet.with_file_size()
        graph = build_dependencies(model.actions, rules)
        # Reads of pre-existing bytes (3, 5) carry no size edges...
        assert not any(
            kind == "file_size" and dst in (3, 5)
            for (src, dst), kind in graph.edge_kinds.items()
        )
        # ...but the read past the old EOF waits for the append.
        assert (1, 6) in graph.edge_kinds
        assert graph.edge_kinds[(1, 6)] == "file_size"

    def test_strength_sits_between_stage_and_sequential(self):
        model = self._reads_model()
        stage = build_dependencies(
            model.actions, RuleSet(file_seq=False, file_stage=True)
        )
        size = build_dependencies(model.actions, RuleSet.with_file_size())
        seq = build_dependencies(model.actions, RuleSet())
        assert stage.n_edges <= size.n_edges <= seq.n_edges
        assert size.n_edges > stage.n_edges  # the size edge exists
        # file_seq chains the concurrent old-data reads; file_size doesn't.
        assert seq.n_edges > size.n_edges


class TestReplayFidelity(object):
    def _bench(self, ruleset):
        records = [
            rec(0, "T1", "open", {"path": "/f", "flags": "O_WRONLY|O_APPEND"}, ret=3),
            rec(1, "T1", "write", {"fd": 3, "nbytes": 65536}, ret=65536),
            rec(2, "T1", "close", {"fd": 3}),
            rec(3, "T2", "open", {"path": "/f", "flags": "O_RDONLY"}, ret=3),
            rec(4, "T2", "pread", {"fd": 3, "nbytes": 65536, "offset": 4096}, ret=65536),
            rec(5, "T2", "close", {"fd": 3}),
        ]
        snap = Snapshot()
        snap.add("/f", "reg", 4096)
        trace = Trace(records)
        return compile_trace(trace, snap, ruleset=ruleset), snap

    def test_file_size_mode_reproduces_read_volume(self):
        bench, snap = self._bench(RuleSet.with_file_size())
        fs = make_fs(seed=3)
        initialize(fs, snap)
        report = replay(bench, fs, ReplayConfig(mode=ReplayMode.ARTC))
        assert report.failures == 0

    def test_stage_only_mode_can_short_read(self):
        # Without size deps, T2's pread may replay before T1's append
        # and come up short -- detected as a return-value mismatch.
        bench, snap = self._bench(RuleSet(file_seq=False, file_stage=True))
        worst = 0
        for seed in range(6):
            fs = make_fs(seed=seed)
            initialize(fs, snap)
            report = replay(
                bench, fs, ReplayConfig(mode=ReplayMode.ARTC, jitter=1e-4)
            )
            worst = max(worst, report.failures)
        assert worst >= 1
