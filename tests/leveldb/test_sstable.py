"""Unit tests for SSTable building and reading."""

import pytest

from repro.leveldb.sstable import FOOTER_SIZE, build_table, read_key
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


def build(fs, items, path="/t.ldb", sync=True):
    osapi = TracedOS(fs)

    def body():
        return (yield from build_table(osapi, 1, path, items, sync=sync))

    return fs.engine.run_process(body()), osapi


def items_of(n, value_size=500):
    return [("k%05d" % i, value_size) for i in range(n)]


class TestBuilder(object):
    def test_empty_rejected(self):
        fs = make_fs()
        with pytest.raises(Exception):
            build(fs, [])

    def test_file_size_matches_layout(self):
        fs = make_fs()
        table, _os = build(fs, items_of(40))
        assert fs.lookup("/t.ldb").size == table.file_size
        assert table.file_size == table.index_offset + table.index_length + FOOTER_SIZE

    def test_blocks_cover_all_keys_in_order(self):
        fs = make_fs()
        table, _os = build(fs, items_of(40))
        assert table.smallest == "k00000"
        assert table.largest == "k00039"
        assert len(table.blocks) >= 4  # ~500B values, 4KB blocks
        firsts = [b.first_key for b in table.blocks]
        assert firsts == sorted(firsts)

    def test_block_offsets_contiguous(self):
        fs = make_fs()
        table, _os = build(fs, items_of(40))
        cursor = 0
        for block in table.blocks:
            assert block.offset == cursor
            cursor += block.length
        assert cursor == table.index_offset

    def test_sync_flag_controls_fsync(self):
        fs = make_fs()
        build(fs, items_of(10), path="/a.ldb", sync=False)
        no_sync = fs.stack.stats.fsyncs
        build(fs, items_of(10), path="/b.ldb", sync=True)
        assert fs.stack.stats.fsyncs == no_sync + 1


class TestReader(object):
    def test_block_for_finds_covering_block(self):
        fs = make_fs()
        table, _os = build(fs, items_of(40))
        block = table.block_for("k00020")
        assert block.first_key <= "k00020"

    def test_may_contain_range_check(self):
        fs = make_fs()
        table, _os = build(fs, items_of(10))
        assert table.may_contain("k00005")
        assert not table.may_contain("zzz")
        assert not table.may_contain("a")

    def test_read_key_hits(self):
        fs = make_fs()
        table, osapi = build(fs, items_of(40))

        def body():
            return (yield from read_key(osapi, 1, table, "k00007"))

        assert fs.engine.run_process(body()) is not None

    def test_read_key_miss_within_range(self):
        fs = make_fs()
        table, osapi = build(fs, items_of(40))

        def body():
            return (yield from read_key(osapi, 1, table, "k00007x"))

        assert fs.engine.run_process(body()) is None

    def test_index_read_once_per_table(self):
        fs = make_fs()
        table, osapi = build(fs, items_of(40))
        trace = osapi.start_tracing()

        def body():
            yield from read_key(osapi, 1, table, "k00001")
            yield from read_key(osapi, 1, table, "k00030")

        fs.engine.run_process(body())
        index_reads = [
            r for r in trace.records
            if r.name == "pread" and r.args["offset"] == table.index_offset
        ]
        assert len(index_reads) == 1  # table-cache keeps the parsed index

    def test_shared_descriptor_reused(self):
        fs = make_fs()
        table, osapi = build(fs, items_of(40))
        trace = osapi.start_tracing()

        def body():
            yield from read_key(osapi, 1, table, "k00001")
            yield from read_key(osapi, 2, table, "k00030")

        fs.engine.run_process(body())
        opens = [r for r in trace.records if r.name == "open"]
        assert len(opens) == 1
