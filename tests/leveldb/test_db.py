"""Tests for the mini LSM key-value store."""

from repro.leveldb import DBOptions, MiniLevelDB
from repro.leveldb.memtable import MemTable
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs


def open_db(fs, path="/db", **options):
    osapi = TracedOS(fs)
    database = MiniLevelDB(osapi, path, DBOptions(**options))
    fs.engine.run_process(database.open(0))
    return database


def drive(fs, gen):
    return fs.engine.run_process(gen)


class TestMemTable(object):
    def test_put_get(self):
        table = MemTable()
        table.put("k1", 100)
        assert table.get("k1") == 100
        assert table.get("k2") is None

    def test_overwrite_updates_bytes(self):
        table = MemTable()
        table.put("k", 100)
        first = table.bytes
        table.put("k", 50)
        assert table.bytes < first

    def test_sorted_items(self):
        table = MemTable()
        table.put("b", 1)
        table.put("a", 2)
        assert [k for k, _v in table.sorted_items()] == ["a", "b"]


class TestBasicOperation(object):
    def test_put_then_get_from_memtable(self):
        fs = make_fs()
        db = open_db(fs)
        drive(fs, db.put(1, "key1", 100))
        assert drive(fs, db.get(1, "key1")) == 100

    def test_get_missing_returns_none(self):
        fs = make_fs()
        db = open_db(fs)
        assert drive(fs, db.get(1, "ghost")) is None

    def test_flush_creates_table_and_resets_wal(self):
        fs = make_fs()
        db = open_db(fs, memtable_bytes=512)
        for index in range(16):
            drive(fs, db.put(1, "k%04d" % index, 100))
        assert db.stats["flushes"] >= 1
        assert db.table_count >= 1
        assert len(db.memtable) < 16
        assert fs.exists("/db/000002.ldb")

    def test_get_reads_from_tables_after_flush(self):
        fs = make_fs()
        db = open_db(fs, memtable_bytes=512)
        for index in range(16):
            drive(fs, db.put(1, "k%04d" % index, 100))
        for index in range(16):
            assert drive(fs, db.get(1, "k%04d" % index)) is not None

    def test_close_flushes_remaining(self):
        fs = make_fs()
        db = open_db(fs)
        drive(fs, db.put(1, "k", 100))
        drive(fs, db.close(1))
        assert db.stats["flushes"] == 1
        assert len(db.memtable) == 0

    def test_db_files_on_disk(self):
        fs = make_fs()
        db = open_db(fs)
        drive(fs, db.put(1, "k", 100))
        assert fs.exists("/db/MANIFEST-000001")
        assert fs.exists("/db/000001.log")


class TestGroupCommit(object):
    def test_concurrent_writers_batch(self):
        fs = make_fs()
        db = open_db(fs, sync=True)

        def writer(tid):
            for index in range(10):
                yield from db.put(tid, "t%d-%04d" % (tid, index), 100)

        processes = [fs.engine.spawn(writer(tid)) for tid in range(1, 9)]
        fs.engine.run()
        assert all(not p.alive for p in processes)
        assert db.stats["commits"] == 80
        # The leader batches: far fewer WAL appends than commits.
        assert db.stats["batches"] < db.stats["commits"] / 1.5

    def test_sequential_writer_gets_no_batching(self):
        fs = make_fs()
        db = open_db(fs, sync=True)
        for index in range(10):
            drive(fs, db.put(1, "k%d" % index, 100))
        assert db.stats["batches"] == 10

    def test_sync_mode_fsyncs_wal(self):
        fs = make_fs()
        db = open_db(fs, sync=True)
        before = fs.stack.stats.fsyncs
        drive(fs, db.put(1, "k", 100))
        assert fs.stack.stats.fsyncs > before

    def test_async_mode_does_not_fsync(self):
        fs = make_fs()
        db = open_db(fs, sync=False)
        before = fs.stack.stats.fsyncs
        drive(fs, db.put(1, "k", 100))
        assert fs.stack.stats.fsyncs == before


class TestCompaction(object):
    def test_l0_merges_into_l1(self):
        fs = make_fs()
        db = open_db(fs, memtable_bytes=512, l0_compaction_trigger=4,
                     compaction_width=4)
        for index in range(200):
            drive(fs, db.put(1, "k%05d" % index, 100))
        assert db.stats["compactions"] >= 1
        assert len(db.level1) >= 1
        assert len(db.level0) <= 8

    def test_compaction_preserves_reads(self):
        fs = make_fs()
        db = open_db(fs, memtable_bytes=512, l0_compaction_trigger=4)
        for index in range(200):
            drive(fs, db.put(1, "k%05d" % index, 100))
        for index in (0, 50, 100, 199):
            assert drive(fs, db.get(1, "k%05d" % index)) is not None

    def test_compaction_unlinks_victims(self):
        fs = make_fs()
        db = open_db(fs, memtable_bytes=512, l0_compaction_trigger=4)
        for index in range(200):
            drive(fs, db.put(1, "k%05d" % index, 100))
        on_disk = fs.lookup("/db").children
        tables = [n for n in on_disk if n.endswith(".ldb")]
        assert len(tables) == db.table_count


class TestBenchDrivers(object):
    def test_populate_builds_many_nonoverlapping_tables(self):
        from repro.leveldb import populate

        fs = make_fs()
        osapi = TracedOS(fs)

        def body():
            return (yield from populate(osapi, 0, "/db", nkeys=2000, value_size=100))

        db = drive(fs, body())
        assert db.table_count > 10
        ranges = sorted(
            (t.smallest, t.largest) for t in db.level0 + db.level1
        )
        for (s1, l1), (s2, _l2) in zip(ranges, ranges[1:]):
            assert l1 <= s2  # fillseq keys: non-overlapping tables

    def test_fillsync_and_readrandom_run(self):
        from repro.leveldb import fillsync, populate, readrandom

        fs = make_fs()
        osapi = TracedOS(fs)

        def body():
            db = yield from populate(osapi, 0, "/db", nkeys=500, value_size=100)
            elapsed_reads = yield from readrandom(
                osapi, db, nthreads=4, ops_per_thread=20, nkeys=500
            )
            db2 = MiniLevelDB(osapi, "/db2", DBOptions(sync=True))
            yield from db2.open(0)
            elapsed_fill = yield from fillsync(osapi, db2, nthreads=4, ops_per_thread=5)
            return elapsed_reads, elapsed_fill

        reads, fill = drive(fs, body())
        assert reads > 0
        assert fill > 0
