"""Live --follow replay: byte-identical to batch, under backpressure,
staggered delivery, and producer stalls."""

import threading
import time

import pytest

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, ReplayError, replay, _ReplayRun
from repro.bench.platforms import PLATFORMS
from repro.core.modes import ReplayMode
from repro.errors import ReplayAborted
from repro.obs import Observability
from repro.stream.follow import StreamStatus, follow_replay
from repro.verify.abstract import fs_digest

PLATFORM = PLATFORMS["hdd-ext4"]


def fingerprint(report, fs):
    return (
        [
            (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err, r.matched)
            for r in report.results
        ],
        report.elapsed,
        fs.engine.now,
        fs_digest(fs),
    )


def batch_fingerprint(traced, config, obs=None):
    bench = compile_trace(traced.trace, traced.snapshot)
    fs = PLATFORM.make_fs(seed=0, obs=obs)
    initialize(fs, traced.snapshot)
    report = replay(bench, fs, config)
    return fingerprint(report, fs)


def follow_fingerprint(traced, trace_file, config, obs=None, **kwargs):
    fs = PLATFORM.make_fs(seed=0, obs=obs)
    initialize(fs, traced.snapshot)
    report, status = follow_replay(
        trace_file, fs, config, snapshot=traced.snapshot, **kwargs
    )
    return fingerprint(report, fs), status


@pytest.mark.parametrize("mode", [
    ReplayMode.ARTC, ReplayMode.SINGLE, ReplayMode.UNCONSTRAINED,
])
@pytest.mark.parametrize("window", [64, 4096])
def test_follow_identical_to_batch(traced, trace_file, mode, window):
    batch = batch_fingerprint(traced, ReplayConfig(mode=mode))
    live, status = follow_fingerprint(
        traced, trace_file, ReplayConfig(mode=mode), window=window
    )
    assert status.mode == "live"
    assert live == batch


def test_follow_with_observability_identical(traced, trace_file):
    # Attached obs forces the dynamic (non-fast) scoreboard bodies.
    batch = batch_fingerprint(
        traced, ReplayConfig(mode=ReplayMode.ARTC), obs=Observability()
    )
    live, status = follow_fingerprint(
        traced, trace_file, ReplayConfig(mode=ReplayMode.ARTC),
        obs=Observability(),
    )
    assert status.mode == "live"
    assert live == batch


def test_follow_natural_timing_identical(traced, trace_file):
    config = ReplayConfig(mode=ReplayMode.ARTC, timing="natural")
    batch = batch_fingerprint(traced, config)
    live, status = follow_fingerprint(
        traced, trace_file, ReplayConfig(mode=ReplayMode.ARTC, timing="natural")
    )
    assert status.mode == "live"
    assert live == batch


@pytest.mark.parametrize("config_kwargs", [
    {"mode": ReplayMode.TEMPORAL},
    {"core": "events"},
    {"core": "jit"},
])
def test_deferred_paths_identical(traced, trace_file, config_kwargs):
    batch = batch_fingerprint(traced, ReplayConfig(**config_kwargs))
    live, status = follow_fingerprint(
        traced, trace_file, ReplayConfig(**config_kwargs)
    )
    assert status.mode == "deferred"
    assert live == batch


def test_backpressure_and_retirement(traced, trace_file):
    _, status = follow_fingerprint(
        traced, trace_file, ReplayConfig(mode=ReplayMode.SINGLE), window=32
    )
    assert status.window_high_water <= 32
    assert status.backpressure_pauses > 0
    assert status.retired > 0
    assert status.live_vectors < len(traced.trace) // 2
    assert status.eof


def test_staggered_delivery_identical(traced, trace_bytes, tmp_path):
    """A slow producer writing arbitrary (mid-line) chunks while the
    replay follows: identical output, nonzero resyncs."""
    path = str(tmp_path / "grow.json")
    with open(path, "wb") as handle:
        handle.write(trace_bytes[:40])

    def producer():
        pos = 40
        step = max(1, len(trace_bytes) // 23)
        while pos < len(trace_bytes):
            nxt = min(len(trace_bytes), pos + step + (pos % 13))
            with open(path, "ab") as handle:
                handle.write(trace_bytes[pos:nxt])
            pos = nxt
            time.sleep(0.003)
        with open(path + ".done", "w"):
            pass

    writer = threading.Thread(target=producer)
    writer.start()
    try:
        live, status = follow_fingerprint(
            traced, path, ReplayConfig(mode=ReplayMode.ARTC),
            window=128, poll=0.002,
        )
    finally:
        writer.join()
    batch = batch_fingerprint(traced, ReplayConfig(mode=ReplayMode.ARTC))
    assert status.mode == "live"
    assert live == batch
    assert status.resyncs > 0
    assert status.producer_waits > 0


def test_idle_timeout_reports_awaiting_producer(traced, trace_bytes, tmp_path):
    path = str(tmp_path / "stalled.json")
    cut = trace_bytes.index(b"\n", len(trace_bytes) // 2) + 1
    with open(path, "wb") as handle:
        handle.write(trace_bytes[:cut])  # no .done marker: producer hangs
    fs = PLATFORM.make_fs(seed=0)
    initialize(fs, traced.snapshot)
    with pytest.raises(ReplayAborted, match="awaiting producer"):
        follow_replay(
            path, fs, ReplayConfig(mode=ReplayMode.ARTC),
            snapshot=traced.snapshot, poll=0.01, idle_timeout=0.1,
        )


def test_roster_order_violation_raises(traced, tmp_path):
    trace = traced.trace
    shuffled = list(trace.threads)
    shuffled.reverse()
    original = trace.thread_roster
    trace.thread_roster = shuffled
    path = str(tmp_path / "bad.json")
    try:
        trace.save(path)
    finally:
        trace.thread_roster = original
    with open(path + ".done", "w"):
        pass
    fs = PLATFORM.make_fs(seed=0)
    initialize(fs, traced.snapshot)
    with pytest.raises(ReplayError, match="roster order"):
        follow_replay(
            path, fs, ReplayConfig(mode=ReplayMode.ARTC),
            snapshot=traced.snapshot,
        )


def test_watchdog_reports_awaiting_producer(traced):
    """The hardened watchdog, handed a live stream status, diagnoses a
    stall as producer starvation instead of a dependency cycle."""
    bench = compile_trace(traced.trace, traced.snapshot)
    fs = PLATFORM.make_fs(seed=0)
    run = _ReplayRun(bench, fs, ReplayConfig())
    status = StreamStatus()
    status.records = 10
    status.fed = 10
    run.stream = status  # producer not drained: status.eof is False
    fs.engine.spawn(run._watchdog(0.5), name="watchdog")
    with pytest.raises(ReplayAborted, match="awaiting producer"):
        fs.engine.run()


def test_watchdog_finishes_when_stream_drained(traced):
    bench = compile_trace(traced.trace, traced.snapshot)
    fs = PLATFORM.make_fs(seed=0)
    run = _ReplayRun(bench, fs, ReplayConfig())
    status = StreamStatus()
    status.eof = True
    status.fed = 0  # everything fed was replayed (nothing at all)
    run.stream = status
    fs.engine.spawn(run._watchdog(0.5), name="watchdog")
    fs.engine.run()  # returns without raising
