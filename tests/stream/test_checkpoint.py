"""Crash-resumable ingestion: the trace is the write-ahead log."""

import json
import os

import pytest

from repro.artc.compiler import compile_trace
from repro.errors import TraceError
from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.digest import stream_digest_of
from repro.stream.follow import ingest_trace


def test_save_load_roundtrip(tmp_path):
    path = str(tmp_path / "ck.json")
    saved = save_checkpoint(path, {"position": {"segment": 0, "offset": 10}})
    assert saved["format"] == CHECKPOINT_FORMAT
    assert load_checkpoint(path)["position"]["offset"] == 10
    assert not os.path.exists(path + ".tmp")
    assert load_checkpoint(str(tmp_path / "missing.json")) is None


def test_corrupt_checkpoint_raises(tmp_path):
    path = str(tmp_path / "ck.json")
    with open(path, "w") as handle:
        handle.write("{ torn")
    with pytest.raises(TraceError):
        load_checkpoint(path)
    with open(path, "w") as handle:
        json.dump({"format": "other"}, handle)
    with pytest.raises(TraceError):
        load_checkpoint(path)


def test_ingest_writes_checkpoints(trace_file, traced, tmp_path):
    ck = str(tmp_path / "ck.json")
    result = ingest_trace(
        trace_file, snapshot=traced.snapshot,
        checkpoint_path=ck, checkpoint_every=50,
    )
    assert result.status.checkpoints_written >= len(traced.trace) // 50
    final = load_checkpoint(ck)
    assert final["actions"] == len(traced.trace)
    assert final["actions_sha256"] == result.digest


def test_kill_at_every_checkpoint_resumes_identically(
    traced, trace_bytes, tmp_path
):
    """Abandon ingestion after each partial delivery (including
    mid-line cuts) and resume from the checkpoint: the final digest
    must always equal the batch compiler's."""
    batch_digest = stream_digest_of(
        compile_trace(traced.trace, traced.snapshot)
    )
    path = str(tmp_path / "t.json")
    ck = str(tmp_path / "ck.json")
    n = len(trace_bytes)
    cuts = sorted({n // 7, n // 3, n // 2, n // 2 + 1, 2 * n // 3, n - 2, n})
    for cut in cuts:
        with open(path, "wb") as handle:
            handle.write(trace_bytes[:cut])
        # One stateless step: consume what is durable, checkpoint, die.
        step = ingest_trace(
            path, snapshot=traced.snapshot,
            checkpoint_path=ck, checkpoint_every=25,
            resume=True, wait=False,
        )
        assert not step.finished or cut == n
    with open(path + ".done", "w"):
        pass
    final = ingest_trace(
        path, snapshot=traced.snapshot,
        checkpoint_path=ck, resume=True,
    )
    assert final.finished
    assert final.status.resume_verified
    assert final.digest == batch_digest


def test_resume_refuses_rewritten_prefix(trace_file, traced, tmp_path):
    ck = str(tmp_path / "ck.json")
    ingest_trace(trace_file, snapshot=traced.snapshot, checkpoint_path=ck)
    # Flip one byte inside the consumed prefix.
    with open(trace_file, "r+b") as handle:
        handle.seek(100)
        byte = handle.read(1)
        handle.seek(100)
        handle.write(b"X" if byte != b"X" else b"Y")
    with pytest.raises(TraceError, match="rewritten"):
        ingest_trace(
            trace_file, snapshot=traced.snapshot,
            checkpoint_path=ck, resume=True,
        )


def test_resume_without_checkpoint_starts_fresh(trace_file, traced, tmp_path):
    result = ingest_trace(
        trace_file, snapshot=traced.snapshot,
        checkpoint_path=str(tmp_path / "absent.json"), resume=True,
    )
    assert result.finished
    assert not result.status.resume_verified
