"""TraceTailer: torn-tolerant incremental parsing of a growing trace."""

import os

import pytest

from repro.errors import TraceError
from repro.stream.tail import CHUNK, TraceTailer, hash_prefix


def write(path, data, mode="wb"):
    with open(path, mode) as handle:
        handle.write(data)


def drain(tailer):
    out = []
    while True:
        got = tailer.poll()
        if not got:
            break
        out.extend(got)
    return out


def test_finished_file_reads_everything(trace_file, traced):
    tailer = TraceTailer(trace_file)
    records = drain(tailer)
    assert tailer.drained
    assert len(records) == len(traced.trace)
    assert [r.idx for r in records] == list(range(len(records)))
    assert tailer.thread_roster == traced.trace.thread_roster or (
        tailer.thread_roster == traced.trace.threads
    )
    assert tailer.resyncs == 0
    assert not tailer.warnings.counts


def test_torn_tail_held_until_completed(tmp_path, trace_bytes):
    path = str(tmp_path / "t.json")
    cut = trace_bytes.index(b"\n", 200) + 40  # mid-line, past the header
    write(path, trace_bytes[:cut])
    tailer = TraceTailer(path)
    first = drain(tailer)
    consumed = tailer.position()["offset"]
    # The torn final line is not consumed: the cursor sits on its start.
    assert consumed < cut
    assert trace_bytes[consumed - 1 : consumed] == b"\n"
    write(path, trace_bytes[cut:], mode="ab")
    write(path + ".done", b"")
    rest = drain(tailer)
    assert tailer.drained
    assert tailer.resyncs >= 1
    assert [r.idx for r in first + rest] == list(range(len(first) + len(rest)))
    assert not tailer.warnings.counts


def test_torn_garbage_at_eof_warns_not_crashes(tmp_path, trace_bytes):
    path = str(tmp_path / "t.json")
    write(path, trace_bytes + b'{"half": "rec')  # unterminated garbage
    write(path + ".done", b"")
    tailer = TraceTailer(path)
    records = drain(tailer)
    assert tailer.drained
    assert tailer.warnings.counts == {"torn-tail": 1}
    assert len(records) == trace_bytes.count(b"\n") - 1  # header excluded


def test_garbage_lines_skipped_and_renumbered(tmp_path, trace_bytes):
    lines = trace_bytes.split(b"\n")
    lines.insert(3, b"!! not json !!")
    lines.insert(7, b"!! not json !!")
    path = str(tmp_path / "t.json")
    write(path, b"\n".join(lines))
    write(path + ".done", b"")
    tailer = TraceTailer(path)
    records = drain(tailer)
    assert sum(tailer.warnings.counts.values()) == 2
    assert [r.idx for r in records] == list(range(len(records)))


def test_bad_header_raises(tmp_path):
    path = str(tmp_path / "t.json")
    write(path, b'{"format": "something-else"}\n')
    tailer = TraceTailer(path)
    with pytest.raises(TraceError):
        tailer.poll()


def test_watch_folder_segments(tmp_path, trace_bytes, traced):
    folder = tmp_path / "segs"
    folder.mkdir()
    third = len(trace_bytes) // 3
    cuts = [0, third + 17, 2 * third + 5, len(trace_bytes)]  # mid-line cuts
    tailer = TraceTailer(str(folder))
    collected = []
    for i in range(3):
        write(str(folder / ("seg-%03d.json" % i)), trace_bytes[cuts[i]:cuts[i + 1]])
        collected.extend(tailer.poll())
    write(str(folder / ".done"), b"")
    collected.extend(drain(tailer))
    assert tailer.drained
    assert len(collected) == len(traced.trace)
    assert not tailer.warnings.counts


def test_position_and_prefix_hash_roundtrip(tmp_path, trace_bytes):
    for layout in ("file", "dir"):
        if layout == "file":
            path = str(tmp_path / "t.json")
            write(path, trace_bytes)
            write(path + ".done", b"")
        else:
            folder = tmp_path / "d"
            folder.mkdir()
            half = len(trace_bytes) // 2
            write(str(folder / "a.json"), trace_bytes[:half])
            write(str(folder / "b.json"), trace_bytes[half:])
            write(str(folder / ".done"), b"")
            path = str(folder)
        tailer = TraceTailer(path)
        drain(tailer)
        assert hash_prefix(path, tailer.position()) == tailer.prefix_hexdigest()


def test_lag_bytes_counts_unconsumed(tmp_path, trace_bytes):
    path = str(tmp_path / "t.json")
    write(path, trace_bytes)
    tailer = TraceTailer(path)
    assert tailer.lag_bytes() == len(trace_bytes)
    drain(tailer)
    assert tailer.lag_bytes() == 0


def test_chunked_reads_bound_lookahead(tmp_path, trace_bytes):
    # A poll with limit=1 must not slurp the whole file into memory:
    # the ready queue stays bounded by one chunk's worth of lines.
    path = str(tmp_path / "t.json")
    write(path, trace_bytes)
    write(path + ".done", b"")
    tailer = TraceTailer(path)
    got = tailer.poll(limit=1)
    assert len(got) == 1
    assert len(tailer._ready) <= CHUNK  # far fewer lines than bytes
    assert tailer.position()["offset"] <= 2 * CHUNK
