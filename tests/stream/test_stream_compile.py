"""Streamed compilation is byte-identical to batch compilation."""

from repro.artc.compiler import compile_trace
from repro.stream.compile import StreamCompiler
from repro.stream.digest import benchmark_digest, stream_digest_of
from repro.stream.follow import ingest_trace


def test_streamed_benchmark_identical_to_batch(trace_file, traced):
    batch = compile_trace(traced.trace, traced.snapshot)
    result = ingest_trace(trace_file, snapshot=traced.snapshot)
    assert result.finished
    assert benchmark_digest(result.benchmark) == benchmark_digest(batch)
    assert stream_digest_of(batch) == result.digest
    # The stats block (minus the volatile timer) matches too.
    batch_stats = dict(batch.stats)
    stream_stats = dict(result.benchmark.stats)
    batch_stats.pop("compile_seconds")
    stream_stats.pop("compile_seconds")
    assert batch_stats == stream_stats


def test_streamed_no_reduce_identical(trace_file, traced):
    batch = compile_trace(traced.trace, traced.snapshot, reduce=False)
    result = ingest_trace(trace_file, snapshot=traced.snapshot, reduce=False)
    assert benchmark_digest(result.benchmark) == benchmark_digest(batch)
    assert stream_digest_of(batch) == result.digest


def compiler_for(traced, **kwargs):
    return StreamCompiler(
        snapshot=traced.snapshot,
        platform=traced.trace.platform,
        label=traced.trace.label,
        **kwargs
    )


def test_windowed_compiler_matches_retained(traced):
    retain = compiler_for(traced)
    windowed = compiler_for(traced, retain=False)
    for record in traced.trace.records:
        compiled = retain.feed(record)
        w = windowed.feed(record)
        assert w.preds == compiled.preds
        assert w.wait == compiled.wait
        if windowed.fed % 50 == 0:
            windowed.retire()
    windowed.retire()
    assert windowed.digest() == retain.digest()
    assert windowed.retired > 0
    # Bounded memory: surviving reach vectors are the live refs plus
    # thread frontiers, not the whole history.
    assert windowed.live_vectors < windowed.fed // 2
    assert windowed.stats()["n_edges"] == retain.stats()["n_edges"]


def test_windowed_digest_equals_batch_digest(traced):
    batch = compile_trace(traced.trace, traced.snapshot)
    windowed = compiler_for(traced, retain=False)
    for record in traced.trace.records:
        windowed.feed(record)
        if windowed.fed % 64 == 0:
            windowed.retire()
    assert windowed.digest() == stream_digest_of(batch)
