"""Fixtures for the streaming-ingestion tests.

One traced workload (built once per session) serves every test; the
``trace_file`` fixture materializes it as a finished on-disk stream
(JSON-lines plus the ``.done`` end marker).
"""

import pytest

from repro.bench.harness import trace_application
from repro.bench.platforms import PLATFORMS
from repro.workloads import ParallelRandomReaders


@pytest.fixture(scope="session")
def traced():
    app = ParallelRandomReaders(nthreads=3, reads_per_thread=120)
    return trace_application(app, PLATFORMS["hdd-ext4"], seed=2)


@pytest.fixture(scope="session")
def trace_bytes(traced):
    return traced.trace.dumps().encode("utf-8")


@pytest.fixture()
def trace_file(traced, tmp_path):
    path = tmp_path / "trace.json"
    traced.trace.save(str(path))
    (tmp_path / "trace.json.done").write_text("")
    return str(path)
