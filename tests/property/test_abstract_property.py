"""Property-based test: abstract replay never contradicts reality.

The abstract interpreter (:mod:`repro.verify.abstract`) promises a
one-sided guarantee: for any (benchmark, mode, target, seed) it either
binds an outcome exactly or reports ``UNKNOWN`` -- it never guesses.
Hypothesis drives the same (sample, mode, platform, seed) space as the
replay-core equivalence suite and checks every bound errno and every
bound final-state digest against a real dynamic replay.

On these race-free Magritte traces the resource-ordered and
single-threaded modes must also be *fully* exact: an UNKNOWN there
would be a precision regression, not just a soundness concern.
"""

from hypothesis import given, settings, strategies as st

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.core.modes import ReplayMode
from repro.verify import UNKNOWN, fs_digest, predict
from repro.workloads.magritte import build_suite

SAMPLES = ("itunes_startsmall1", "pages_pdf15")

_benchmarks = {}


def benchmark_for(sample):
    if sample not in _benchmarks:
        app = build_suite([sample])[sample]
        traced = trace_application(app, PLATFORMS["mac-hdd"], seed=0)
        _benchmarks[sample] = compile_trace(traced.trace, traced.snapshot)
    return _benchmarks[sample]


@given(
    sample=st.sampled_from(SAMPLES),
    mode=st.sampled_from(sorted(ReplayMode.ALL)),
    platform=st.sampled_from(["hdd-ext4", "ssd", "smallcache"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_abstract_never_contradicts_dynamic(sample, mode, platform, seed):
    bench = benchmark_for(sample)
    target = PLATFORMS[platform]
    fs = target.make_fs(seed=seed)
    initialize(fs, bench.snapshot)
    fs.stack.drop_caches()
    report = replay(bench, fs, ReplayConfig(mode=mode))
    pred = predict(bench, mode, target=fs.platform)

    for result in report.results:
        out = pred.outcomes[result.idx]
        if out == UNKNOWN or result.skipped:
            continue
        assert out == result.err, (
            "mode %s action #%d (%s): abstract bound %r, dynamic got %r"
            % (mode, result.idx, result.name, out, result.err)
        )
    if pred.digest is not None:
        assert pred.digest == fs_digest(fs), (
            "mode %s: abstract bound a final-state digest that dynamic "
            "replay contradicts" % mode
        )
    if mode in (ReplayMode.ARTC, ReplayMode.SINGLE):
        assert pred.status == "exact", (
            "mode %s widened (%s) on a race-free trace" % (mode, pred.reason)
        )
