"""Property-based tests: VFS namespace semantics against a dict oracle.

A random sequence of namespace operations runs both through the VFS and
through a trivial in-memory oracle; existence and file sizes must agree
afterwards.
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import make_fs

NAMES = ["a", "b", "c"]

OPS = st.lists(
    st.tuples(
        st.sampled_from(["create", "unlink", "mkdir", "rmdir", "rename", "truncate"]),
        st.sampled_from(NAMES),
        st.sampled_from(NAMES),
        st.integers(min_value=0, max_value=100_000),
    ),
    min_size=1,
    max_size=25,
)


class Oracle(object):
    """Ground-truth model: path -> ("dir"|size)."""

    def __init__(self):
        self.entries = {}

    def create(self, name, size):
        if self.entries.get(name) == "dir":
            return False
        self.entries.setdefault(name, 0)
        return True

    def unlink(self, name):
        if name not in self.entries or self.entries[name] == "dir":
            return False
        del self.entries[name]
        return True

    def mkdir(self, name):
        if name in self.entries:
            return False
        self.entries[name] = "dir"
        return True

    def rmdir(self, name):
        if self.entries.get(name) != "dir":
            return False
        del self.entries[name]
        return True

    def rename(self, old, new):
        if old not in self.entries or old == new:
            return old == new and old in self.entries
        if self.entries.get(new) == "dir" and self.entries[old] != "dir":
            return False
        if self.entries[old] == "dir" and new in self.entries and (
            self.entries[new] != "dir"
        ):
            return False
        self.entries[new] = self.entries.pop(old)
        return True

    def truncate(self, name, size):
        if self.entries.get(name) in (None, "dir"):
            return False
        self.entries[name] = size
        return True


@given(OPS)
@settings(max_examples=50, deadline=None)
def test_namespace_agrees_with_oracle(ops):
    fs = make_fs()
    fs.makedirs_now("/w")
    oracle = Oracle()

    def body():
        for op, x, y, size in ops:
            path_x, path_y = "/w/" + x, "/w/" + y
            if op == "create":
                ret, err = yield from fs.open(1, path_x, 0x41, 0o644)  # O_WRONLY|O_CREAT
                if err is None:
                    yield from fs.ftruncate(1, ret, size)
                    yield from fs.close(1, ret)
                ok = err is None
                expected = oracle.create(x, size)
                if ok and expected:
                    oracle.truncate(x, size)
            elif op == "unlink":
                _ret, err = yield from fs.unlink(1, path_x)
                ok, expected = err is None, oracle.unlink(x)
            elif op == "mkdir":
                _ret, err = yield from fs.mkdir(1, path_x)
                ok, expected = err is None, oracle.mkdir(x)
            elif op == "rmdir":
                _ret, err = yield from fs.rmdir(1, path_x)
                ok, expected = err is None, oracle.rmdir(x)
            elif op == "rename":
                _ret, err = yield from fs.rename(1, path_x, path_y)
                ok, expected = err is None, oracle.rename(x, y)
            elif op == "truncate":
                _ret, err = yield from fs.truncate(1, path_x, size)
                ok, expected = err is None, oracle.truncate(x, size)
            assert ok == expected, (op, x, y, ok, expected)

    fs.engine.run_process(body())

    # Final states agree.
    for name in NAMES:
        entry = oracle.entries.get(name)
        node = fs.lookup("/w/" + name, follow=False)
        if entry is None:
            assert node is None
        elif entry == "dir":
            assert node is not None and node.is_dir
        else:
            assert node is not None and node.is_reg
            assert node.size == entry


@given(st.lists(st.tuples(st.sampled_from(["f1", "f2"]),
                          st.integers(min_value=0, max_value=63),
                          st.booleans()),
                min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_cache_invariants_under_random_io(accesses):
    from repro.storage.cache import PageCache

    cache = PageCache(16)
    for file_id, block, dirty in accesses:
        evicted = cache.insert((file_id, block), dirty)
        for key in evicted:
            assert key != (file_id, block)
        assert len(cache) <= cache.capacity_pages
        assert cache.dirty_count <= len(cache)
    # Every reported-dirty key is resident.
    for key in cache.all_dirty_keys():
        assert cache.contains(key)


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=1, max_value=64)),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_allocator_never_overlaps_extents(growths):
    from repro.storage.alloc import BlockAllocator

    alloc = BlockAllocator(max_extent_blocks=16)
    sizes = {}
    for file_id, grow in growths:
        sizes[file_id] = sizes.get(file_id, 0) + grow
        alloc.ensure_blocks(file_id, sizes[file_id])
    seen = {}
    for file_id, size in sizes.items():
        for block in range(size):
            lba = alloc.block_lba(file_id, block)
            assert lba not in seen, (
                "lba %d assigned to both %s and %s" % (lba, seen[lba], file_id)
            )
            seen[lba] = file_id
