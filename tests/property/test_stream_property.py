"""Property-based tests: streamed ingestion is chunking-invariant.

However a producer tears the byte stream -- any chunk boundaries,
including mid-line and mid-codepoint splits, with a crash-and-resume
after every chunk -- the streamed compiler must derive exactly the
batch compiler's benchmark, and a live follow replay must produce the
batch replay's report and final state.
"""

import json
import tempfile
import threading
import time

from hypothesis import given, settings, strategies as st

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.core.modes import ReplayMode
from repro.stream.digest import benchmark_digest, stream_digest_of
from repro.stream.follow import follow_replay, ingest_trace
from repro.verify.abstract import fs_digest
from repro.workloads import ParallelRandomReaders

_cache = {}


def traced():
    if "traced" not in _cache:
        app = ParallelRandomReaders(nthreads=3, reads_per_thread=60)
        _cache["traced"] = trace_application(
            app, PLATFORMS["hdd-ext4"], seed=5
        )
    return _cache["traced"]


def trace_bytes():
    if "bytes" not in _cache:
        _cache["bytes"] = traced().trace.dumps().encode("utf-8")
    return _cache["bytes"]


def batch_bench():
    if "bench" not in _cache:
        t = traced()
        _cache["bench"] = compile_trace(t.trace, t.snapshot)
    return _cache["bench"]


def cuts_from(fractions, total):
    cuts = sorted({max(1, min(total, int(f * total))) for f in fractions})
    if not cuts or cuts[-1] != total:
        cuts.append(total)
    return cuts


@given(fractions=st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12,
))
@settings(max_examples=25, deadline=None)
def test_ingest_invariant_under_chunking_with_resume(fractions):
    """Deliver the trace in arbitrary byte chunks, abandoning and
    resuming ingestion (checkpoint-verified) after every chunk."""
    data = trace_bytes()
    with tempfile.TemporaryDirectory() as tmp:
        path = tmp + "/t.json"
        ck = tmp + "/ck.json"
        for cut in cuts_from(fractions, len(data)):
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            ingest_trace(
                path, snapshot=traced().snapshot,
                checkpoint_path=ck, checkpoint_every=40,
                resume=True, wait=False,
            )
        with open(path + ".done", "w"):
            pass
        result = ingest_trace(
            path, snapshot=traced().snapshot, checkpoint_path=ck, resume=True,
        )
    assert result.finished
    assert result.digest == stream_digest_of(batch_bench())
    assert benchmark_digest(result.benchmark) == benchmark_digest(batch_bench())


def replay_fingerprint(report, fs):
    payload = json.dumps(
        [
            report.summary(),
            [
                (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err,
                 r.matched, r.skipped)
                for r in report.results
            ],
        ],
        sort_keys=True,
    )
    return payload, fs.engine.now, fs_digest(fs)


@given(
    fractions=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8,
    ),
    combo=st.sampled_from([
        # (mode, core): scoreboard-envelope combos run live; temporal
        # mode and the events/jit cores exercise the deferred-start
        # path.  Identity must hold for every one.
        (ReplayMode.ARTC, "auto"),
        (ReplayMode.SINGLE, "auto"),
        (ReplayMode.UNCONSTRAINED, "auto"),
        (ReplayMode.TEMPORAL, "auto"),
        (ReplayMode.ARTC, "events"),
        (ReplayMode.ARTC, "jit"),
    ]),
    window=st.sampled_from([48, 512]),
)
@settings(max_examples=10, deadline=None)
def test_follow_invariant_under_chunked_delivery(fractions, combo, window):
    mode, core = combo
    data = trace_bytes()
    t = traced()
    platform = PLATFORMS["hdd-ext4"]

    fs = platform.make_fs(seed=0)
    initialize(fs, t.snapshot)
    batch = replay_fingerprint(
        replay(batch_bench(), fs, ReplayConfig(mode=mode, core=core)), fs
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = tmp + "/grow.json"
        with open(path, "wb") as handle:
            handle.write(b"")

        def producer():
            pos = 0
            for cut in cuts_from(fractions, len(data)):
                with open(path, "ab") as handle:
                    handle.write(data[pos:cut])
                pos = cut
                time.sleep(0.001)
            with open(path + ".done", "w"):
                pass

        writer = threading.Thread(target=producer)
        writer.start()
        try:
            fs2 = platform.make_fs(seed=0)
            initialize(fs2, t.snapshot)
            report, status = follow_replay(
                path, fs2, ReplayConfig(mode=mode, core=core),
                snapshot=t.snapshot, window=window, poll=0.001,
            )
        finally:
            writer.join()
    assert replay_fingerprint(report, fs2) == batch
    live = mode != ReplayMode.TEMPORAL and core == "auto"
    assert status.mode == ("live" if live else "deferred")
