"""Hypothesis property: batched release is serial release.

Random successor lists over random thread assignments, random pending
counters, and random (realistic) waiting tables -- a thread parks only
on an action it owns.  For every such state the batched implementation
must leave identical counters and waiting entries, open the same gates
the same number of times, and wake threads in the same order as the
one-at-a-time reference.
"""

from hypothesis import given, settings, strategies as st

from repro.artc import planir
from tests.artc.test_release_batch import assert_equivalent


@st.composite
def release_state(draw):
    n = draw(st.integers(min_value=0, max_value=16))
    tid_of = {
        idx: draw(st.integers(min_value=0, max_value=3)) for idx in range(n)
    }
    succ_list = draw(
        st.lists(
            st.sampled_from(range(n)) if n else st.nothing(),
            unique=True,
            max_size=n,
        )
    )
    pending = {
        idx: draw(st.integers(min_value=1, max_value=3)) for idx in range(n)
    }
    waiting = {}
    for tid in set(tid_of.values()):
        owned = [idx for idx in range(n) if tid_of[idx] == tid]
        if owned and draw(st.booleans()):
            waiting[tid] = draw(st.sampled_from(owned))
    return pending, waiting, succ_list, tid_of


@given(state=release_state())
@settings(max_examples=300, deadline=None)
def test_batched_equals_serial(state):
    pending, waiting, succ_list, tid_of = state
    assert_equivalent(pending, waiting, succ_list, tid_of)


@given(state=release_state())
@settings(max_examples=100, deadline=None)
def test_runs_partition_the_successor_list(state):
    _pending, _waiting, succ_list, tid_of = state
    runs = planir.release_runs(succ_list, tid_of)
    flat = [succ for _tid, members in runs for succ in members]
    assert flat == succ_list
    for tid, members in runs:
        assert all(tid_of[succ] == tid for succ in members)
    # Runs are maximal: adjacent runs never share an owner.
    owners = [tid for tid, _members in runs]
    assert all(a != b for a, b in zip(owners, owners[1:]))
