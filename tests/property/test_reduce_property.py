"""Property-based tests: edge reduction never changes replay semantics.

For randomly generated multithreaded traces (same generator family as
test_deps_property):

- the transitive closure of ``reduced_preds`` union the implicit
  per-thread chains equals the closure of the full ``preds`` graph;
- an ARTC replay waiting only on ``reduced_preds`` produces a report
  identical to one waiting on the full ``preds`` -- same elapsed time,
  same failure count, same warnings;
- the reduced wait lists are order-preserving subsets of the full
  lists, and the attributed edge set is untouched.
"""

from hypothesis import given, settings, strategies as st

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.core.modes import ReplayMode
from repro.core.reduce import closure_matrix
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs

PATHS = ["/w/a", "/w/b", "/w/c"]

OP_VOCAB = st.sampled_from(
    ["open_close", "create_write", "stat", "unlink", "rename",
     "read_chunk", "fsync_one"]
)


@st.composite
def thread_scripts(draw):
    nthreads = draw(st.integers(min_value=1, max_value=3))
    return [
        draw(st.lists(OP_VOCAB, min_size=1, max_size=6))
        for _ in range(nthreads)
    ]


def _thread_body(osapi, tid, script, rng_seed):
    import random

    rng = random.Random(rng_seed)
    for op in script:
        path = rng.choice(PATHS)
        if op == "open_close":
            fd, err = yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")
            if err is None:
                yield from osapi.call(tid, "read", fd=fd, nbytes=100)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "create_write":
            fd, err = yield from osapi.call(
                tid, "open", path=path, flags="O_WRONLY|O_CREAT"
            )
            if err is None:
                yield from osapi.call(tid, "write", fd=fd, nbytes=4096)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "stat":
            yield from osapi.call(tid, "stat", path=path)
        elif op == "unlink":
            yield from osapi.call(tid, "unlink", path=path)
        elif op == "rename":
            yield from osapi.call(tid, "rename", old=path, new=path + ".moved")
        elif op == "read_chunk":
            fd, err = yield from osapi.call(tid, "open", path="/w/base", flags="O_RDONLY")
            if err is None:
                yield from osapi.call(tid, "pread", fd=fd, nbytes=4096, offset=tid * 4096)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "fsync_one":
            fd, err = yield from osapi.call(tid, "open", path="/w/base", flags="O_RDWR")
            if err is None:
                yield from osapi.call(tid, "write", fd=fd, nbytes=512)
                yield from osapi.call(tid, "fsync", fd=fd)
                yield from osapi.call(tid, "close", fd=fd)


def generate_trace(scripts, seed):
    fs = make_fs(seed=seed)
    fs.makedirs_now("/w")
    fs.create_file_now("/w/base", size=64 << 10)
    snapshot = Snapshot.capture(fs, roots=("/w",))
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="reduce-prop")
    for tid, script in enumerate(scripts, start=1):
        fs.engine.spawn(_thread_body(osapi, tid, script, seed * 100 + tid))
    fs.engine.run()
    return trace, snapshot


def _warning_tuples(report):
    return [(w.idx, w.kind, w.message) for w in report.warnings]


def _result_tuples(report):
    return [
        (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err, r.matched)
        for r in report.results
    ]


def _replay_report(bench, seed, reduced):
    fs = make_fs(seed=seed)
    initialize(fs, bench.snapshot)
    config = ReplayConfig(mode=ReplayMode.ARTC, reduced_deps=reduced)
    return replay(bench, fs, config)


class TestReductionSoundness(object):
    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_reduced_closure_equals_full_closure(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        graph = bench.graph
        n = graph.n_actions
        if not n:
            return
        tids = [action.record.tid for action in bench.actions]
        assert graph.reduced_preds is not None
        assert closure_matrix(n, graph.reduced_preds, tids) == closure_matrix(
            n, graph.preds, tids
        )

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_reduced_is_order_preserving_subset(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        graph = bench.graph
        for full, reduced in zip(graph.preds, graph.reduced_preds):
            kept = set(reduced)
            assert kept <= set(full)
            assert reduced == [src for src in full if src in kept]
        # Reduction never touches the attributed edge set.
        assert graph.n_edges == sum(len(p) for p in graph.preds)
        assert graph.n_reduced_edges <= graph.n_edges

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_replay_report_identical_with_and_without_reduction(
        self, scripts, seed
    ):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        if not bench.actions:
            return
        full = _replay_report(bench, seed + 7777, reduced=False)
        fast = _replay_report(bench, seed + 7777, reduced=True)
        assert fast.elapsed == full.elapsed
        assert fast.failures == full.failures
        assert _warning_tuples(fast) == _warning_tuples(full)
        assert _result_tuples(fast) == _result_tuples(full)
