"""Property-based tests: the fast replay cores are invisible.

The scoreboard core (integer pending-predecessor counters + per-thread
gates) and the JIT core (trace-specialized generated code,
:mod:`repro.artc.codegen`) are pure optimizations over the classic
per-action event machinery -- for any benchmark and any replay mode
every core must produce a byte-identical report *and* leave the target
file system in a byte-identical final state.  The event core is the
oracle: it is the original implementation and still serves hardened,
fault, and crash-recovery replay.

Hypothesis drives (sample, mode, target platform, seed) over two real
Magritte traces; the fingerprint covers the report summary, every
per-action result tuple, and a full post-replay snapshot of the
target tree.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, ReplayError, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.core.modes import ReplayMode
from repro.tracing.snapshot import Snapshot
from repro.workloads.magritte import build_suite

SAMPLES = ("itunes_startsmall1", "pages_pdf15")

_benchmarks = {}


def benchmark_for(sample):
    if sample not in _benchmarks:
        app = build_suite([sample])[sample]
        traced = trace_application(app, PLATFORMS["mac-hdd"], seed=0)
        _benchmarks[sample] = compile_trace(traced.trace, traced.snapshot)
    return _benchmarks[sample]


def _run(bench, platform, mode, seed, core, jobs=1):
    fs = platform.make_fs(seed=seed)
    if bench.snapshot is not None:
        initialize(fs, bench.snapshot)
    fs.stack.drop_caches()
    report = replay(bench, fs, ReplayConfig(mode=mode, core=core, jobs=jobs))
    return report, fs


def replay_fingerprint(bench, platform, mode, seed, core, jobs=1):
    """Everything observable about one replay, as bytes."""
    report, fs = _run(bench, platform, mode, seed, core, jobs)
    payload = json.dumps(
        [
            report.summary(),
            [
                (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err,
                 r.matched, r.skipped)
                for r in report.results
            ],
        ],
        sort_keys=True,
    )
    final = Snapshot.capture(fs, roots=("/",), label="final")
    return (payload + final.dumps()).encode("utf-8")


def semantic_fingerprint(bench, platform, mode, seed, core, jobs=1):
    """The timing-free view every core must agree on at any job count.

    Multi-shard replay follows the partitioned-clock timing model
    (per-shard simulated clocks reconciled only at cross-shard gates),
    so simulated timestamps -- and the per-replica descriptor numbers
    in ``ret`` -- are out of scope; errnos, conformance matches,
    warning counts, and the full final file-system state are not.
    """
    report, fs = _run(bench, platform, mode, seed, core, jobs)
    summary = report.summary()
    for timing_key in ("elapsed", "thread_time", "mean_outstanding"):
        summary.pop(timing_key, None)
    payload = json.dumps(
        [
            summary,
            [
                (r.idx, r.tid, r.name, r.err, r.matched, r.skipped)
                for r in report.results
            ],
        ],
        sort_keys=True,
    )
    final = Snapshot.capture(fs, roots=("/",), label="final")
    return (payload + final.dumps()).encode("utf-8")


@given(
    sample=st.sampled_from(SAMPLES),
    mode=st.sampled_from(sorted(ReplayMode.ALL)),
    platform=st.sampled_from(["hdd-ext4", "ssd", "smallcache"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_fast_cores_identical_to_event_core(sample, mode, platform, seed):
    bench = benchmark_for(sample)
    target = PLATFORMS[platform]
    # Neither fast core supports temporal replay; "auto" must route
    # temporal to the event core and everything else to the
    # scoreboard, so comparing "events" against "auto" exercises the
    # fast path exactly where it is reachable in production.
    if mode == ReplayMode.TEMPORAL:
        fast_cores = ("auto",)
    else:
        fast_cores = ("scoreboard", "jit")
    events = replay_fingerprint(bench, target, mode, seed, "events")
    for core in fast_cores:
        assert events == replay_fingerprint(bench, target, mode, seed, core), (
            "core %r diverged from the event oracle" % (core,)
        )


@given(
    sample=st.sampled_from(SAMPLES),
    mode=st.sampled_from(
        sorted(m for m in ReplayMode.ALL if m != ReplayMode.TEMPORAL)
    ),
    platform=st.sampled_from(["hdd-ext4", "ssd", "smallcache"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_shard_jobs1_identical_to_scoreboard(sample, mode, platform, seed):
    """``jobs=1`` degenerates to the scoreboard core exactly: the full
    fingerprint -- simulated timing included -- must be byte-identical."""
    bench = benchmark_for(sample)
    target = PLATFORMS[platform]
    scoreboard = replay_fingerprint(bench, target, mode, seed, "scoreboard")
    sharded = replay_fingerprint(bench, target, mode, seed, "shard", jobs=1)
    assert scoreboard == sharded, (
        "shard core at jobs=1 diverged from the scoreboard"
    )


@given(
    sample=st.sampled_from(SAMPLES),
    platform=st.sampled_from(["hdd-ext4", "ssd", "smallcache"]),
    seed=st.integers(min_value=0, max_value=3),
    jobs=st.sampled_from([2, 4]),
)
@settings(max_examples=10, deadline=None)
def test_shard_multiprocess_semantics_match_event_core(
    sample, platform, seed, jobs
):
    """Forked multi-shard replay must agree with the event oracle on
    everything except simulated timing: per-action errnos and matches,
    warning counts, and the byte-exact final file-system state."""
    bench = benchmark_for(sample)
    target = PLATFORMS[platform]
    events = semantic_fingerprint(
        bench, target, ReplayMode.ARTC, seed, "events"
    )
    sharded = semantic_fingerprint(
        bench, target, ReplayMode.ARTC, seed, "shard", jobs=jobs
    )
    assert events == sharded, (
        "shard core at jobs=%d diverged from the event oracle" % jobs
    )


def test_forcing_fast_core_on_temporal_raises():
    bench = benchmark_for("pages_pdf15")
    for core in ("scoreboard", "jit", "shard"):
        fs = PLATFORMS["ssd"].make_fs(seed=0)
        initialize(fs, bench.snapshot)
        try:
            replay(bench, fs, ReplayConfig(mode=ReplayMode.TEMPORAL, core=core))
        except ReplayError as exc:
            assert "temporal" in str(exc)
        else:
            raise AssertionError(
                "core=%r must reject temporal replay" % (core,)
            )
