"""Property-based tests: compiled dependency graphs are sound.

For randomly generated multithreaded traces over a small namespace:

- the dependency graph is acyclic and its edges point forward;
- a topological replay order exists and satisfies every enabled rule
  (checked independently by the rule checkers);
- replaying under ARTC on a fresh target reproduces every return value.
"""

from hypothesis import given, settings, strategies as st

from repro.artc import compile_trace, replay, ReplayConfig
from repro.artc.init import initialize
from repro.core.analysis import topological_order, validate_order
from repro.core.modes import ReplayMode, RuleSet
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS
from tests.conftest import make_fs

PATHS = ["/w/a", "/w/b", "/w/c"]

OP_VOCAB = st.sampled_from(
    ["open_close", "create_write", "stat", "unlink", "rename", "mkdir_rmdir",
     "read_chunk", "fsync_one", "symlink"]
)


@st.composite
def thread_scripts(draw):
    nthreads = draw(st.integers(min_value=1, max_value=3))
    return [
        draw(st.lists(OP_VOCAB, min_size=1, max_size=6))
        for _ in range(nthreads)
    ]


def _thread_body(osapi, tid, script, rng_seed):
    import random

    rng = random.Random(rng_seed)
    for op in script:
        path = rng.choice(PATHS)
        if op == "open_close":
            fd, err = yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")
            if err is None:
                yield from osapi.call(tid, "read", fd=fd, nbytes=100)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "create_write":
            fd, err = yield from osapi.call(
                tid, "open", path=path, flags="O_WRONLY|O_CREAT"
            )
            if err is None:
                yield from osapi.call(tid, "write", fd=fd, nbytes=4096)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "stat":
            yield from osapi.call(tid, "stat", path=path)
        elif op == "unlink":
            yield from osapi.call(tid, "unlink", path=path)
        elif op == "rename":
            yield from osapi.call(tid, "rename", old=path, new=path + ".moved")
        elif op == "mkdir_rmdir":
            yield from osapi.call(tid, "mkdir", path="/w/dir%d" % tid, mode=0o755)
            yield from osapi.call(tid, "rmdir", path="/w/dir%d" % tid)
        elif op == "read_chunk":
            fd, err = yield from osapi.call(tid, "open", path="/w/base", flags="O_RDONLY")
            if err is None:
                yield from osapi.call(tid, "pread", fd=fd, nbytes=4096, offset=tid * 4096)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "fsync_one":
            fd, err = yield from osapi.call(tid, "open", path="/w/base", flags="O_RDWR")
            if err is None:
                yield from osapi.call(tid, "write", fd=fd, nbytes=512)
                yield from osapi.call(tid, "fsync", fd=fd)
                yield from osapi.call(tid, "close", fd=fd)
        elif op == "symlink":
            yield from osapi.call(tid, "symlink", target="/w/base", path=path + ".ln")


def generate_trace(scripts, seed):
    fs = make_fs(seed=seed)
    fs.makedirs_now("/w")
    fs.create_file_now("/w/base", size=64 << 10)
    snapshot = Snapshot.capture(fs, roots=("/w",))
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="prop")
    for tid, script in enumerate(scripts, start=1):
        fs.engine.spawn(_thread_body(osapi, tid, script, seed * 100 + tid))
    fs.engine.run()
    return trace, snapshot


class TestGraphSoundness(object):
    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_topological_order_satisfies_all_rules(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        if not bench.actions:
            return
        order = topological_order(bench.graph, bench.actions)  # raises on cycle
        assert validate_order(bench.actions, bench.ruleset, order) == []

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_edges_point_forward_in_trace_order(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        for src, dst in bench.graph.edges():
            assert src < dst

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_artc_replay_reproduces_every_return_value(self, scripts, seed):
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot)
        fs = make_fs(seed=seed + 7777)
        initialize(fs, snapshot)
        report = replay(bench, fs, ReplayConfig(mode=ReplayMode.ARTC))
        assert report.failures == 0

    @given(thread_scripts(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_program_seq_subsumes_everything(self, scripts, seed):
        """program_seq (total order) replay also reproduces the trace."""
        trace, snapshot = generate_trace(scripts, seed)
        bench = compile_trace(trace, snapshot, ruleset=RuleSet(program_seq=True))
        fs = make_fs(seed=seed + 1234)
        initialize(fs, snapshot)
        report = replay(bench, fs, ReplayConfig(mode=ReplayMode.ARTC))
        assert report.failures == 0
