"""Property-based tests of the ordering-rule checkers (Table 1)."""

from hypothesis import given, settings, strategies as st

from repro.core.rules import check_name, check_sequential, check_stage


def permutation_of(n):
    return st.permutations(list(range(n)))


@st.composite
def series_and_order(draw, max_actions=8):
    n = draw(st.integers(min_value=2, max_value=max_actions))
    order = draw(permutation_of(n))
    # The series is a subset of the actions, in canonical (trace) order.
    members = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n
            )
        )
    )
    return members, list(order)


def positions(order):
    return {action: position for position, action in enumerate(order)}


class TestSequential(object):
    @given(series_and_order())
    @settings(max_examples=60, deadline=None)
    def test_valid_iff_relative_order_preserved(self, data):
        series, order = data
        pos = positions(order)
        violations = check_sequential(series, pos)
        preserved = all(
            pos[a] < pos[b] for a, b in zip(series, series[1:])
        )
        assert (violations == []) == preserved

    @given(series_and_order())
    @settings(max_examples=60, deadline=None)
    def test_identity_order_always_valid(self, data):
        series, order = data
        pos = positions(sorted(order))
        assert check_sequential(series, pos) == []


class TestStageSubsumption(object):
    @given(series_and_order())
    @settings(max_examples=60, deadline=None)
    def test_sequential_validity_implies_stage_validity(self, data):
        """Sequential subsumes stage: any ordering sequential admits,
        stage admits too."""
        series, order = data
        pos = positions(order)
        if check_sequential(series, pos) == []:
            assert check_stage(series, pos, True, True) == []

    @given(series_and_order())
    @settings(max_examples=60, deadline=None)
    def test_stage_violation_implies_sequential_violation(self, data):
        series, order = data
        pos = positions(order)
        if check_stage(series, pos, True, True):
            assert check_sequential(series, pos)

    @given(series_and_order())
    @settings(max_examples=60, deadline=None)
    def test_no_create_no_delete_means_unconstrained(self, data):
        series, order = data
        pos = positions(order)
        assert check_stage(series, pos, False, False) == []


class TestName(object):
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_back_to_back_generations_valid(self, len_a, len_b):
        gen_a = list(range(len_a))
        gen_b = list(range(len_a, len_a + len_b))
        pos = positions(gen_a + gen_b)
        assert check_name([gen_a, gen_b], pos) == []

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_swapped_generations_invalid(self, len_a, len_b):
        gen_a = list(range(len_a))
        gen_b = list(range(len_a, len_a + len_b))
        pos = positions(gen_b + gen_a)
        assert check_name([gen_a, gen_b], pos) != []
