"""Figure 8: the LevelDB dependency graph.

ARTC's resource-aware graph for a 4-thread readrandom trace has
somewhat *fewer* edges than temporal ordering's -- but what gives its
replay flexibility is that its edges are far *longer*: the paper
measures 6408 ARTC edges averaging 8.9 s against 9135 temporal edges
averaging 10 ms.
"""

from conftest import once

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.bench.tables import format_table
from repro.core.analysis import edge_stats
from repro.core.deps import temporal_graph
from repro.leveldb.apps import LevelDBReadRandom


def test_fig8_dependency_graph(benchmark, emit):
    def run():
        app = LevelDBReadRandom(nthreads=4, ops_per_thread=300, nkeys=30000)
        platform = PLATFORMS["hdd-ext4"].variant(cache_bytes=8 << 20)
        traced = trace_application(app, platform)
        bench = compile_trace(traced.trace, traced.snapshot)
        artc = edge_stats(bench.graph, bench.actions)
        temporal = edge_stats(temporal_graph(bench.actions), bench.actions)
        return {
            "events": len(traced.trace),
            "duration": traced.trace.duration,
            "artc": artc,
            "temporal": temporal,
        }

    result = once(benchmark, run)
    artc, temporal = result["artc"], result["temporal"]
    rows = [
        ["temporal ordering", temporal["edges"], "%.4f s" % temporal["mean_length"]],
        ["ARTC (resource-aware)", artc["edges"], "%.4f s" % artc["mean_length"]],
    ]
    emit(
        "fig8",
        format_table(
            ["Graph", "Edges", "Mean edge length"],
            rows,
            title=(
                "Figure 8: dependency edges for a 4-thread readrandom trace "
                "(%d events over %.2f s)" % (result["events"], result["duration"])
            ),
        ),
    )
    # Fewer edges, and far longer ones.
    assert artc["edges"] < temporal["edges"]
    assert artc["mean_length"] > 20 * temporal["mean_length"]
