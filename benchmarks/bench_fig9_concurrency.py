"""Figure 9: system-call concurrency during replay.

For a 4-thread readrandom trace, measure the mean number of
simultaneously outstanding system calls in the original program, the
ARTC replay, and the temporally-ordered replay.  The paper's ARTC
achieves 94% of the original's concurrency, temporal ordering only
60%.
"""

from conftest import once

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode


def _trace_outstanding(trace):
    total_in_call = sum(r.duration for r in trace.records)
    return total_in_call / trace.duration if trace.duration else 0.0


def test_fig9_syscall_concurrency(benchmark, emit):
    from repro.leveldb.apps import LevelDBReadRandom

    def run():
        app = LevelDBReadRandom(nthreads=4, ops_per_thread=300, nkeys=30000)
        platform = PLATFORMS["hdd-ext4"].variant(cache_bytes=8 << 20)
        traced = trace_application(app, platform)
        bench = compile_trace(traced.trace, traced.snapshot)
        original = _trace_outstanding(traced.trace)
        artc = replay_benchmark(bench, platform, ReplayMode.ARTC, seed=300)
        temporal = replay_benchmark(bench, platform, ReplayMode.TEMPORAL, seed=301)
        return {
            "original": original,
            "artc": artc.mean_outstanding(),
            "temporal": temporal.mean_outstanding(),
        }

    result = once(benchmark, run)
    rows = [
        ["original program", "%.2f" % result["original"], "100%"],
        [
            "ARTC replay",
            "%.2f" % result["artc"],
            "%.0f%%" % (100 * result["artc"] / result["original"]),
        ],
        [
            "temporally-ordered replay",
            "%.2f" % result["temporal"],
            "%.0f%%" % (100 * result["temporal"] / result["original"]),
        ],
    ]
    emit(
        "fig9",
        format_table(
            ["Execution", "Mean outstanding calls", "Relative concurrency"],
            rows,
            title="Figure 9: system-call overlap, 4-thread readrandom",
        ),
    )
    # ARTC preserves more of the original's concurrency than temporal.
    assert result["artc"] > result["temporal"]
    assert result["artc"] > 0.5 * result["original"]
