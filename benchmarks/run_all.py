#!/usr/bin/env python
"""Run every paper benchmark through the parallel harness.

Each ``bench_*.py`` file becomes one cell executed as a pytest
subprocess; independent files run on separate workers.  Inside the
heavy benches the matrix cells fan out again via
:mod:`repro.bench.parallel` -- nested pools are avoided automatically
(a daemonic worker falls back to serial), so the inner level reuses
the bench-cell cache instead.

Result files land in ``benchmarks/results/`` via atomic temp+rename
writes (the ``emit`` fixture), so an interrupted run never truncates
committed results.

Usage::

    python benchmarks/run_all.py [--workers N] [--only fig7 table3 ...]
"""

import argparse
import glob
import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.parallel import Cell, run_cells, summarize  # noqa: E402

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def run_bench_file(path, seed=0):
    """One cell: run a single bench file under pytest, benchmark-only.

    ``seed`` is unused by pytest but keys the cell; bench files manage
    their own seeds internally.
    """
    env = dict(os.environ)
    src = os.path.join(BENCH_DIR, "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q", "--benchmark-only"],
        cwd=BENCH_DIR,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    tail = proc.stdout.decode("utf-8", "replace").splitlines()[-25:]
    return {
        "path": os.path.basename(path),
        "returncode": proc.returncode,
        "tail": tail,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (default: one per core)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="substring filters, e.g. 'fig7 table3'",
    )
    args = parser.parse_args(argv)

    paths = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))
    if args.only:
        paths = [
            p for p in paths
            if any(token in os.path.basename(p) for token in args.only)
        ]
    if not paths:
        print("no bench files matched", file=sys.stderr)
        return 2

    # Subprocess outcomes depend on the working tree, which the cell
    # arguments cannot capture -- never cache these cells.
    cells = [Cell(run_bench_file, {"path": path}, cache=False) for path in paths]

    def progress(result):
        status = "ok" if result.value["returncode"] == 0 else (
            "FAILED (%d)" % result.value["returncode"]
        )
        print("%-32s %-12s %6.1fs" % (result.value["path"], status, result.seconds))
        sys.stdout.flush()

    results = run_cells(
        cells, workers=args.workers or None, cache_dir=None, progress=progress
    )
    failed = [r.value for r in results if r.value["returncode"] != 0]
    for failure in failed:
        print("\n--- %s (exit %d) ---" % (failure["path"], failure["returncode"]))
        print("\n".join(failure["tail"]))
    stats = summarize(results)
    print(
        "\n%d/%d bench files ok; %d cached, %d computed in %.1fs"
        " (cache saved %.1fs); results in %s"
        % (len(results) - len(failed), len(results),
           stats["cached"], stats["computed"], stats["compute_seconds"],
           stats["saved_seconds"], os.path.join(BENCH_DIR, "results"))
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
