"""Streaming ingestion and live --follow replay overhead.

Measures the PR-9 streaming path (docs/STREAMING.md) against the batch
pipeline on a Magritte sample:

- **ingest** -- streamed (tailing) compile of the finished trace file:
  actions/second through ``ingest_trace`` vs the batch compiler, with
  the action-chain digest asserted equal (streamed == batch by
  construction, measured here anyway).
- **follow** -- live replay via ``follow_replay`` under a bounded
  window, against a producer writing the trace in staggered mid-line
  chunks: follow wall seconds vs batch replay wall seconds, plus the
  windowing counters (high-water vs cap, retired reach vectors,
  resident ``live_vectors``, backpressure pauses, producer waits).

The bounded-memory invariants asserted: the single-threaded-mode
window high-water stays at or below the configured cap (ARTC mode may
override the cap around a starved thread -- that overshoot is reported,
not capped), retirement fires (``retired > 0``), and the resident
reducer state ends far below the action count.  Results land in
``benchmarks/results/stream.txt`` and ``BENCH_stream.json`` at the
repo root.

Knobs: ``ARTC_STREAM_BENCH_APP`` (default ``iphoto_import400``),
``ARTC_STREAM_BENCH_WINDOW`` (window cap, default 2048),
``ARTC_STREAM_BENCH_CHUNKS`` (producer chunk count, default 64).
"""

import json
import os
import shutil
import tempfile
import threading
import time

from conftest import once

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.bench.parallel import BENCH_FORMAT_VERSION, atomic_write_text
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.stream.digest import stream_digest_of
from repro.stream.follow import follow_replay, ingest_trace
from repro.verify.abstract import fs_digest
from repro.workloads.magritte import build_suite

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

APP_NAME = os.environ.get("ARTC_STREAM_BENCH_APP", "iphoto_import400")
WINDOW = int(os.environ.get("ARTC_STREAM_BENCH_WINDOW", "2048"))
CHUNKS = int(os.environ.get("ARTC_STREAM_BENCH_CHUNKS", "64"))
PLATFORM = "hdd-ext4"


def _write_staggered(data, path, chunks, sleep):
    """Producer thread body: append ``data`` in mid-line chunks."""
    pos = 0
    step = max(1, len(data) // chunks)
    while pos < len(data):
        nxt = min(len(data), pos + step + (pos % 13))
        with open(path, "ab") as handle:
            handle.write(data[pos:nxt])
        pos = nxt
        time.sleep(sleep)
    with open(path + ".done", "w"):
        pass


def _follow_row(traced, trace_path, batch, mode, window, source):
    """One live-follow run; returns (identical-to-batch, counters)."""
    fs = source.make_fs(seed=0)
    initialize(fs, traced.snapshot)
    started = time.perf_counter()
    report, status = follow_replay(
        trace_path, fs, ReplayConfig(mode=mode),
        snapshot=traced.snapshot, window=window, poll=0.001,
    )
    seconds = time.perf_counter() - started
    bench_report, bench_fs_digest = batch[mode]
    identical = (
        [(r.idx, r.ret, r.err) for r in report.results]
        == [(r.idx, r.ret, r.err) for r in bench_report.results]
        and report.elapsed == bench_report.elapsed
        and fs_digest(fs) == bench_fs_digest
    )
    return {
        "mode": mode,
        "seconds": seconds,
        "identical": identical,
        "stream": status.to_dict(),
    }


def run_bench():
    app = build_suite([APP_NAME])[APP_NAME]
    source = PLATFORMS[PLATFORM]
    traced = trace_application(app, source, seed=0)

    started = time.perf_counter()
    bench = compile_trace(traced.trace, traced.snapshot)
    batch_compile_seconds = time.perf_counter() - started
    batch_digest = stream_digest_of(bench)

    batch = {}
    batch_replay_seconds = {}
    for mode in (ReplayMode.ARTC, ReplayMode.SINGLE):
        fs = source.make_fs(seed=0)
        initialize(fs, traced.snapshot)
        started = time.perf_counter()
        report = replay(bench, fs, ReplayConfig(mode=mode))
        batch_replay_seconds[mode] = time.perf_counter() - started
        batch[mode] = (report, fs_digest(fs))

    root = tempfile.mkdtemp(prefix="artc-bench-stream-")
    try:
        finished = os.path.join(root, "trace.json")
        traced.trace.save(finished)
        with open(finished + ".done", "w"):
            pass
        data = open(finished, "rb").read()

        # Streamed ingest of the finished file: pure compile path.
        started = time.perf_counter()
        result = ingest_trace(finished, snapshot=traced.snapshot)
        ingest_seconds = time.perf_counter() - started
        assert result.finished and result.digest == batch_digest

        # Live follow against a staggered producer, per mode.
        rows = []
        for mode in (ReplayMode.ARTC, ReplayMode.SINGLE):
            growing = os.path.join(root, "grow-%s.json" % mode)
            writer = threading.Thread(
                target=_write_staggered, args=(data, growing, CHUNKS, 0.002)
            )
            writer.start()
            try:
                rows.append(
                    _follow_row(traced, growing, batch, mode, WINDOW, source)
                )
            finally:
                writer.join()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    for row in rows:
        stream = row["stream"]
        assert row["identical"], row["mode"]
        assert stream["retired"] > 0, stream
        assert stream["live_vectors"] < len(bench) // 4, stream
        if row["mode"] == ReplayMode.SINGLE:
            # No starved-thread cap overrides in single mode: the
            # window invariant holds exactly.
            assert stream["window_high_water"] <= WINDOW, stream

    return {
        "bench_format_version": BENCH_FORMAT_VERSION,
        "app": APP_NAME,
        "platform": PLATFORM,
        "actions": len(bench),
        "window_cap": WINDOW,
        "producer_chunks": CHUNKS,
        "batch_compile_seconds": batch_compile_seconds,
        "ingest": {
            "seconds": ingest_seconds,
            "actions_per_sec": len(bench) / ingest_seconds,
            "digest_match": True,
        },
        "follow": [
            {
                "mode": row["mode"],
                "seconds": row["seconds"],
                "batch_replay_seconds": batch_replay_seconds[row["mode"]],
                "identical": row["identical"],
                "window_high_water": row["stream"]["window_high_water"],
                "retired": row["stream"]["retired"],
                "live_vectors": row["stream"]["live_vectors"],
                "backpressure_pauses": row["stream"]["backpressure_pauses"],
                "cap_overrides": row["stream"]["cap_overrides"],
                "producer_waits": row["stream"]["producer_waits"],
                "resyncs": row["stream"]["resyncs"],
            }
            for row in rows
        ],
    }


def test_stream_throughput(benchmark, emit):
    payload = once(benchmark, run_bench)

    atomic_write_text(
        os.path.join(REPO_ROOT, "BENCH_stream.json"),
        json.dumps(payload, indent=2) + "\n",
    )

    table = []
    for row in payload["follow"]:
        table.append([
            row["mode"],
            "%.2fs" % row["seconds"],
            "%.2fs" % row["batch_replay_seconds"],
            "%d/%d" % (row["window_high_water"], payload["window_cap"]),
            row["retired"],
            row["live_vectors"],
            "yes" if row["identical"] else "NO",
        ])
    emit(
        "stream",
        format_table(
            ["Mode", "Follow", "Batch replay", "Window hw/cap",
             "Retired", "Live vectors", "Identical"],
            table,
            title=(
                "streamed ingest %.0f actions/sec (batch compile %.2fs, "
                "%s: %d actions)"
                % (payload["ingest"]["actions_per_sec"],
                   payload["batch_compile_seconds"],
                   payload["app"], payload["actions"])
            ),
        ),
    )
