"""Figure 10: Magritte thread-time breakdown, HDD vs SSD.

Replay the Magritte suite (ARTC mode) on a disk-backed and an
SSD-backed target, and break each application family's thread-time down
by system-call category.  Expected shape: large thread-time speedups on
the SSD; on disk, iPhoto/iTunes dominated by fsync, Numbers/Keynote by
reads and stat-family calls; fsync's share shrinks dramatically on the
SSD.
"""

from collections import defaultdict

from conftest import once, run_bench_cells

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.parallel import Cell
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite, suite_names

CATEGORIES = ["read", "write", "fsync", "stat", "meta", "open", "other"]


def _bucket(category):
    return category if category in CATEGORIES else "other"


def fig10_cell(app_name, targets=("hdd-ext4", "ssd"), seed=300):
    """One Magritte trace: ARTC replay on each target, thread-time
    broken down by syscall category."""
    app = build_suite([app_name])[app_name]
    traced = trace_application(app, PLATFORMS["mac-hdd"])
    bench = compile_trace(traced.trace, traced.snapshot)
    per_target = {}
    for target in targets:
        report = replay_benchmark(
            bench, PLATFORMS[target], ReplayMode.ARTC, seed=seed
        )
        per_target[target] = report.thread_time_by_category()
    return per_target


def test_fig10_thread_time_breakdown(benchmark, emit):
    names = suite_names()

    def run():
        cells = [Cell(fig10_cell, {"app_name": name}) for name in names]
        return dict(zip(names, run_bench_cells(cells)))

    results = once(benchmark, run)

    # Aggregate per family for the table.
    family_totals = defaultdict(lambda: {"hdd-ext4": defaultdict(float), "ssd": defaultdict(float)})
    for name, per_target in results.items():
        family = name.split("_")[0]
        for target, categories in per_target.items():
            for category, seconds in categories.items():
                family_totals[family][target][_bucket(category)] += seconds

    rows = []
    speedups = {}
    for family, targets in sorted(family_totals.items()):
        hdd_total = sum(targets["hdd-ext4"].values())
        ssd_total = sum(targets["ssd"].values())
        speedups[family] = hdd_total / ssd_total if ssd_total else 0.0
        row = [family, "%.2f" % hdd_total, "%.3f" % ssd_total, "%.1fx" % speedups[family]]
        for category in CATEGORIES:
            share = targets["hdd-ext4"][category] / hdd_total if hdd_total else 0
            row.append("%.0f%%" % (100 * share))
        rows.append(row)
    emit(
        "fig10",
        format_table(
            ["Family", "HDD thr-time(s)", "SSD thr-time(s)", "speedup"]
            + ["%s(hdd)" % c for c in CATEGORIES],
            rows,
            title="Figure 10: Magritte thread-time by category, HDD vs SSD (ARTC replay)",
        ),
    )

    # SSD thread-time speedups are large for every family.
    for family, speedup in speedups.items():
        assert speedup > 3.0, (family, speedup)
    # iPhoto and iTunes are fsync-dominated on disk...
    for family in ("iphoto", "itunes"):
        shares = family_totals[family]["hdd-ext4"]
        assert shares["fsync"] == max(shares.values()), family
    # ...and fsync's share collapses on the SSD.
    for family in ("iphoto", "itunes"):
        hdd = family_totals[family]["hdd-ext4"]
        ssd = family_totals[family]["ssd"]
        hdd_share = hdd["fsync"] / sum(hdd.values())
        ssd_share = ssd["fsync"] / sum(ssd.values())
        assert ssd_share < hdd_share, family
    # Numbers/Keynote lean on reads + stat-family calls instead.
    for family in ("numbers", "keynote"):
        shares = family_totals[family]["hdd-ext4"]
        assert shares["read"] + shares["stat"] + shares["meta"] > shares["fsync"]
