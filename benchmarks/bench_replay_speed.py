"""Replay-core throughput: event machinery vs scoreboard vs JIT.

The scoreboard core replaces per-action Event objects (one allocation,
one waiter list, one broadcast each) with integer pending-predecessor
counters and a single reusable per-thread gate; the JIT core
(``core="jit"``) then specializes the benchmark's execution-plan IR
into per-thread straight-line generated Python (see
:mod:`repro.artc.codegen`).  This bench measures what each buys in
actions/second, per replay mode, on a Magritte sample -- and tracks
the repo's perf trajectory by writing ``BENCH_replay.json`` at the
repo root plus a packed ``BENCH_replay.artcb`` artifact next to it
(what the CI perf-smoke job uploads).

Methodology: wall-clock on a VM is noisy (vCPU speed drifts in
multi-minute epochs), so all cores are timed as *interleaved tuples*
within one process -- events, scoreboard, jit, events, scoreboard, jit
-- with GC disabled inside the timed region and a warm-up tuple first
(which also absorbs the JIT's one-time codegen).  Each reported ratio
is the median of per-tuple ratios, which cancels machine-speed epochs
that inflate or deflate all legs together.  Throughput figures are
medians across reps.

The shard core (``core="shard"``, forked workers over a
resource-partitioned plan) rides along in ARTC mode only: its workers
replay wall-clock-concurrently, so it is timed like any other core but
checked *semantically* -- failures, warning volume, and the canonical
final-state digest must match the baseline; simulated timing follows
the partitioned-clock model and is out of scope.  On a single-CPU host
the forked workers time-slice one core, so ``shard_over_jit`` below
1.0 is the expected honest reading there; the recorded ``cpus`` field
says which regime a given artifact was measured in.

Knobs (CI runs a small trace): ``ARTC_REPLAY_BENCH_APP`` (default
``iphoto_import400``, the largest Magritte sample),
``ARTC_REPLAY_BENCH_REPS`` (default 5 timed tuples),
``ARTC_REPLAY_BENCH_CORES`` (default ``events,scoreboard,jit,shard``;
the first core is the ratio baseline), ``ARTC_REPLAY_BENCH_JOBS``
(default 4: worker processes for the shard core),
``ARTC_REPLAY_BENCH_MIN_RATIO`` (default 1.0: the scoreboard must not
be slower than the event core in ARTC mode),
``ARTC_REPLAY_BENCH_MIN_JIT_RATIO`` (default 1.0: the JIT must not be
slower than the scoreboard), and ``ARTC_REPLAY_BENCH_MIN_SHARD_RATIO``
(default 0.0, i.e. advisory: the shard-over-jit floor; raise it on
multi-core CI runners).
"""

import gc
import json
import os
import sys
import time

from conftest import once

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.bench.parallel import BENCH_FORMAT_VERSION, atomic_write_text
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

APP_NAME = os.environ.get("ARTC_REPLAY_BENCH_APP", "iphoto_import400")
REPS = int(os.environ.get("ARTC_REPLAY_BENCH_REPS", "5"))
CORES = tuple(
    core.strip()
    for core in os.environ.get(
        "ARTC_REPLAY_BENCH_CORES", "events,scoreboard,jit,shard"
    ).split(",")
    if core.strip()
)
JOBS = int(os.environ.get("ARTC_REPLAY_BENCH_JOBS", "4"))
MIN_RATIO = float(os.environ.get("ARTC_REPLAY_BENCH_MIN_RATIO", "1.0"))
MIN_JIT_RATIO = float(os.environ.get("ARTC_REPLAY_BENCH_MIN_JIT_RATIO", "1.0"))
MIN_SHARD_RATIO = float(
    os.environ.get("ARTC_REPLAY_BENCH_MIN_SHARD_RATIO", "0.0")
)
PLATFORM = "hdd-ext4"

_SINGLE_PROCESS = tuple(core for core in CORES if core != "shard")

#: (mode, cores to time).  The fast cores do not support temporal
#: replay (wall-clock pacing needs the event machinery), so that row
#: times the event core only; multi-process sharding supports ARTC
#: mode only, so the shard core appears in that row alone.
MODES = [
    (ReplayMode.ARTC, CORES),
    (ReplayMode.SINGLE, _SINGLE_PROCESS),
    (ReplayMode.UNCONSTRAINED, _SINGLE_PROCESS),
    (ReplayMode.TEMPORAL, ("events",)),
]


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _timed_replay(bench, platform, mode, core):
    """One replay on a fresh target, GC quiesced around the timing."""
    fs = platform.make_fs(seed=11)
    if bench.snapshot is not None:
        initialize(fs, bench.snapshot)
    fs.stack.drop_caches()
    jobs = JOBS if core == "shard" else 1
    config = ReplayConfig(mode=mode, core=core, jobs=jobs)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        report = replay(bench, fs, config)
        seconds = time.perf_counter() - started
    finally:
        gc.enable()
    return report, seconds, fs


def measure_mode(bench, platform, mode, cores, reps):
    """Interleaved tuple reps of every core; medians + paired ratios
    of every non-baseline core against the first (baseline) core."""
    seconds = {core: [] for core in cores}
    reports = {}
    targets = {}
    for rep in range(reps + 1):  # rep 0 is the warm-up tuple
        for core in cores:
            report, elapsed, fs = _timed_replay(bench, platform, mode, core)
            reports[core] = report
            targets[core] = fs
            if rep:
                seconds[core].append(elapsed)
    baseline = cores[0]
    for core in cores[1:]:
        # Every core must produce the same replay, not just similar
        # timing -- the fast cores are optimizations, not modes.  The
        # shard core's workers run on partitioned simulated clocks, so
        # for it the contract is semantic: same failures, same warning
        # volume, byte-identical final state.
        ref, fast = reports[baseline], reports[core]
        if core != "shard":
            assert fast.elapsed == ref.elapsed, core
        assert fast.failures == ref.failures, core
        assert len(fast.warnings) == len(ref.warnings), core
    if "shard" in cores:
        from repro.verify.abstract import fs_digest

        assert fs_digest(targets["shard"]) == fs_digest(targets[baseline]), (
            "shard core final state diverged from %s" % baseline
        )
    row = {
        "mode": str(mode),
        "cores": {
            core: {
                "actions_per_sec": _median(len(bench) / s for s in seconds[core]),
                "best_actions_per_sec": len(bench) / min(seconds[core]),
                "median_seconds": _median(seconds[core]),
            }
            for core in cores
        },
    }
    for core in cores[1:]:
        row["cores"][core]["ratio_median"] = _median(
            seconds[baseline][i] / seconds[core][i] for i in range(reps)
        )
    if "scoreboard" in cores:
        # Back-compat alias: the scoreboard-over-baseline ratio under
        # the original (pre-jit) key.
        row["ratio_median"] = row["cores"]["scoreboard"]["ratio_median"]
    if "scoreboard" in cores and "jit" in cores:
        row["jit_over_scoreboard"] = _median(
            seconds["scoreboard"][i] / seconds["jit"][i] for i in range(reps)
        )
    if "jit" in cores and "shard" in cores:
        row["shard_over_jit"] = _median(
            seconds["jit"][i] / seconds["shard"][i] for i in range(reps)
        )
        stats = getattr(reports["shard"], "shard_stats", None)
        if stats:
            row["shard_plan"] = {
                "jobs": JOBS,
                "shards": stats.get("shards"),
                "cross_edges": stats.get("cross_edges"),
                "cut_fraction": stats.get("cut_fraction"),
                "actions_per_shard": stats.get("actions_per_shard"),
            }
    return row


def run_bench():
    app = build_suite([APP_NAME])[APP_NAME]
    source = PLATFORMS[PLATFORM]
    traced = trace_application(app, source, seed=0)
    bench = compile_trace(traced.trace, traced.snapshot)
    rows = [
        measure_mode(bench, source, mode, cores, REPS)
        for mode, cores in MODES
    ]
    return bench, {
        "bench_format_version": BENCH_FORMAT_VERSION,
        "app": APP_NAME,
        "platform": PLATFORM,
        "actions": len(bench),
        "reps": REPS,
        "cores": list(CORES),
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "python": sys.version.split()[0],
        "modes": rows,
    }


def test_replay_speed(benchmark, emit):
    bench, payload = once(benchmark, run_bench)

    # The perf trajectory artifacts: numbers at the repo root, plus the
    # packed benchmark they were measured on.
    atomic_write_text(
        os.path.join(REPO_ROOT, "BENCH_replay.json"),
        json.dumps(payload, indent=2) + "\n",
    )
    bench.save(os.path.join(REPO_ROOT, "BENCH_replay.artcb"))

    baseline = CORES[0]
    table = []
    for row in payload["modes"]:
        cores = row["cores"]
        cells = [row["mode"]]
        for core in CORES:
            stats = cores.get(core)
            cells.append(
                "%.0f" % stats["actions_per_sec"] if stats else "(unsupported)"
            )
            if core != baseline:
                cells.append(
                    "%.2fx" % stats["ratio_median"] if stats else "-"
                )
        table.append(cells)
    headers = ["Mode"]
    for core in CORES:
        headers.append("%s a/s" % core)
        if core != baseline:
            headers.append("%s/%s" % (core, baseline[:2]))
    emit(
        "replay_speed",
        format_table(
            headers,
            table,
            title=(
                "Replay throughput, %s on %s (%d actions, %d interleaved reps)"
                % (APP_NAME, PLATFORM, payload["actions"], REPS)
            ),
        ),
    )

    artc_row = payload["modes"][0]
    assert artc_row["mode"] == str(ReplayMode.ARTC)
    if "ratio_median" in artc_row:
        assert artc_row["ratio_median"] >= MIN_RATIO, (
            "scoreboard slower than event core in ARTC mode: median ratio %.3f"
            % artc_row["ratio_median"]
        )
    if "jit_over_scoreboard" in artc_row:
        assert artc_row["jit_over_scoreboard"] >= MIN_JIT_RATIO, (
            "jit slower than scoreboard in ARTC mode: median ratio %.3f "
            "(jit %.0f a/s, scoreboard %.0f a/s)"
            % (
                artc_row["jit_over_scoreboard"],
                artc_row["cores"]["jit"]["actions_per_sec"],
                artc_row["cores"]["scoreboard"]["actions_per_sec"],
            )
        )
    if "shard_over_jit" in artc_row:
        # Advisory by default (floor 0.0): on a single-CPU host the
        # forked workers time-slice one core and the honest ratio is
        # below 1.0.  Multi-core CI runners should raise the floor.
        assert artc_row["shard_over_jit"] >= MIN_SHARD_RATIO, (
            "shard core below the configured floor at --jobs %d: median "
            "ratio %.3f < %.3f (shard %.0f a/s, jit %.0f a/s, %s CPUs)"
            % (
                JOBS,
                artc_row["shard_over_jit"],
                MIN_SHARD_RATIO,
                artc_row["cores"]["shard"]["actions_per_sec"],
                artc_row["cores"]["jit"]["actions_per_sec"],
                os.cpu_count(),
            )
        )
