"""Replay-core throughput: event machinery vs the scoreboard.

The scoreboard core replaces per-action Event objects (one allocation,
one waiter list, one broadcast each) with integer pending-predecessor
counters and a single reusable per-thread gate.  This bench measures
what that buys in actions/second, per replay mode, on a Magritte
sample -- and starts the repo's perf trajectory by writing
``BENCH_replay.json`` at the repo root plus a packed
``BENCH_replay.artcb`` artifact next to it (what the CI perf-smoke job
uploads).

Methodology: wall-clock on a VM is noisy (vCPU speed drifts in
multi-minute epochs), so the two cores are timed as *interleaved
pairs* within one process -- events, scoreboard, events, scoreboard --
with GC disabled inside the timed region and a warm-up pair first.
The reported ratio is the median of per-pair ratios, which cancels
machine-speed epochs that inflate or deflate both legs together.
Throughput figures are medians across reps.

Knobs (CI runs a small trace): ``ARTC_REPLAY_BENCH_APP`` (default
``iphoto_import400``, the largest Magritte sample),
``ARTC_REPLAY_BENCH_REPS`` (default 5 timed pairs), and
``ARTC_REPLAY_BENCH_MIN_RATIO`` (default 1.0: the scoreboard must not
be slower than the event core in ARTC mode).
"""

import gc
import json
import os
import sys
import time

from conftest import once

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.bench.parallel import BENCH_FORMAT_VERSION, atomic_write_text
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

APP_NAME = os.environ.get("ARTC_REPLAY_BENCH_APP", "iphoto_import400")
REPS = int(os.environ.get("ARTC_REPLAY_BENCH_REPS", "5"))
MIN_RATIO = float(os.environ.get("ARTC_REPLAY_BENCH_MIN_RATIO", "1.0"))
PLATFORM = "hdd-ext4"

#: (mode, cores to time).  The scoreboard does not support temporal
#: replay (wall-clock pacing needs the event machinery), so that row
#: times the event core only.
MODES = [
    (ReplayMode.ARTC, ("events", "scoreboard")),
    (ReplayMode.SINGLE, ("events", "scoreboard")),
    (ReplayMode.UNCONSTRAINED, ("events", "scoreboard")),
    (ReplayMode.TEMPORAL, ("events",)),
]


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _timed_replay(bench, platform, mode, core):
    """One replay on a fresh target, GC quiesced around the timing."""
    fs = platform.make_fs(seed=11)
    if bench.snapshot is not None:
        initialize(fs, bench.snapshot)
    fs.stack.drop_caches()
    config = ReplayConfig(mode=mode, core=core)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        report = replay(bench, fs, config)
        seconds = time.perf_counter() - started
    finally:
        gc.enable()
    return report, seconds


def measure_mode(bench, platform, mode, cores, reps):
    """Interleaved paired reps of every core; medians + per-pair ratio."""
    seconds = {core: [] for core in cores}
    reports = {}
    for rep in range(reps + 1):  # rep 0 is the warm-up pair
        for core in cores:
            report, elapsed = _timed_replay(bench, platform, mode, core)
            reports[core] = report
            if rep:
                seconds[core].append(elapsed)
    if len(cores) == 2:
        # Both cores must produce the same replay, not just similar
        # timing -- the scoreboard is an optimization, not a mode.
        ev, sb = reports[cores[0]], reports[cores[1]]
        assert sb.elapsed == ev.elapsed
        assert sb.failures == ev.failures
        assert len(sb.warnings) == len(ev.warnings)
    row = {
        "mode": str(mode),
        "cores": {
            core: {
                "actions_per_sec": _median(len(bench) / s for s in seconds[core]),
                "best_actions_per_sec": len(bench) / min(seconds[core]),
                "median_seconds": _median(seconds[core]),
            }
            for core in cores
        },
    }
    if len(cores) == 2:
        row["ratio_median"] = _median(
            seconds[cores[0]][i] / seconds[cores[1]][i] for i in range(reps)
        )
    return row


def run_bench():
    app = build_suite([APP_NAME])[APP_NAME]
    source = PLATFORMS[PLATFORM]
    traced = trace_application(app, source, seed=0)
    bench = compile_trace(traced.trace, traced.snapshot)
    rows = [
        measure_mode(bench, source, mode, cores, REPS)
        for mode, cores in MODES
    ]
    return bench, {
        "bench_format_version": BENCH_FORMAT_VERSION,
        "app": APP_NAME,
        "platform": PLATFORM,
        "actions": len(bench),
        "reps": REPS,
        "python": sys.version.split()[0],
        "modes": rows,
    }


def test_replay_speed(benchmark, emit):
    bench, payload = once(benchmark, run_bench)

    # The perf trajectory artifacts: numbers at the repo root, plus the
    # packed benchmark they were measured on.
    atomic_write_text(
        os.path.join(REPO_ROOT, "BENCH_replay.json"),
        json.dumps(payload, indent=2) + "\n",
    )
    bench.save(os.path.join(REPO_ROOT, "BENCH_replay.artcb"))

    table = []
    for row in payload["modes"]:
        cores = row["cores"]
        ev = cores.get("events")
        sb = cores.get("scoreboard")
        table.append([
            row["mode"],
            "%.0f" % ev["actions_per_sec"],
            "%.0f" % sb["actions_per_sec"] if sb else "(unsupported)",
            "%.2fx" % row["ratio_median"] if sb else "-",
        ])
    emit(
        "replay_speed",
        format_table(
            ["Mode", "events a/s", "scoreboard a/s", "sb/ev (median of pairs)"],
            table,
            title=(
                "Replay throughput, %s on %s (%d actions, %d paired reps)"
                % (APP_NAME, PLATFORM, payload["actions"], REPS)
            ),
        ),
    )

    artc_row = payload["modes"][0]
    assert artc_row["mode"] == str(ReplayMode.ARTC)
    assert artc_row["ratio_median"] >= MIN_RATIO, (
        "scoreboard slower than event core in ARTC mode: median ratio %.3f"
        % artc_row["ratio_median"]
    )
