"""Compile + replay wall-clock on a large synthetic churn trace.

A 20k+-action trace with heavy delete/rename churn is the edge
reduction pass's stress case: every unlink of a hot shared file drags
in a dependency on each prior cross-thread use, so the raw graph
carries tens of thousands of edges of which only a thin skeleton is
load-bearing.  This bench compiles the trace with and without the
reduction pass and replays over ``preds`` vs ``reduced_preds``,
reporting wall-clock for both paths -- and asserting the two replays
produce identical reports, since the reduction must never change
replay semantics.
"""

import time

from conftest import once

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS

NTHREADS = 8
CYCLES = 50          # per thread: churn cycles over the shared pool
READS_PER_CYCLE = 20  # shared-file uses between deletes (fan-in size)
POOL = ["/churn/f%d" % i for i in range(6)]


def _churn_thread(osapi, tid, rng_seed):
    import random

    rng = random.Random(rng_seed)
    for _cycle in range(CYCLES):
        path = rng.choice(POOL)
        # Recreate the hot file (the O_CREAT open may race another
        # thread's unlink; both outcomes are valid trace content).
        fd, err = yield from osapi.call(
            tid, "open", path=path, flags="O_WRONLY|O_CREAT"
        )
        if err is None:
            yield from osapi.call(tid, "write", fd=fd, nbytes=4096)
            yield from osapi.call(tid, "close", fd=fd)
        # Many uses: the delete fan-in the watermark collapses.
        for _read in range(READS_PER_CYCLE):
            target = rng.choice(POOL)
            fd, err = yield from osapi.call(
                tid, "open", path=target, flags="O_RDONLY"
            )
            if err is None:
                yield from osapi.call(tid, "read", fd=fd, nbytes=1024)
                yield from osapi.call(tid, "close", fd=fd)
        roll = rng.random()
        victim = rng.choice(POOL)
        if roll < 0.5:
            yield from osapi.call(tid, "unlink", path=victim)
        else:
            yield from osapi.call(
                tid, "rename", old=victim, new=victim + ".tmp"
            )
            yield from osapi.call(
                tid, "rename", old=victim + ".tmp", new=victim
            )


def build_churn_trace(seed=7):
    fs = PLATFORMS["ssd"].make_fs(seed=seed)
    fs.makedirs_now("/churn")
    for path in POOL:
        fs.create_file_now(path, size=64 << 10)
    snapshot = Snapshot.capture(fs, roots=("/churn",), label="churn")
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label="churn", platform="linux")
    for tid in range(1, NTHREADS + 1):
        fs.engine.spawn(_churn_thread(osapi, tid, seed * 1000 + tid))
    fs.engine.run()
    return trace, snapshot


def _timed_replay(bench, snapshot, reduced, rounds=3):
    """Best-of-``rounds`` wall-clock (standard for noisy wall timing);
    the report is identical across rounds -- the simulator is
    deterministic."""
    best = None
    report = None
    config = ReplayConfig(mode=ReplayMode.ARTC, reduced_deps=reduced)
    for _ in range(rounds):
        fs = PLATFORMS["ssd"].make_fs(seed=11)
        initialize(fs, snapshot)
        started = time.perf_counter()
        report = replay(bench, fs, config)
        seconds = time.perf_counter() - started
        best = seconds if best is None else min(best, seconds)
    return report, best


def _timed_compile(trace, snapshot, reduce, rounds=2):
    best = None
    bench = None
    for _ in range(rounds):
        started = time.perf_counter()
        bench = compile_trace(trace, snapshot, reduce=reduce)
        seconds = time.perf_counter() - started
        best = seconds if best is None else min(best, seconds)
    return bench, best


def test_compile_speed_churn(benchmark, emit):
    def run():
        trace, snapshot = build_churn_trace()
        plain, compile_before = _timed_compile(trace, snapshot, False)
        reduced, compile_after = _timed_compile(trace, snapshot, True)
        full_report, replay_before = _timed_replay(reduced, snapshot, False)
        fast_report, replay_after = _timed_replay(reduced, snapshot, True)
        # The fast path must be semantically invisible.
        assert fast_report.elapsed == full_report.elapsed
        assert fast_report.failures == full_report.failures
        assert len(fast_report.warnings) == len(full_report.warnings)
        return {
            "events": len(trace),
            "n_edges": reduced.stats["n_edges"],
            "n_edges_reduced": reduced.stats["n_edges_reduced"],
            "edges_removed": reduced.stats["edges_removed"],
            "compile_before": compile_before,
            "compile_after": compile_after,
            "replay_before": replay_before,
            "replay_after": replay_after,
            "plain_edges": plain.stats["n_edges"],
        }

    r = once(benchmark, run)
    removed_pct = 100.0 * r["edges_removed"] / r["n_edges"]
    rows = [
        ["compile", "%.3f s" % r["compile_before"], "%.3f s" % r["compile_after"],
         "reduction pass included after"],
        ["replay (AFAP)", "%.3f s" % r["replay_before"], "%.3f s" % r["replay_after"],
         "%.1fx" % (r["replay_before"] / r["replay_after"]
                    if r["replay_after"] else 0.0)],
        ["compile+replay",
         "%.3f s" % (r["compile_before"] + r["replay_before"]),
         "%.3f s" % (r["compile_after"] + r["replay_after"]),
         "%.1fx" % ((r["compile_before"] + r["replay_before"])
                    / (r["compile_after"] + r["replay_after"]))],
    ]
    emit(
        "compile_speed",
        format_table(
            ["Stage", "Before reduction", "After reduction", "Note"],
            rows,
            title=(
                "Compile+replay on the synthetic churn trace: %d events, "
                "%d edges -> %d waited on (%d removed, %.1f%%)"
                % (r["events"], r["n_edges"], r["n_edges_reduced"],
                   r["edges_removed"], removed_pct)
            ),
        ),
    )
    assert r["events"] >= 20_000
    assert r["n_edges"] == r["plain_edges"]  # accounting unchanged
    assert removed_pct >= 20.0
