"""Ablation: timing modes and emulation options.

- Predelay handling (AFAP vs natural-speed vs scaled) on a think-time
  workload: AFAP compresses the gaps, natural-speed reproduces them
  (section 4.3.3).
- fsync emulation semantics when replaying Darwin traces on Linux:
  durable fsync vs cheap flush (section 4.3.4).
"""

import random

from conftest import once

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.syscalls.emulation import EmulationOptions
from repro.workloads.base import Application, must


class ThinkTimeWorkload(Application):
    """Reads separated by genuine computation (predelay)."""

    name = "thinktime"

    def __init__(self, nreads=60, think=0.01):
        self.nreads = nreads
        self.think = think

    def setup(self, fs):
        fs.makedirs_now("/data")
        fs.create_file_now("/data/input", size=64 << 20)

    def main(self, osapi):
        from repro.sim.events import Delay

        def body(tid=1):
            fd = must(
                (
                    yield from osapi.call(
                        tid, "open", path="/data/input", flags="O_RDONLY"
                    )
                )
            )
            rng = random.Random(3)
            for _ in range(self.nreads):
                yield Delay(self.think)  # compute between calls
                offset = rng.randrange(16000) * 4096
                yield from osapi.call(tid, "pread", fd=fd, nbytes=4096, offset=offset)
            yield from osapi.call(tid, "close", fd=fd)

        return (yield from self.spawn_threads(osapi, [body()]))


class FsyncHeavyDarwinApp(Application):
    """Darwin-style fsync traffic for the emulation ablation."""

    name = "darwinfsync"

    def setup(self, fs):
        fs.makedirs_now("/data")

    def main(self, osapi):
        def body(tid=1):
            fd = must(
                (
                    yield from osapi.call(
                        tid, "open", path="/data/out", flags="O_WRONLY|O_CREAT"
                    )
                )
            )
            for _ in range(40):
                yield from osapi.call(tid, "write", fd=fd, nbytes=8192)
                yield from osapi.call(tid, "fsync", fd=fd)
            yield from osapi.call(tid, "close", fd=fd)

        return (yield from self.spawn_threads(osapi, [body()]))


def test_ablation_predelay_modes(benchmark, emit):
    platform = PLATFORMS["hdd-ext4"]
    app = ThinkTimeWorkload()

    def run():
        traced = trace_application(app, platform)
        bench = compile_trace(traced.trace, traced.snapshot)
        out = {"original": traced.elapsed}
        for label, timing in (("afap", "afap"), ("natural", "natural"), ("x2", 2.0)):
            report = replay_benchmark(bench, platform, ReplayMode.ARTC, 300, timing)
            out[label] = report.elapsed
        return out

    results = once(benchmark, run)
    rows = [[label, "%.3fs" % value] for label, value in results.items()]
    emit(
        "ablation_predelay",
        format_table(["Run", "Elapsed"], rows, title="Ablation: predelay handling"),
    )
    # AFAP strips think time; natural-speed reproduces the original;
    # scaling doubles the gaps.
    assert results["afap"] < 0.6 * results["original"]
    assert abs(results["natural"] - results["original"]) < 0.2 * results["original"]
    assert results["x2"] > 1.4 * results["natural"]


def test_ablation_fsync_emulation(benchmark, emit):
    source = PLATFORMS["mac-hdd"]
    target = PLATFORMS["hdd-ext4"]
    app = FsyncHeavyDarwinApp()

    def run():
        traced = trace_application(app, source)
        bench = compile_trace(traced.trace, traced.snapshot)
        out = {}
        for label, mode in (("durable", "durable"), ("flush", "flush")):
            report = replay_benchmark(
                bench,
                target,
                ReplayMode.ARTC,
                seed=300,
                emulation=EmulationOptions(fsync_mode=mode),
            )
            out[label] = report.elapsed
        return out

    results = once(benchmark, run)
    rows = [[label, "%.4fs" % value] for label, value in results.items()]
    emit(
        "ablation_fsync",
        format_table(
            ["fsync emulation", "Replay time"],
            rows,
            title="Ablation: Darwin-fsync emulation semantics on Linux",
        ),
    )
    # Durable fsync emulation must cost more than flush-only.
    assert results["durable"] > results["flush"]
