"""Initialization strategies (paper section 4.3.2).

"Because initialization may take much longer than the actual replay of
some traces, ARTC can perform a *delta init* that is useful when most
of the init files are already in place."

Measured here with a Magritte snapshot: the timed cost of a
from-scratch initialization (real system calls), a delta
re-initialization after a replay perturbed a few files, and the replay
itself -- showing init >> replay for short traces, and delta << full.
"""

from conftest import once

from repro.artc.compiler import compile_trace
from repro.artc.init import delta_init, initialize, timed_initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.bench import PLATFORMS
from repro.bench.harness import trace_application
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.tracing.tracer import TracedOS
from repro.workloads.magritte import build_suite


def test_init_strategies(benchmark, emit):
    app = build_suite(["itunes_startsmall1"])["itunes_startsmall1"]
    source = PLATFORMS["mac-hdd"]
    target = PLATFORMS["hdd-ext4"]

    def run():
        traced = trace_application(app, source)
        bench = compile_trace(traced.trace, traced.snapshot)

        # Full timed initialization on a fresh target.
        fs = target.make_fs(seed=500)
        osapi = TracedOS(fs)
        start = fs.engine.now
        fs.engine.run_process(timed_initialize(osapi, traced.snapshot))
        full_init = fs.engine.now - start

        # Replay on that target.
        fs.stack.drop_caches()
        report = replay(bench, fs, ReplayConfig(mode=ReplayMode.ARTC))
        replay_time = report.elapsed

        # Delta re-init after the replay disturbed the tree: count the
        # touched entries rather than wall time (the instant helpers
        # carry no timing), plus a fresh-tree baseline for comparison.
        stats_delta = delta_init(fs, traced.snapshot)
        delta_changes = sum(stats_delta.as_dict().values())
        fs_fresh = target.make_fs(seed=501)
        stats_full = initialize(fs_fresh, traced.snapshot)
        full_changes = sum(stats_full.as_dict().values())
        return {
            "full_init_time": full_init,
            "replay_time": replay_time,
            "delta_changes": delta_changes,
            "full_changes": full_changes,
            "snapshot_entries": len(traced.snapshot),
        }

    result = once(benchmark, run)
    rows = [
        ["timed full init", "%.3fs" % result["full_init_time"],
         "%d entries" % result["snapshot_entries"]],
        ["trace replay (AFAP)", "%.3fs" % result["replay_time"], ""],
        ["full init operations", "", "%d changes" % result["full_changes"]],
        ["delta init operations", "", "%d changes" % result["delta_changes"]],
    ]
    emit(
        "init_strategies",
        format_table(
            ["Step", "Simulated time", "Work"],
            rows,
            title="Initialization: full vs delta (itunes_startsmall1)",
        ),
    )
    # Initialization is comparable to the replay itself for this short
    # trace (the paper: init "may take much longer than the actual
    # replay of some traces") -- worth eliminating on re-runs.
    assert result["full_init_time"] > 0.3 * result["replay_time"]
    # Delta re-init touches a small fraction of the tree.
    assert result["delta_changes"] < result["full_changes"] / 3
