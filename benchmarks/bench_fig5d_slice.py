"""Figure 5(d): I/O scheduler slice size.

Two threads stream separate large files with sequential 4 KB reads
while CFQ's ``slice_sync`` is set to 100 ms on one system and 1 ms on
the other.  Rigid replays reproduce the *source* system's scheduling
pattern at the application level, so they dramatically mispredict the
target; ARTC adapts in both directions.
"""

from conftest import once

from repro.bench import PLATFORMS
from repro.bench.harness import replay_matrix
from repro.bench.tables import format_table, percent
from repro.core.modes import ReplayMode
from repro.workloads import CompetingSequentialReaders

MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)


def test_fig5d_scheduler_slice(benchmark, emit):
    base = PLATFORMS["hdd-ext4"]
    slice_100ms = base.variant("slice100ms", scheduler_kwargs={"slice_sync": 0.100})
    slice_1ms = base.variant("slice1ms", scheduler_kwargs={"slice_sync": 0.001})

    def run():
        app = CompetingSequentialReaders(reads_per_thread=3000)
        return {
            "100ms->1ms": replay_matrix(app, slice_100ms, slice_1ms, modes=MODES),
            "1ms->100ms": replay_matrix(app, slice_1ms, slice_100ms, modes=MODES),
        }

    results = once(benchmark, run)
    rows = []
    for direction, res in results.items():
        row = [direction, "%.2fs" % res["original"]]
        for mode in MODES:
            m = res["modes"][mode]
            row.append("%.2fs (%s)" % (m["elapsed"], percent(m["signed_error"])))
        rows.append(row)
    emit(
        "fig5d",
        format_table(
            ["Direction", "Original", "Single-threaded", "Temporal", "ARTC"],
            rows,
            title="Figure 5(d): CFQ slice_sync (100ms <-> 1ms)",
        ),
    )
    shrink = results["100ms->1ms"]
    grow = results["1ms->100ms"]
    # Rigid replays overestimate performance (underestimate time) when
    # the slice shrinks, and the reverse when it grows.
    assert shrink["modes"][ReplayMode.SINGLE]["signed_error"] < -0.40
    assert shrink["modes"][ReplayMode.TEMPORAL]["signed_error"] < -0.40
    assert grow["modes"][ReplayMode.SINGLE]["signed_error"] > 0.80
    assert grow["modes"][ReplayMode.TEMPORAL]["signed_error"] > 0.80
    # ARTC is far more accurate in both directions.
    assert grow["modes"][ReplayMode.ARTC]["error"] < 0.25
    assert (
        shrink["modes"][ReplayMode.ARTC]["error"]
        < shrink["modes"][ReplayMode.TEMPORAL]["error"]
    )
