"""Figure 7: LevelDB macrobenchmarks across source/target combinations.

fillsync and readrandom (8 threads each) traced and replayed across
the full 7x7 platform matrix (ext4/ext3/JFS/XFS on disk, RAID-0,
small-cache, SSD).  Reports per-combination timings (7a) and the error
distribution with means per mode (7b).

Expected shape: fillsync is accurate for every mode (writers funnel
through the group-commit leader, so ordering flexibility does not
matter); for readrandom the rigid replays overestimate everywhere and
ARTC's errors are much smaller -- the paper's headline
10.6% (ARTC) vs 21.3% (temporal) vs 43.5% (single-threaded).
Absolute errors here run higher on extreme speed-ratio combinations
because the simulated workload is ~1000x smaller (see EXPERIMENTS.md).
"""

from conftest import once, run_bench_cells

from repro.bench import PLATFORMS
from repro.bench.harness import matrix_summary, replay_matrix
from repro.bench.parallel import Cell
from repro.bench.tables import cdf, format_table, percent, percentile
from repro.core.modes import ReplayMode
from repro.leveldb.apps import LevelDBFillSync, LevelDBReadRandom

MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)
TARGETS = ["hdd-ext4", "hdd-ext3", "hdd-xfs", "hdd-jfs", "raid0", "smallcache", "ssd"]


def leveldb_platform(name):
    """The paper's database is much larger than RAM; at our scale the
    equivalent is a ~30 MB database against a single-digit-MB cache."""
    cache = (3 << 20) if name == "smallcache" else (8 << 20)
    return PLATFORMS[name].variant(cache_bytes=cache)


# Module-level cell bodies: each is one independent source/target
# matrix run, picklable and content-hashable for the parallel harness.

def fillsync_cell(target, nthreads=8, ops_per_thread=30, seed=0):
    app = LevelDBFillSync(nthreads=nthreads, ops_per_thread=ops_per_thread)
    return matrix_summary(replay_matrix(
        app, leveldb_platform("hdd-ext4"), leveldb_platform(target),
        modes=MODES, seed=seed,
    ))


def readrandom_cell(source, target, nthreads=8, ops_per_thread=200,
                    nkeys=30000, seed=0):
    app = LevelDBReadRandom(
        nthreads=nthreads, ops_per_thread=ops_per_thread, nkeys=nkeys
    )
    return matrix_summary(replay_matrix(
        app, leveldb_platform(source), leveldb_platform(target),
        modes=MODES, seed=seed,
    ))


def test_fig7a_fillsync(benchmark, emit):
    def run():
        cells = [Cell(fillsync_cell, {"target": target}) for target in TARGETS]
        return dict(zip(TARGETS, run_bench_cells(cells)))

    results = once(benchmark, run)
    rows = []
    for target, res in results.items():
        row = ["hdd-ext4->%s" % target, "%.3fs" % res["original"]]
        for mode in MODES:
            m = res["modes"][mode]
            row.append("%.3fs (%s)" % (m["elapsed"], percent(m["signed_error"])))
        rows.append(row)
    emit(
        "fig7a_fillsync",
        format_table(
            ["Combination", "Original", "Single-threaded", "Temporal", "ARTC"],
            rows,
            title="Figure 7(a): LevelDB fillsync (all modes accurate)",
        ),
    )
    # fillsync: every replay mode is accurate on every combination.
    for target, res in results.items():
        for mode in MODES:
            assert res["modes"][mode]["error"] < 0.30, (target, mode)


def test_fig7_readrandom_matrix(benchmark, emit):
    pairs = [(source, target) for source in TARGETS for target in TARGETS]

    def run():
        cells = [
            Cell(readrandom_cell, {"source": source, "target": target})
            for source, target in pairs
        ]
        return dict(zip(pairs, run_bench_cells(cells)))

    results = once(benchmark, run)
    rows = []
    errors = {mode: [] for mode in MODES}
    for (source, target), res in results.items():
        row = ["%s->%s" % (source, target), "%.3fs" % res["original"]]
        for mode in MODES:
            m = res["modes"][mode]
            errors[mode].append(m["error"])
            row.append("%.3fs (%s)" % (m["elapsed"], percent(m["signed_error"])))
        rows.append(row)
    table_a = format_table(
        ["Combination", "Original", "Single-threaded", "Temporal", "ARTC"],
        rows,
        title="Figure 7(a): LevelDB readrandom, every source/target combination",
    )

    summary_rows = []
    for mode in MODES:
        values = errors[mode]
        mean = sum(values) / len(values)
        worst10 = sorted(values)[-max(1, len(values) // 10):]
        summary_rows.append(
            [
                mode,
                "%.1f%%" % (mean * 100),
                "%.1f%%" % (100 * sum(worst10) / len(worst10)),
                "%.1f%%" % (percentile(values, 0.5) * 100),
            ]
        )
    table_b = format_table(
        ["Mode", "Mean error", "Worst-10% mean", "Median"],
        summary_rows,
        title="Figure 7(b): timing-error distribution over %d replays per mode"
        % len(errors[ReplayMode.ARTC]),
    )
    cdf_lines = ["Figure 7(b) CDF points (error, fraction):"]
    for mode in MODES:
        points = cdf(errors[mode])
        sampled = points[:: max(1, len(points) // 10)]
        cdf_lines.append(
            "  %-20s %s"
            % (mode, " ".join("(%.2f,%.2f)" % (v, f) for v, f in sampled))
        )
    emit("fig7", table_a + "\n\n" + table_b + "\n\n" + "\n".join(cdf_lines))

    mean = {m: sum(errors[m]) / len(errors[m]) for m in MODES}
    # The paper's ordering: ARTC < temporal < single-threaded, with
    # ARTC's mean roughly half of temporal's or better.
    assert mean[ReplayMode.ARTC] < mean[ReplayMode.TEMPORAL] < mean[ReplayMode.SINGLE]
    assert mean[ReplayMode.ARTC] < 0.75 * mean[ReplayMode.SINGLE]
