"""Robustness matrix: replay degradation vs. injected fault rate.

Sweeps a seeded read-EIO + latency-spike plan over the replay modes,
classic replayer vs. hardened (transient-EIO retry + graceful
degradation).  The classic replayer's semantic failures grow with the
fault rate; the hardened replayer retries transient EIO away and its
extra failures stay near zero while paying only the backoff time.
"""

from conftest import once

from repro.bench import PLATFORMS
from repro.bench.faultmatrix import RATES, fault_matrix
from repro.bench.harness import trace_application
from repro.bench.tables import format_table
from repro.artc.compiler import compile_trace
from repro.core.modes import ReplayMode
from repro.faults import HardenConfig, RetryPolicy
from repro.workloads import ParallelRandomReaders

MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)


def test_faultmatrix_hardening(benchmark, emit):
    platform = PLATFORMS["hdd-ext4"]

    def run():
        app = ParallelRandomReaders(nthreads=2, reads_per_thread=400)
        traced = trace_application(app, platform)
        bench = compile_trace(traced.trace, traced.snapshot)
        harden = HardenConfig(retry=RetryPolicy(max_attempts=4), degrade=True)
        return {
            "classic": fault_matrix(bench, platform, modes=MODES),
            "hardened": fault_matrix(
                bench, platform, modes=MODES, harden=harden
            ),
        }

    results = once(benchmark, run)
    rows = []
    for variant in ("classic", "hardened"):
        for row in results[variant]:
            rows.append(
                [
                    variant,
                    row["mode"],
                    "%.0f%%" % (row["rate"] * 100),
                    "%d" % row["faults"],
                    "%d" % row["failures"],
                    "%d/%d" % (row["retries_recovered"], row["retries"]),
                    "%d" % row["skipped"],
                    "%.2fx" % row["slowdown"],
                ]
            )
    emit(
        "faultmatrix",
        format_table(
            ["Replayer", "Mode", "Rate", "Faults", "Failures",
             "Recovered", "Skipped", "Slowdown"],
            rows,
            title="Robustness: replay degradation vs fault rate",
        ),
    )

    def cells(variant, mode):
        return [r for r in results[variant] if r["mode"] == mode]

    for mode in MODES:
        classic, hardened = cells("classic", mode), cells("hardened", mode)
        # Zero-rate cells are fault-free and identical in outcome.
        assert classic[0]["faults"] == hardened[0]["faults"] == 0
        assert classic[0]["failures"] == hardened[0]["failures"]
        top_classic, top_hardened = classic[-1], hardened[-1]
        # The sweep actually injected faults at the top rate...
        assert top_classic["faults"] > 0
        # ...the hardened replayer retried and recovered some of them...
        assert top_hardened["retries_recovered"] > 0
        # ...and ends up strictly more faithful than the classic one.
        assert top_hardened["failures"] < top_classic["failures"]
