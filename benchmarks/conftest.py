"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure from the paper.
Results are printed to the terminal (bypassing capture) and saved under
``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def emit(capsys):
    """Print a result block to the real terminal and persist it."""

    def _emit(name, text):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
            handle.write(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _emit


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
