"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure from the paper.
Results are printed to the terminal (bypassing capture) and saved under
``benchmarks/results/`` atomically (temp file + rename), so an
interrupted run never truncates committed results.

The heavy benches fan their independent cells across worker processes
via :mod:`repro.bench.parallel` and memoize completed cells under
``benchmarks/.cache/`` -- delete that directory (or set
``ARTC_CACHE_DIR``) to force recomputation.  ``ARTC_BENCH_WORKERS``
overrides the worker count (default: all cores).
"""

import os

import pytest

from repro.bench.parallel import atomic_write_text, run_cells

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.environ.get(
    "ARTC_CACHE_DIR", os.path.join(os.path.dirname(__file__), ".cache")
)

# Opt the whole bench suite (and the worker processes it forks) into
# the compiled-benchmark artifact cache: cells sharing an (app, source,
# seed, ruleset) tuple reuse one trace+compile as an ``.artcb`` file
# instead of recompiling per cell (repro.bench.artifacts).
os.environ.setdefault(
    "ARTC_ARTIFACT_DIR", os.path.join(CACHE_DIR, "artifacts")
)


def bench_workers():
    value = int(os.environ.get("ARTC_BENCH_WORKERS", "0"))
    return value if value > 0 else None


def run_bench_cells(cells):
    """Run cells through the parallel harness with the bench-suite
    cache and worker settings; returns values in submission order."""
    results = run_cells(cells, workers=bench_workers(), cache_dir=CACHE_DIR)
    return [r.value for r in results]


@pytest.fixture
def emit(capsys):
    """Print a result block to the real terminal and persist it."""

    def _emit(name, text):
        atomic_write_text(os.path.join(RESULTS_DIR, name + ".txt"), text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _emit


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
