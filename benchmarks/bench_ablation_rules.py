"""Ablation: what each ROOT rule contributes.

Starting from ARTC's default rule set, disable one rule group at a time
and measure semantic failures (on a hazard-heavy Magritte trace) and
dependency-graph size.  Also include program_seq, the strongest mode,
to show its overconstraint (it degenerates to single-threaded replay).
"""

from conftest import once

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode, RuleSet
from repro.workloads.magritte import build_suite

VARIANTS = [
    ("artc default", RuleSet.artc_default()),
    ("no file_seq", RuleSet(file_seq=False)),
    ("file_stage only", RuleSet(file_seq=False, file_stage=True)),
    ("file_size (future work)", RuleSet.with_file_size()),
    ("no path rules", RuleSet(path_stage=False, path_name=False)),
    ("fd_stage only", RuleSet(fd_seq=False, fd_stage=True)),
    ("no fd rules", RuleSet(fd_seq=False, fd_stage=False)),
    ("no aio rule", RuleSet(aio_stage=False)),
    ("unconstrained", RuleSet.unconstrained()),
    ("program_seq", RuleSet(program_seq=True)),
]


def test_ablation_rule_contributions(benchmark, emit):
    app = build_suite(["iphoto_import400"])["iphoto_import400"]
    source = PLATFORMS["mac-ssd"]
    target = PLATFORMS["ssd"]

    def run():
        traced = trace_application(app, source, warm_cache=True)
        out = {}
        for label, ruleset in VARIANTS:
            bench = compile_trace(traced.trace, traced.snapshot, ruleset=ruleset)
            worst = 0
            for seed in range(3):
                report = replay_benchmark(
                    bench,
                    target,
                    ReplayMode.ARTC,
                    seed=500 + seed,
                    warm_cache=True,
                    jitter=2e-5,
                )
                worst = max(worst, report.failures)
            out[label] = {
                "edges": bench.graph.n_edges,
                "failures": worst,
                "elapsed": report.elapsed,
            }
        return out

    results = once(benchmark, run)
    rows = [
        [label, r["edges"], r["failures"], "%.4fs" % r["elapsed"]]
        for label, r in results.items()
    ]
    emit(
        "ablation_rules",
        format_table(
            ["Rule set", "Edges", "Max failures (3 seeds)", "Replay time"],
            rows,
            title="Ablation: per-rule contribution on iphoto_import400",
        ),
    )
    default = results["artc default"]
    unconstrained = results["unconstrained"]
    # The full rule set wins on semantics.
    assert default["failures"] <= unconstrained["failures"]
    assert unconstrained["failures"] > 4 * max(1, default["failures"])
    # Dropping fd rules reintroduces descriptor races.
    assert results["no fd rules"]["failures"] >= default["failures"]
    # Dropping a whole rule family sheds edges.
    assert results["no path rules"]["edges"] < default["edges"]
    assert results["unconstrained"]["edges"] == 0
    # program_seq is the strongest (it needs no explicit edges at all:
    # the whole trace replays from one thread).
    assert results["program_seq"]["failures"] <= default["failures"]
