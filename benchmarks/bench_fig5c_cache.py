"""Figure 5(c): cache size.

Thread 1 sequentially scans its 1 GB file before random-reading it;
thread 2 random-reads its own file throughout.  Tracing on a 4 GB
machine and replaying on one with ~1.5 GB available (and vice versa),
on a two-disk RAID-0.  On the small-cache target thread 1's random
reads become misses; the rigid replays still play them before most of
thread 2's reads, wasting the array's parallelism -- the paper's
accuracy asymmetry.
"""

from conftest import once

from repro.bench import PLATFORMS
from repro.bench.harness import replay_matrix
from repro.bench.tables import format_table, percent
from repro.core.modes import ReplayMode
from repro.workloads import CacheSensitiveReaders

MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)


def test_fig5c_cache_size(benchmark, emit):
    raid_factory = PLATFORMS["raid0"].device_factory
    big = PLATFORMS["raid0"]
    small = PLATFORMS["smallcache"].variant(
        "smallcache-raid", device_factory=raid_factory
    )

    def run():
        app = CacheSensitiveReaders(file_bytes=1 << 30, random_reads=3000)
        return {
            "4GB->1.5GB": replay_matrix(app, big, small, modes=MODES),
            "1.5GB->4GB": replay_matrix(app, small, big, modes=MODES),
        }

    results = once(benchmark, run)
    rows = []
    for direction, res in results.items():
        row = [direction, "%.2fs" % res["original"]]
        for mode in MODES:
            m = res["modes"][mode]
            row.append("%.2fs (%s)" % (m["elapsed"], percent(m["signed_error"])))
        rows.append(row)
    emit(
        "fig5c",
        format_table(
            ["Direction", "Original", "Single-threaded", "Temporal", "ARTC"],
            rows,
            title="Figure 5(c): cache size (4GB <-> 1.5GB, RAID-0)",
        ),
    )
    shrink = results["4GB->1.5GB"]
    grow = results["1.5GB->4GB"]
    # ARTC accurate on both source/target combinations.
    assert shrink["modes"][ReplayMode.ARTC]["error"] < 0.12
    assert grow["modes"][ReplayMode.ARTC]["error"] < 0.12
    # The asymmetry: rigid replays degrade on the small-cache target
    # (cache hits turned into serialized misses) but stay accurate on
    # the big-cache target (mistimed reads are hits there anyway).
    assert (
        shrink["modes"][ReplayMode.SINGLE]["error"]
        > grow["modes"][ReplayMode.SINGLE]["error"]
    )
