"""Ablation: the file-size dependency refinement (paper section 8).

Workload: a producer appends records to a log while consumer threads
repeatedly read the regions the producer has published (a log-follower
pattern).  Under plain ``file_seq`` every consumer read is chained
behind every other access to the log -- heavy overconstraint.  With
stage ordering only, consumers can replay before the data they read
existed (short reads: value mismatches).  The ``file_size`` mode orders
each read behind exactly the append that produced its bytes: correct
*and* flexible -- "somewhere between stage and sequential ordering in
strength".
"""

import random

from conftest import once

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode, RuleSet
from repro.sim.events import Event, WaitEvent
from repro.workloads.base import Application, must

VARIANTS = [
    ("file_seq (ARTC default)", RuleSet()),
    ("file_size (refinement)", RuleSet.with_file_size()),
    ("file_stage only", RuleSet(file_seq=False, file_stage=True)),
]


class LogFollower(Application):
    """One appender, three followers re-reading published regions."""

    name = "logfollower"
    roots = ("/data",)

    def __init__(self, appends=60, chunk=65536, reads_per_follower=120):
        self.appends = appends
        self.chunk = chunk
        self.reads_per_follower = reads_per_follower

    def setup(self, fs):
        fs.makedirs_now("/data")
        fs.create_file_now("/data/log", size=self.chunk)  # one seed record

    def main(self, osapi):
        published = {"n": 1}
        tick = [Event()]

        def producer(tid=1):
            fd = must((yield from osapi.call(
                tid, "open", path="/data/log", flags="O_WRONLY|O_APPEND")))
            for _ in range(self.appends):
                yield from osapi.call(tid, "write", fd=fd, nbytes=self.chunk)
                yield from osapi.call(tid, "fsync", fd=fd)
                published["n"] += 1
                old, tick[0] = tick[0], Event()
                old.set()
            yield from osapi.call(tid, "close", fd=fd)

        def follower(tid):
            rng = random.Random(tid * 31)
            fd = must((yield from osapi.call(
                tid, "open", path="/data/log", flags="O_RDONLY")))
            for _ in range(self.reads_per_follower):
                index = rng.randrange(published["n"])
                yield from osapi.call(
                    tid, "pread", fd=fd, nbytes=self.chunk,
                    offset=index * self.chunk,
                )
                if rng.random() < 0.3 and not tick[0].is_set:
                    yield WaitEvent(tick[0])  # wait for fresh data
            yield from osapi.call(tid, "close", fd=fd)

        bodies = [producer(1)] + [follower(tid) for tid in (2, 3, 4)]
        return (yield from self.spawn_threads(osapi, bodies))


def test_ablation_file_size_dependencies(benchmark, emit):
    platform = PLATFORMS["hdd-ext4"]
    app = LogFollower()

    def run():
        traced = trace_application(app, platform)
        out = {}
        for label, ruleset in VARIANTS:
            bench = compile_trace(traced.trace, traced.snapshot, ruleset=ruleset)
            worst = 0
            for seed in range(3):
                report = replay_benchmark(
                    bench, platform, ReplayMode.ARTC, seed=700 + seed,
                    jitter=1e-5,
                )
                worst = max(worst, report.failures)
            out[label] = {
                "edges": bench.graph.n_edges,
                "failures": worst,
                "elapsed": report.elapsed,
                "outstanding": report.mean_outstanding(),
            }
        return out

    results = once(benchmark, run)
    rows = [
        [label, r["edges"], r["failures"], "%.3fs" % r["elapsed"],
         "%.2f" % r["outstanding"]]
        for label, r in results.items()
    ]
    emit(
        "ablation_filesize",
        format_table(
            ["File rule", "Edges", "Max failures", "Replay time", "Outstanding"],
            rows,
            title="Ablation: file-size dependencies on a log-follower workload",
        ),
    )
    seq = results["file_seq (ARTC default)"]
    size = results["file_size (refinement)"]
    stage = results["file_stage only"]
    # Correct like file_seq...
    assert size["failures"] == 0
    # ...with fewer constraints...
    assert size["edges"] < seq["edges"]
    # ...while stage-only ordering lets short reads through.
    assert stage["failures"] > 0
