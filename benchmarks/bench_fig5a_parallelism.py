"""Figure 5(a): workload parallelism.

A program spawns 1, 2, or 8 threads, each reading 1000 random 4 KB
blocks from its own 1 GB file.  Deeper queues let the scheduler/disk
shorten positioning time, so the slowdown is sub-linear; single-threaded
and temporally-ordered replays cannot recreate that queue depth and
overestimate elapsed time, while ARTC adapts.
"""

from conftest import once

from repro.bench import PLATFORMS
from repro.bench.harness import replay_matrix
from repro.bench.tables import format_table, percent
from repro.core.modes import ReplayMode
from repro.workloads import ParallelRandomReaders

PLATFORM = PLATFORMS["hdd-ext4"]
MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)


def test_fig5a_workload_parallelism(benchmark, emit):
    def run():
        out = {}
        for nthreads in (1, 2, 8):
            app = ParallelRandomReaders(nthreads=nthreads, reads_per_thread=1000)
            out[nthreads] = replay_matrix(app, PLATFORM, PLATFORM, modes=MODES)
        return out

    results = once(benchmark, run)
    rows = []
    for nthreads, res in results.items():
        row = ["%d threads" % nthreads, "%.2fs" % res["original"]]
        for mode in MODES:
            m = res["modes"][mode]
            row.append("%.2fs (%s)" % (m["elapsed"], percent(m["signed_error"])))
        rows.append(row)
    emit(
        "fig5a",
        format_table(
            ["Workload", "Original", "Single-threaded", "Temporal", "ARTC"],
            rows,
            title="Figure 5(a): workload parallelism (replay error vs original)",
        ),
    )
    r1, r8 = results[1], results[8]
    # Sub-linear slowdown: 8x the I/O in well under 8x the time.
    assert r8["original"] < 7.0 * r1["original"]
    # ARTC adapts; the rigid replays overestimate at 8 threads.
    assert abs(r8["modes"][ReplayMode.ARTC]["signed_error"]) < 0.15
    assert r8["modes"][ReplayMode.SINGLE]["signed_error"] > 0.30
    assert r8["modes"][ReplayMode.TEMPORAL]["signed_error"] > 0.15
    # Ordering: ARTC beats temporal beats single-threaded.
    assert (
        r8["modes"][ReplayMode.ARTC]["error"]
        < r8["modes"][ReplayMode.TEMPORAL]["error"]
        < r8["modes"][ReplayMode.SINGLE]["error"]
    )
