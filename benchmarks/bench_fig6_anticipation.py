"""Figure 6: varying anticipation.

Throughput of the competing-sequential-readers program across a sweep
of ``slice_sync`` values, for the original program and for three
replays of two traces (collected with slice_sync = 1 ms and 100 ms).
The rigid replays track the *source* system's throughput rather than
the target's; ARTC tracks the target.
"""

from conftest import once

from repro.bench import PLATFORMS
from repro.bench.harness import (
    ground_truth_run,
    replay_benchmark,
    trace_application,
)
from repro.artc.compiler import compile_trace
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.workloads import CompetingSequentialReaders

SLICES = (0.001, 0.004, 0.020, 0.100)
MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)


def _mbps(app, elapsed):
    return app.total_bytes / elapsed / 1e6 if elapsed else 0.0


def test_fig6_varying_anticipation(benchmark, emit):
    base = PLATFORMS["hdd-ext4"]

    def platform_for(slice_sync):
        return base.variant(
            "slice%dms" % int(slice_sync * 1000),
            scheduler_kwargs={"slice_sync": slice_sync},
        )

    def run():
        app = CompetingSequentialReaders(reads_per_thread=3000)
        benches = {}
        for source_slice in (0.001, 0.100):
            traced = trace_application(app, platform_for(source_slice))
            benches[source_slice] = compile_trace(traced.trace, traced.snapshot)
        table = {}
        for slice_sync in SLICES:
            target = platform_for(slice_sync)
            row = {"original": _mbps(app, ground_truth_run(app, target, seed=101))}
            for source_slice, bench in benches.items():
                for mode in MODES:
                    report = replay_benchmark(bench, target, mode, seed=300)
                    key = "%s(src=%dms)" % (mode.split("-")[0], source_slice * 1000)
                    row[key] = _mbps(app, report.elapsed)
            table[slice_sync] = row
        return table

    results = once(benchmark, run)
    headers = ["slice_sync"] + list(next(iter(results.values())))
    rows = []
    for slice_sync, row in results.items():
        rows.append(
            ["%dms" % int(slice_sync * 1000)]
            + ["%.1f" % row[column] for column in headers[1:]]
        )
    emit(
        "fig6",
        format_table(
            headers,
            rows,
            title="Figure 6: throughput (MB/s) vs slice_sync, original and replays",
        ),
    )
    # Original throughput grows with the anticipation slice.
    originals = [results[s]["original"] for s in SLICES]
    assert originals[0] < originals[-1] / 2
    # ARTC tracks the target at both extremes, for both source traces.
    for source in ("artc(src=1ms)", "artc(src=100ms)"):
        for slice_sync in (SLICES[0], SLICES[-1]):
            ratio = results[slice_sync][source] / results[slice_sync]["original"]
            assert 0.6 < ratio < 1.7, (source, slice_sync, ratio)
    # Rigid replays of the 100ms trace hugely overestimate throughput on
    # the 1ms target (they reproduce the source's long runs).
    assert results[0.001]["single(src=100ms)"] > 2 * results[0.001]["original"]
