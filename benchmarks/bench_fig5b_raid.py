"""Figure 5(b): disk parallelism.

Trace the two-thread random-reader on a single disk and replay on a
two-disk RAID-0 (512 KB chunks), and vice versa.  The single-threaded
replay's serial issue stream cannot exploit the array's parallelism
when moving from disk to RAID; ARTC is accurate in both directions.
"""

from conftest import once

from repro.bench import PLATFORMS
from repro.bench.harness import replay_matrix
from repro.bench.tables import format_table, percent
from repro.core.modes import ReplayMode
from repro.workloads import ParallelRandomReaders

MODES = (ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC)


def test_fig5b_disk_parallelism(benchmark, emit):
    hdd = PLATFORMS["hdd-ext4"]
    raid = PLATFORMS["raid0"]

    def run():
        app = ParallelRandomReaders(nthreads=2, reads_per_thread=1000)
        return {
            "hdd->raid": replay_matrix(app, hdd, raid, modes=MODES),
            "raid->hdd": replay_matrix(app, raid, hdd, modes=MODES),
        }

    results = once(benchmark, run)
    rows = []
    for direction, res in results.items():
        row = [direction, "%.2fs" % res["original"]]
        for mode in MODES:
            m = res["modes"][mode]
            row.append("%.2fs (%s)" % (m["elapsed"], percent(m["signed_error"])))
        rows.append(row)
    emit(
        "fig5b",
        format_table(
            ["Direction", "Original", "Single-threaded", "Temporal", "ARTC"],
            rows,
            title="Figure 5(b): disk parallelism (1 disk <-> RAID-0)",
        ),
    )
    to_raid = results["hdd->raid"]
    # Single-threaded replay cannot use the second spindle.
    assert to_raid["modes"][ReplayMode.SINGLE]["signed_error"] > 0.20
    # ARTC stays accurate in both directions.
    for res in results.values():
        assert res["modes"][ReplayMode.ARTC]["error"] < 0.12
