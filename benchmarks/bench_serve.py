"""Daemon throughput: cold vs warm vs coalesced serving.

Measures requests/second through a real ``artc serve`` daemon (unix
socket, sharded worker processes) under three traffic shapes at each
client-concurrency level:

- **cold** -- every request names a never-seen cell, so each one pays
  trace + compile before it replays (the artifact cache can only file
  the result for later).
- **warm** -- the same cells again, round-robin: every request is
  served from the artifact cache / worker memo with zero recompiles
  (asserted via the daemon's compile counter).
- **coalesced** -- every client asks for one *identical* fresh cell at
  once; in-flight coalescing collapses the herd to a single execution
  (asserted: exactly one compile per level).

Results land in ``benchmarks/results/serve.txt`` and, for the CI
serve-smoke job to upload, ``BENCH_serve.json`` at the repo root.

Knobs: ``ARTC_SERVE_BENCH_CLIENTS`` (default ``1,8,32``),
``ARTC_SERVE_BENCH_REQUESTS`` (requests per scenario per level,
default 32), ``ARTC_SERVE_BENCH_WORKERS`` (worker shards, default:
the daemon's own core-based choice).
"""

import json
import os
import shutil
import tempfile
import time

from conftest import once

from repro.bench.parallel import BENCH_FORMAT_VERSION, atomic_write_text
from repro.bench.tables import format_table
from repro.serve import ServeConfig, ServerThread, submit_many
from repro.serve.client import ServeClient
from repro.serve.workers import default_worker_count

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CLIENTS = tuple(
    int(token)
    for token in os.environ.get("ARTC_SERVE_BENCH_CLIENTS", "1,8,32").split(",")
    if token.strip()
)
REQUESTS = int(os.environ.get("ARTC_SERVE_BENCH_REQUESTS", "32"))
WORKERS = int(os.environ.get("ARTC_SERVE_BENCH_WORKERS", "0")) \
    or default_worker_count()

APP_ARGS = {"nthreads": 2, "reads_per_thread": 30, "file_bytes": 4 << 20}


def cell(seed):
    return {
        "app": "randreads",
        "app_args": dict(APP_ARGS),
        "source": "mac-ssd",
        "platform": "hdd-ext4",
        "seed": seed,
    }


def fire(handle, requests, clients, barrier=False):
    """Submit requests at the given concurrency; returns (rps,
    seconds) and asserts every response is OK."""
    started = time.perf_counter()
    envelopes = submit_many(
        handle.client_kwargs(), requests, concurrency=clients,
        tenant="bench", barrier=barrier,
    )
    seconds = time.perf_counter() - started
    failed = [e for e in envelopes if not e.get("ok")]
    assert not failed, failed[:3]
    return len(envelopes) / seconds, seconds


def measure_level(handle, clients, seed_base):
    """Cold, warm, and coalesced passes for one concurrency level.

    Each level works in its own seed space, so earlier levels cannot
    pre-warm its cells.
    """
    with ServeClient(tenant="bench-meta", **handle.client_kwargs()) as meta:
        def compiles():
            return meta.metrics().get(
                "serve.cache.compiles", {}).get("value", 0)

        def warm_hits():
            return meta.metrics().get(
                "serve.cache.warm_hits", {}).get("value", 0)

        cold_cells = [cell(seed_base + index) for index in range(clients)]
        before = compiles()
        cold_rps, cold_seconds = fire(
            handle, [("replay", params) for params in cold_cells], clients
        )
        cold_compiles = compiles() - before

        before, before_warm = compiles(), warm_hits()
        warm_requests = [
            ("replay", cold_cells[index % clients])
            for index in range(REQUESTS)
        ]
        warm_rps, warm_seconds = fire(handle, warm_requests, clients)
        assert compiles() == before, "warm pass recompiled"
        warm_served = warm_hits() - before_warm

        before = compiles()
        herd = cell(seed_base + 10000)
        coalesced_rps, coalesced_seconds = fire(
            handle, [("replay", herd)] * REQUESTS, clients, barrier=True
        )
        assert compiles() - before == 1, "herd compiled more than once"

    return {
        "clients": clients,
        "cold": {
            "requests": clients,
            "seconds": cold_seconds,
            "rps": cold_rps,
            "compiles": cold_compiles,
        },
        "warm": {
            "requests": REQUESTS,
            "seconds": warm_seconds,
            "rps": warm_rps,
            "warm_hits": warm_served,
        },
        "coalesced": {
            "requests": REQUESTS,
            "seconds": coalesced_seconds,
            "rps": coalesced_rps,
        },
    }


def run_bench():
    root = tempfile.mkdtemp(prefix="artc-bench-serve-")
    try:
        config = ServeConfig(
            unix_path=root + "/bench.sock",
            workers=WORKERS,
            artifact_dir=root + "/artifacts",
        )
        with ServerThread(config) as handle:
            levels = [
                measure_level(handle, clients, seed_base=level * 1000)
                for level, clients in enumerate(CLIENTS, start=1)
            ]
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "bench_format_version": BENCH_FORMAT_VERSION,
        "app": "randreads",
        "app_args": APP_ARGS,
        "workers": WORKERS,
        "requests_per_scenario": REQUESTS,
        "clients": list(CLIENTS),
        "levels": levels,
    }


def test_serve_throughput(benchmark, emit):
    payload = once(benchmark, run_bench)

    atomic_write_text(
        os.path.join(REPO_ROOT, "BENCH_serve.json"),
        json.dumps(payload, indent=2) + "\n",
    )

    table = []
    for level in payload["levels"]:
        table.append([
            level["clients"],
            "%.1f" % level["cold"]["rps"],
            "%.1f" % level["warm"]["rps"],
            "%.1f" % level["coalesced"]["rps"],
            "%.1fx" % (level["warm"]["rps"] / level["cold"]["rps"]),
        ])
    emit(
        "serve",
        format_table(
            ["Clients", "Cold r/s", "Warm r/s", "Coalesced r/s", "Warm/Cold"],
            table,
            title=(
                "artc serve throughput (%d workers, %d requests/scenario)"
                % (payload["workers"], payload["requests_per_scenario"])
            ),
        ),
    )

    for level in payload["levels"]:
        # Warm serving must beat cold compiling at every concurrency.
        assert level["warm"]["rps"] > level["cold"]["rps"], level
