"""Table 3: replay failure counts on the Magritte suite.

For each of the 34 traces, replay with a completely unconstrained
multithreaded replay (UC, max failures over 5 seeded runs) and with
ARTC, both in AFAP mode on an SSD-backed target without clearing the
page cache between initialization and execution -- the paper's setup.

Expected shape: UC produces failures up to orders of magnitude beyond
ARTC; ARTC's residual failures stem from missing extended-attribute
initialization info in the traces (plus the occasional trace-order
ambiguity), not from invalid reordering.
"""

from conftest import once, run_bench_cells

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.parallel import Cell
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite, suite_names

UC_SEEDS = 5


def table3_cell(app_name, uc_seeds=UC_SEEDS):
    """One Magritte trace: trace on the Mac SSD source, replay
    unconstrained (max failures over seeds) and under ARTC."""
    app = build_suite([app_name])[app_name]
    traced = trace_application(app, PLATFORMS["mac-ssd"], warm_cache=True)
    bench = compile_trace(traced.trace, traced.snapshot)
    target = PLATFORMS["ssd"]
    uc_failures = 0
    for seed in range(uc_seeds):
        report = replay_benchmark(
            bench,
            target,
            ReplayMode.UNCONSTRAINED,
            seed=300 + seed,
            warm_cache=True,
            jitter=2e-5,
        )
        uc_failures = max(uc_failures, report.failures)
    artc = replay_benchmark(
        bench, target, ReplayMode.ARTC, seed=400, warm_cache=True
    )
    return {
        "events": len(traced.trace),
        "uc": uc_failures,
        "artc": artc.failures,
        "edges": bench.stats["n_edges"],
        "edges_reduced": bench.stats["n_edges_reduced"],
    }


def test_table3_replay_failure_rates(benchmark, emit):
    names = suite_names()

    def run():
        cells = [Cell(table3_cell, {"app_name": name}) for name in names]
        return dict(zip(names, run_bench_cells(cells)))

    results = once(benchmark, run)
    rows = []
    total_uc = total_artc = 0
    for name, r in results.items():
        rows.append([name, r["uc"], r["artc"], r["events"]])
        total_uc += r["uc"]
        total_artc += r["artc"]
    rows.append(["TOTAL", total_uc, total_artc, sum(r["events"] for r in results.values())])
    emit(
        "table3",
        format_table(
            ["Trace", "UC", "ARTC", "Events"],
            rows,
            title="Table 3: replay failures, unconstrained (max of %d runs) vs ARTC"
            % UC_SEEDS,
        ),
    )
    # Shape assertions: the unconstrained replay fails far more than
    # ARTC overall, and ARTC's residual failures stay small.
    assert total_uc > 5 * max(1, total_artc)
    for name, r in results.items():
        # Residuals: the planted missing-xattr reads (<=7) plus a
        # handful of completion-order trace ambiguities on the largest
        # traces (the paper's import400 likewise carries extra failures
        # from model edge cases).
        assert r["artc"] <= 16, (name, r)
