"""Table 3: replay failure counts on the Magritte suite.

For each of the 34 traces, replay with a completely unconstrained
multithreaded replay (UC, max failures over 5 seeded runs) and with
ARTC, both in AFAP mode on an SSD-backed target without clearing the
page cache between initialization and execution -- the paper's setup.

Expected shape: UC produces failures up to orders of magnitude beyond
ARTC; ARTC's residual failures stem from missing extended-attribute
initialization info in the traces (plus the occasional trace-order
ambiguity), not from invalid reordering.
"""

from conftest import once

from repro.artc.compiler import compile_trace
from repro.bench import PLATFORMS
from repro.bench.harness import replay_benchmark, trace_application
from repro.bench.tables import format_table
from repro.core.modes import ReplayMode
from repro.workloads.magritte import build_suite

SOURCE = PLATFORMS["mac-ssd"]
TARGET = PLATFORMS["ssd"]
UC_SEEDS = 5


def run_one(app):
    traced = trace_application(app, SOURCE, warm_cache=True)
    bench = compile_trace(traced.trace, traced.snapshot)
    uc_failures = 0
    for seed in range(UC_SEEDS):
        report = replay_benchmark(
            bench,
            TARGET,
            ReplayMode.UNCONSTRAINED,
            seed=300 + seed,
            warm_cache=True,
            jitter=2e-5,
        )
        uc_failures = max(uc_failures, report.failures)
    artc = replay_benchmark(
        bench, TARGET, ReplayMode.ARTC, seed=400, warm_cache=True
    )
    return {
        "events": len(traced.trace),
        "uc": uc_failures,
        "artc": artc.failures,
    }


def test_table3_replay_failure_rates(benchmark, emit):
    suite = build_suite()

    def run():
        return {name: run_one(app) for name, app in suite.items()}

    results = once(benchmark, run)
    rows = []
    total_uc = total_artc = 0
    for name, r in results.items():
        rows.append([name, r["uc"], r["artc"], r["events"]])
        total_uc += r["uc"]
        total_artc += r["artc"]
    rows.append(["TOTAL", total_uc, total_artc, sum(r["events"] for r in results.values())])
    emit(
        "table3",
        format_table(
            ["Trace", "UC", "ARTC", "Events"],
            rows,
            title="Table 3: replay failures, unconstrained (max of %d runs) vs ARTC"
            % UC_SEEDS,
        ),
    )
    # Shape assertions: the unconstrained replay fails far more than
    # ARTC overall, and ARTC's residual failures stay small.
    assert total_uc > 5 * max(1, total_artc)
    for name, r in results.items():
        # Residuals: the planted missing-xattr reads (<=7) plus a
        # handful of completion-order trace ambiguities on the largest
        # traces (the paper's import400 likewise carries extra failures
        # from model edge cases).
        assert r["artc"] <= 16, (name, r)
